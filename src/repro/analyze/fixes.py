"""Mechanical autofixes for a safe subset of the RL lint findings.

``repro.cli analyze --fix`` routes here.  Only rewrites whose semantics
are provably identical-or-strictly-better are attempted:

* **RL003** — ``target.write_text(text)`` becomes
  ``atomic_write_text(target, text)`` (plus the import), the exact
  temp+fsync+rename protocol the rule demands.  Calls with keyword
  arguments or extra positionals (encodings, newline policy) are left
  for a human.
* **RL006** — ``except E: pass`` gains an ``as exc`` binding and a
  ``logging.getLogger(__name__).warning(...)`` body (plus ``import
  logging``), so the swallowed error at least leaves a trace.  Handlers
  that already do something, and bare ``except:`` (RL005's business),
  are untouched.

Both rewrites are idempotent: the fixed form no longer matches the
rule, so a second ``--fix`` run is a no-op.  Files are rewritten through
:func:`repro.ioutil.atomic_write_text` — the fixer practices what it
preaches.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from ..ioutil import atomic_write_text
from .lint import RAW_WRITE_WHITELIST, _ALLOW_RE, _iter_py_files

FIXABLE_RULES = ("RL003", "RL006")


def _allows(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            out[lineno] = {p.strip() for p in match.group(1).split(",") if p.strip()}
    return out


def _is_allowed(allows: dict[int, set[str]], lineno: int, rule_id: str) -> bool:
    marked = allows.get(lineno, set()) | allows.get(lineno - 1, set())
    return rule_id in marked or "*" in marked


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _span(starts: list[int], node: ast.AST) -> tuple[int, int]:
    begin = starts[node.lineno - 1] + node.col_offset
    end = starts[node.end_lineno - 1] + node.end_col_offset
    return begin, end


def _fix_rl003(source: str, tree: ast.Module) -> tuple[str, int]:
    """Rewrite zero-keyword ``X.write_text(arg)`` to ``atomic_write_text``."""
    edits: list[tuple[int, int, str]] = []
    starts = _line_starts(source)
    allows = _allows(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "write_text"):
            continue
        if len(node.args) != 1 or node.keywords:
            continue  # encoding/newline handling is not mechanical
        if _is_allowed(allows, node.lineno, "RL003"):
            continue  # an allow comment documents intent; leave it alone
        receiver = ast.get_source_segment(source, func.value)
        arg = ast.get_source_segment(source, node.args[0])
        if receiver is None or arg is None:
            continue
        begin, end = _span(starts, node)
        edits.append((begin, end, f"atomic_write_text({receiver}, {arg})"))
    if not edits:
        return source, 0
    for begin, end, text in sorted(edits, reverse=True):
        source = source[:begin] + text + source[end:]
    source = _ensure_import(
        source, "from repro.ioutil import atomic_write_text",
        marker="atomic_write_text",
    )
    return source, len(edits)


def _fix_rl006(source: str, tree: ast.Module) -> tuple[str, int]:
    """Give ``except E: pass`` handlers a logged body (and an ``as exc``)."""
    lines = source.splitlines(keepends=True)
    count = 0
    allows = _allows(source)
    # bottom-up so earlier handlers' line numbers stay valid
    handlers = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is not None
    ]
    for node in sorted(handlers, key=lambda n: n.lineno, reverse=True):
        body = [s for s in node.body if not _is_docstring(s)]
        if not body or not all(_is_silent(s) for s in body):
            continue
        if _is_allowed(allows, node.lineno, "RL006") or any(
            _is_allowed(allows, s.lineno, "RL006") for s in body
        ):
            continue  # an allow comment documents intent; leave it alone
        header = lines[node.lineno - 1]
        name = node.name
        if name is None:
            name = "exc"
            type_seg = ast.get_source_segment(source, node.type)
            if type_seg is None:
                continue
            new_header = header.replace(
                f"except {type_seg}:", f"except {type_seg} as exc:", 1
            )
            if new_header == header:
                continue  # unusual formatting; not mechanical
            lines[node.lineno - 1] = new_header
        first = body[0]
        indent = " " * first.col_offset
        log_line = (
            f"{indent}logging.getLogger(__name__).warning("
            f'"suppressed %r", {name})\n'
        )
        begin = body[0].lineno - 1
        end = body[-1].end_lineno
        lines[begin:end] = [log_line]
        count += 1
    if not count:
        return source, 0
    source = "".join(lines)
    source = _ensure_import(source, "import logging", marker="import logging")
    return source, count


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _is_silent(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Pass) or (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


def _ensure_import(source: str, import_line: str, *, marker: str) -> str:
    """Insert ``import_line`` after the last top-level import, once."""
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            text = ast.get_source_segment(source, node) or ""
            if marker in text:
                return source
    last_import_end = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import_end = node.end_lineno
    lines = source.splitlines(keepends=True)
    lines.insert(last_import_end, import_line + "\n")
    return "".join(lines)


def apply_fixes(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    rules: Sequence[str] | None = None,
    dry_run: bool = False,
) -> list[dict]:
    """Apply the mechanical fixers under ``paths``; return per-file results.

    ``rules`` restricts by rule-id prefix (default: all fixable rules).
    Each result is ``{"path", "display", "fixes": {rule: count}}`` for
    files that changed.
    """
    wants = lambda rule_id: rules is None or any(rule_id.startswith(p) for p in rules)
    results: list[dict] = []
    for path, top in _iter_py_files(paths):
        pkg_rel = path.resolve().relative_to(top.resolve()).as_posix()
        display = str(path)
        if root is not None:
            try:
                display = path.resolve().relative_to(Path(root).resolve()).as_posix()
            except ValueError:
                display = str(path)
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        fixed = source
        counts: dict[str, int] = {}
        in_whitelist = any(
            pkg_rel == p or pkg_rel.startswith(p) or f"/{p}" in f"/{pkg_rel}"
            for p in RAW_WRITE_WHITELIST
        )
        if wants("RL003") and not in_whitelist:
            fixed, n = _fix_rl003(fixed, ast.parse(fixed))
            if n:
                counts["RL003"] = n
        if wants("RL006"):
            fixed, n = _fix_rl006(fixed, ast.parse(fixed))
            if n:
                counts["RL006"] = n
        if counts and fixed != source:
            if not dry_run:
                atomic_write_text(path, fixed)
            results.append({"path": str(path), "display": display, "fixes": counts})
    return results
