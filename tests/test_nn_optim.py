"""Tests for optimizers, schedule, and gradient clipping."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mse_loss
from repro.nn import SGD, Adam, AdamW, MultiStepLR, Parameter, clip_grad_norm


def _quadratic_minimize(optimizer_factory, steps=300):
    """Minimize ||w - target||^2; returns final distance."""
    target = np.array([3.0, -2.0, 0.5])
    w = Parameter(np.zeros(3))
    opt = optimizer_factory([w])
    for _ in range(steps):
        opt.zero_grad()
        loss = mse_loss(w, Tensor(target))
        loss.backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestConvergence:
    def test_sgd(self):
        assert _quadratic_minimize(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum(self):
        assert _quadratic_minimize(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam(self):
        assert _quadratic_minimize(lambda p: Adam(p, lr=0.05)) < 1e-3

    def test_adamw(self):
        assert _quadratic_minimize(lambda p: AdamW(p, lr=0.05, weight_decay=1e-4)) < 1e-2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestWeightDecay:
    def test_sgd_decay_shrinks_weights(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 10.0

    def test_adamw_decouples_decay(self):
        """AdamW decays weights even when the gradient is zero."""
        w = Parameter(np.array([10.0]))
        opt = AdamW([w], lr=0.1, weight_decay=0.1)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] == pytest.approx(10.0 * (1 - 0.1 * 0.1))

    def test_none_grad_skipped(self):
        w = Parameter(np.array([1.0]))
        opt = Adam([w], lr=0.1)
        opt.step()  # no grad set; should not crash or move
        assert w.data[0] == 1.0


class TestMultiStepLR:
    def test_paper_schedule(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-3)
        sched = MultiStepLR(opt, milestones=[5, 20], gamma=0.3)
        for epoch in range(1, 25):
            sched.step()
            if epoch < 5:
                assert opt.lr == pytest.approx(1e-3)
            elif epoch < 20:
                assert opt.lr == pytest.approx(1e-3 * 0.3)
            else:
                assert opt.lr == pytest.approx(1e-3 * 0.09)

    def test_current_lr_property(self):
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-2)
        sched = MultiStepLR(opt, milestones=[1], gamma=0.5)
        assert sched.current_lr == 1e-2
        sched.step()
        assert sched.current_lr == 5e-3


class TestStepPathOracles:
    """Closed-form verification of every optimizer update path (the
    gradient-oracle satellite: each ``step()`` is checked against a
    hand-written numpy simulation rather than convergence behaviour)."""

    def test_adam_bias_correction_first_step(self):
        """Step 1: m̂ = g, v̂ = g², so Δw = −lr·g/(|g| + eps) exactly."""
        grad = np.array([0.3, -1.7, 0.0002])
        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=1e-3, eps=1e-8)
        w.grad = grad.copy()
        opt.step()
        expected = -1e-3 * grad / (np.abs(grad) + 1e-8)
        np.testing.assert_allclose(w.data, expected, rtol=1e-12)

    def test_adam_bias_correction_multi_step(self):
        """Steps 1..5 must match an independent numpy Adam simulation."""
        beta1, beta2, lr, eps, decay = 0.9, 0.999, 0.01, 1e-8, 0.02
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=4) for _ in range(5)]

        w = Parameter(rng.normal(size=4))
        sim = w.data.copy()
        opt = Adam([w], lr=lr, betas=(beta1, beta2), eps=eps, weight_decay=decay)
        m = np.zeros(4)
        v = np.zeros(4)
        for t, grad in enumerate(grads, start=1):
            w.grad = grad.copy()
            opt.step()
            g = grad + decay * sim  # L2 folded into the gradient
            m = beta1 * m + (1 - beta1) * g
            v = beta2 * v + (1 - beta2) * g * g
            m_hat = m / (1 - beta1 ** t)
            v_hat = v / (1 - beta2 ** t)
            sim = sim - lr * m_hat / (np.sqrt(v_hat) + eps)
            np.testing.assert_allclose(w.data, sim, rtol=1e-12, atol=1e-15)

    def test_adamw_decoupled_path_matches_simulation(self):
        """AdamW: weights shrink by lr·λ·w *before* the Adam update, and the
        moment statistics never see the decay term."""
        lr, decay = 0.05, 0.1
        grad = np.array([1.0, -2.0])
        w = Parameter(np.array([4.0, -8.0]))
        opt = AdamW([w], lr=lr, weight_decay=decay)
        w.grad = grad.copy()
        opt.step()
        shrunk = np.array([4.0, -8.0]) * (1 - lr * decay)
        expected = shrunk - lr * grad / (np.abs(grad) + 1e-8)
        np.testing.assert_allclose(w.data, expected, rtol=1e-12)
        assert opt.weight_decay == decay  # restored after the folded call

    def test_sgd_momentum_path_matches_simulation(self):
        lr, momentum = 0.1, 0.9
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=lr, momentum=momentum)
        velocity = 0.0
        sim = 1.0
        for grad in (0.5, -0.25, 1.0):
            w.grad = np.array([grad])
            opt.step()
            velocity = momentum * velocity + grad
            sim = sim - lr * velocity
            np.testing.assert_allclose(w.data, [sim], rtol=1e-12)

    def test_multistep_lr_boundary_is_inclusive(self):
        """The paper's schedule decays *at* the milestone epoch: after the
        5th scheduler step the lr must already carry one decay factor."""
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-3)
        sched = MultiStepLR(opt, milestones=[5, 20, 40, 70, 90], gamma=0.3)
        for _ in range(4):
            sched.step()
        assert opt.lr == pytest.approx(1e-3)  # epoch 4: not yet
        sched.step()
        assert opt.lr == pytest.approx(1e-3 * 0.3)  # epoch 5: decayed
        for _ in range(14):
            sched.step()
        assert opt.lr == pytest.approx(1e-3 * 0.3)  # epoch 19: still one factor
        sched.step()
        assert opt.lr == pytest.approx(1e-3 * 0.09)  # epoch 20: second decay

    def test_multistep_lr_full_paper_schedule_product(self):
        """After all five milestones the lr is lr₀·γ⁵ and stays there."""
        w = Parameter(np.zeros(1))
        opt = Adam([w], lr=1e-3)
        sched = MultiStepLR(opt, milestones=[5, 20, 40, 70, 90], gamma=0.3)
        for _ in range(120):
            sched.step()
        assert opt.lr == pytest.approx(1e-3 * 0.3 ** 5)

    def test_adam_trains_through_the_gradient_oracle(self):
        """End-to-end: a module that passes the gradient oracle and is then
        stepped by Adam must decrease its loss (oracle + optimizer agree)."""
        from repro.nn import Linear
        from repro.verify import check_module_gradients

        rng = np.random.default_rng(5)
        model = Linear(3, 1, rng=rng)
        x = Tensor(rng.normal(size=(16, 3)))
        y = Tensor(rng.normal(size=(16, 1)))

        def loss_fn():
            return mse_loss(model(x), y)

        check_module_gradients(model, loss_fn, max_coords_per_param=None).raise_if_failed()
        opt = Adam(model.parameters(), lr=0.05)
        first = loss_fn().item()
        for _ in range(50):
            opt.zero_grad()
            loss = loss_fn()
            loss.backward()
            opt.step()
        assert loss_fn().item() < first * 0.5


class TestClipGradNorm:
    def test_large_gradient_clipped(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_small_gradient_untouched(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 0.01)
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, 0.01)

    def test_none_grads_ignored(self):
        w = Parameter(np.zeros(4))
        assert clip_grad_norm([w], max_norm=1.0) == 0.0
