"""Extension: methods beyond the paper's Table IV on the metro task.

CCRNN and GTS appear only in the paper's Table V; XGBoost only in the
demand setup; MTGNN (the paper's reference [28]) in none of the tables.
This bench completes the cross-product on HZMetro so every implemented
method has at least one metro-task reading.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_demand_table, run_experiment

METHODS = ("xgboost", "ccrnn", "gts", "mtgnn", "tgcrn")


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    results = []
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        results.append(
            run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                           num_layers=s.num_layers, **kwargs)
        )
    return format_demand_table(results)


def test_extra_baselines_hzmetro(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("extra_baselines_hzmetro", out)
