"""Post-hoc span analysis and the perf-regression sentinel.

Consumes the JSONL stream a :class:`~repro.obs.spans.SpanCollector`
writes and answers the questions a trace viewer can't be scripted to:

* **tree assembly** — group span records by ``trace_id`` and rebuild the
  parent/child forest (:func:`assemble_traces`);
* **completeness** — did every completed request produce one single-rooted
  tree with the stages the serving path promises (admission →
  queue_wait → predict/fallback), no orphans, nothing left unfinished
  (:func:`check_request_traces`)?
* **latency breakdown** — per-stage p50/p95/p99 across every trace
  (:func:`stage_breakdown`) and the critical path of any single tree
  (:func:`critical_path`);
* **perf regression** — a noise-aware comparison of a fresh
  ``bench_table8_cost`` run against committed history
  (:func:`check_bench_regression`).

The sentinel's noise model: per-model epoch times are normalized by the
geometric mean across the models *common to both runs*, which cancels
any uniform machine-speed difference (a slower CI runner shifts every
model equally, so every normalized ratio stays ~1).  Only a *relative*
slowdown of one model against its peers — the signature of a real code
regression — moves its ratio toward the threshold.

Surfaced on the command line as ``python -m repro.cli obs-report``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .metrics import Histogram, read_jsonl

__all__ = [
    "RegressionFinding",
    "TraceCheck",
    "TraceNode",
    "TraceTree",
    "assemble_traces",
    "check_bench_regression",
    "check_fleet_traces",
    "check_request_traces",
    "critical_path",
    "load_spans",
    "render_report",
    "stage_breakdown",
]


# --------------------------------------------------------------------- #
# tree assembly
# --------------------------------------------------------------------- #


@dataclass
class TraceNode:
    """One span record plus its resolved children."""

    record: dict
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def span_id(self) -> str:
        return self.record.get("span_id", "?")

    @property
    def status(self) -> str:
        return self.record.get("status", "ok")

    @property
    def duration_ms(self) -> float | None:
        return self.record.get("duration_ms")

    @property
    def finished(self) -> bool:
        return (self.record.get("end") is not None
                and self.status != "unfinished")


@dataclass
class TraceTree:
    """Every span sharing one ``trace_id``, assembled into a forest.

    A healthy trace has exactly one root; ``orphans`` holds nodes whose
    ``parent_id`` never appeared in the stream (a broken handoff).
    """

    trace_id: str
    roots: list[TraceNode] = field(default_factory=list)
    orphans: list[TraceNode] = field(default_factory=list)
    nodes: dict = field(default_factory=dict)

    @property
    def root(self) -> TraceNode | None:
        return self.roots[0] if self.roots else None

    @property
    def span_count(self) -> int:
        return len(self.nodes)

    def walk(self):
        """Every node, depth-first from the roots, then orphans."""
        stack = list(reversed(self.roots + self.orphans))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def unfinished(self) -> list[TraceNode]:
        return [n for n in self.walk() if not n.finished]


def load_spans(path) -> list[dict]:
    """Span records (``event == "span"``) from a JSONL file.

    Tolerates mixed streams: a run log that interleaves epoch records
    with span records yields only the spans.
    """
    return [r for r in read_jsonl(path) if r.get("event") == "span"]


def assemble_traces(records) -> dict[str, TraceTree]:
    """Group span records by ``trace_id`` and rebuild parent links."""
    trees: dict[str, TraceTree] = {}
    for record in records:
        if record.get("event") != "span":
            continue
        trace_id = str(record.get("trace_id"))
        tree = trees.setdefault(trace_id, TraceTree(trace_id=trace_id))
        tree.nodes[record.get("span_id")] = TraceNode(record)
    for tree in trees.values():
        for node in tree.nodes.values():
            parent_id = node.record.get("parent_id")
            if parent_id is None:
                tree.roots.append(node)
            elif parent_id in tree.nodes:
                tree.nodes[parent_id].children.append(node)
            else:
                tree.orphans.append(node)
        # Stable order: children sorted by start time, roots likewise.
        for node in tree.nodes.values():
            node.children.sort(key=lambda n: n.record.get("start") or 0.0)
        tree.roots.sort(key=lambda n: n.record.get("start") or 0.0)
    return trees


# --------------------------------------------------------------------- #
# completeness
# --------------------------------------------------------------------- #

# What a ForecastServer request tree must contain, by root status.
_REQUIRED_STAGES = {
    "ok": ({"admission", "queue_wait"}, ("predict", "fallback")),
    "degraded": ({"admission", "queue_wait"}, ("predict", "fallback")),
    "shed": ({"admission"}, ()),
    "rejected": ({"admission"}, ()),
}


@dataclass
class TraceCheck:
    """Verdict of :func:`check_request_traces` over a span stream."""

    total: int = 0
    complete: int = 0
    incomplete: list = field(default_factory=list)  # {"trace_id", "reasons"}
    orphan_spans: int = 0
    unfinished_spans: int = 0
    other_traces: int = 0  # trees not rooted at a "request" span

    @property
    def ok(self) -> bool:
        return not self.incomplete

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "complete": self.complete,
            "incomplete": list(self.incomplete),
            "orphan_spans": self.orphan_spans,
            "unfinished_spans": self.unfinished_spans,
            "other_traces": self.other_traces,
            "ok": self.ok,
        }


def _structural_reasons(tree: TraceTree, check: TraceCheck) -> list[str]:
    """Shape defects shared by every trace kind (roots/orphans/closure)."""
    reasons = []
    if len(tree.roots) != 1:
        reasons.append(f"multi_root:{len(tree.roots)}")
    if tree.orphans:
        reasons.append(f"orphan_spans:{len(tree.orphans)}")
        check.orphan_spans += len(tree.orphans)
    unfinished = tree.unfinished()
    if unfinished:
        reasons.append(
            "unfinished:" + ",".join(sorted(n.name for n in unfinished)))
        check.unfinished_spans += len(unfinished)
    return reasons


def check_request_traces(trees) -> TraceCheck:
    """Verify every request trace is single-rooted, closed, and staged.

    A tree counts as a *request trace* when any root span is named
    ``"request"``.  Requirements scale with the root's outcome: an
    answered request (``ok``/``degraded``) must show admission,
    queue_wait, and a predict or fallback stage; shed and rejected
    requests only owe the stages they reached.
    """
    check = TraceCheck()
    for tree in trees.values():
        if not any(r.name == "request" for r in tree.roots):
            check.other_traces += 1
            continue
        check.total += 1
        reasons = _structural_reasons(tree, check)
        root = next(r for r in tree.roots if r.name == "request")
        required, alternatives = _REQUIRED_STAGES.get(
            root.status, (set(), ()))
        stages = {child.name for child in root.children}
        missing = required - stages
        if missing:
            reasons.append("missing_stages:" + ",".join(sorted(missing)))
        if alternatives and not any(alt in stages for alt in alternatives):
            reasons.append("missing_stages:" + "|".join(alternatives))
        if reasons:
            check.incomplete.append(
                {"trace_id": tree.trace_id, "reasons": reasons})
        else:
            check.complete += 1
    return check


# What a ForecastFleet request tree must contain, by root status.  An
# answered request must show the admission gate, at least one dispatch
# to a replica, and the final gather; sheds and rejections only owe the
# stages they reached (a backpressure shed never dispatches).
_FLEET_REQUIRED_STAGES = {
    "ok": {"admission", "dispatch", "gather"},
    "degraded": {"admission", "dispatch", "gather"},
    "shed": {"admission"},
    "rejected": {"admission"},
}


def check_fleet_traces(trees) -> TraceCheck:
    """Verify fleet traces show the full router → replica causal path.

    A tree counts as a *fleet trace* when any root span is named
    ``"fleet_request"``.  On top of the structural checks shared with
    :func:`check_request_traces`, an answered fleet request must contain
    admission, at least one ``dispatch``, and a ``gather`` — and every
    dispatch that completed ``ok`` must hold the replica's nested
    ``request`` subtree (the handoff span actually crossed the router →
    replica boundary; a missing child means the causal link was
    dropped).  Dispatches that ended in error/timeout/supersession owe
    no subtree — the replica may never have seen them.
    """
    check = TraceCheck()
    for tree in trees.values():
        if not any(r.name == "fleet_request" for r in tree.roots):
            check.other_traces += 1
            continue
        check.total += 1
        reasons = _structural_reasons(tree, check)
        root = next(r for r in tree.roots if r.name == "fleet_request")
        required = _FLEET_REQUIRED_STAGES.get(root.status, set())
        stages = {child.name for child in root.children}
        missing = required - stages
        if missing:
            reasons.append("missing_stages:" + ",".join(sorted(missing)))
        unlinked = [
            d for d in root.children
            if d.name == "dispatch" and d.status == "ok"
            and not any(c.name == "request" for c in d.children)
        ]
        if unlinked:
            reasons.append(f"dispatch_without_replica_request:{len(unlinked)}")
        if reasons:
            check.incomplete.append(
                {"trace_id": tree.trace_id, "reasons": reasons})
        else:
            check.complete += 1
    return check


# --------------------------------------------------------------------- #
# latency breakdown + critical path
# --------------------------------------------------------------------- #


def stage_breakdown(trees, sample_size: int = 4096) -> dict:
    """Per-span-name latency summary (count/mean/p50/p95/p99, in ms)."""
    histograms: dict[str, Histogram] = {}
    for tree in trees.values():
        for node in tree.walk():
            duration = node.duration_ms
            if duration is None:
                continue
            histograms.setdefault(
                node.name, Histogram(sample_size=sample_size)).observe(duration)
    return {
        name: {"count": h.count, "mean": h.mean, **h.percentiles()}
        for name, h in sorted(histograms.items())
    }


def critical_path(node: TraceNode) -> list[dict]:
    """Longest-duration chain from ``node`` down to a leaf."""
    path = []
    current: TraceNode | None = node
    while current is not None:
        path.append({"name": current.name, "span_id": current.span_id,
                     "duration_ms": current.duration_ms,
                     "status": current.status})
        timed = [c for c in current.children if c.duration_ms is not None]
        current = max(timed, key=lambda c: c.duration_ms) if timed else None
    return path


def slowest_request(trees) -> TraceTree | None:
    """The request trace with the longest root duration (or None)."""
    candidates = [
        t for t in trees.values()
        if t.root is not None and t.root.name == "request"
        and t.root.duration_ms is not None
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda t: t.root.duration_ms)


def render_report(trees, check: TraceCheck, breakdown: dict) -> str:
    """Human-readable span report: completeness, stage table, slow path."""
    lines = [
        f"traces: {len(trees)} ({check.total} request, "
        f"{check.other_traces} other)  "
        f"complete: {check.complete}/{check.total}"
    ]
    if check.incomplete:
        for entry in check.incomplete[:8]:
            lines.append(f"  INCOMPLETE {entry['trace_id']}: "
                         + "; ".join(entry["reasons"]))
        if len(check.incomplete) > 8:
            lines.append(f"  ... and {len(check.incomplete) - 8} more")
    if breakdown:
        lines.append("")
        lines.append(f"{'stage':<16} {'count':>6} {'mean':>10} "
                     f"{'p50':>10} {'p95':>10} {'p99':>10}")
        for name, stats in breakdown.items():
            lines.append(
                f"{name:<16} {stats['count']:>6d} {stats['mean']:>8.2f}ms "
                f"{stats['p50']:>8.2f}ms {stats['p95']:>8.2f}ms "
                f"{stats['p99']:>8.2f}ms")
    slowest = slowest_request(trees)
    if slowest is not None and slowest.root is not None:
        chain = critical_path(slowest.root)
        rendered = " -> ".join(
            f"{hop['name']} {hop['duration_ms']:.2f}ms" for hop in chain
            if hop["duration_ms"] is not None)
        lines.append("")
        lines.append(f"critical path (slowest request {slowest.trace_id}): "
                     f"{rendered}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# perf-regression sentinel
# --------------------------------------------------------------------- #


@dataclass
class RegressionFinding:
    """One sentinel verdict: a model's relative cost vs history."""

    kind: str                 # "per_model" | "compile" | "coverage"
    subject: str
    verdict: str              # "ok" | "regression" | "improvement" | "missing"
    ratio: float | None = None
    current: float | None = None
    history: float | None = None
    detail: str = ""

    @property
    def is_regression(self) -> bool:
        return self.verdict == "regression"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "subject": self.subject,
                "verdict": self.verdict, "ratio": self.ratio,
                "current": self.current, "history": self.history,
                "detail": self.detail}


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _bench_data(payload: dict) -> dict:
    """Accept either the bench wrapper ({"data": ...}) or bare data."""
    return payload.get("data", payload)


def check_bench_regression(
    current: dict,
    history: dict,
    *,
    threshold: float = 2.0,
    compile_slack: float = 1.5,
) -> list[RegressionFinding]:
    """Compare a fresh bench run against history, machine-speed invariant.

    Per-model epoch seconds are divided by the geometric mean across the
    models common to both runs before comparing, so a uniformly faster or
    slower machine cancels out; a model whose *normalized* cost grew by
    ``threshold``× is flagged.  With six models, a planted 3× slowdown in
    one model lands at ~2.5× normalized (the slowdown inflates the mean
    by 3^(1/6)) while ±20% per-model noise stays near 1×.  The compile
    ratio (``compiled_over_eager``) is compared directly — it is already
    a within-run ratio — with ``compile_slack`` of room.

    With fewer than two common models, normalization would cancel the
    signal entirely, so the raw ratio is used (noted in ``detail``).
    """
    cur = _bench_data(current)
    hist = _bench_data(history)
    cur_seconds = dict(cur.get("seconds_per_epoch", {}))
    hist_seconds = dict(hist.get("seconds_per_epoch", {}))
    findings: list[RegressionFinding] = []

    for name in sorted(set(hist_seconds) - set(cur_seconds)):
        findings.append(RegressionFinding(
            kind="coverage", subject=name, verdict="missing",
            history=hist_seconds[name],
            detail="model present in history but absent from the fresh run"))

    common = sorted(set(cur_seconds) & set(hist_seconds))
    if common:
        normalized = len(common) >= 2
        cur_gm = _geomean([cur_seconds[m] for m in common]) if normalized else 1.0
        hist_gm = _geomean([hist_seconds[m] for m in common]) if normalized else 1.0
        for name in common:
            cur_v, hist_v = cur_seconds[name], hist_seconds[name]
            if cur_v <= 0 or hist_v <= 0:
                continue
            ratio = (cur_v / cur_gm) / (hist_v / hist_gm)
            if ratio >= threshold:
                verdict = "regression"
            elif ratio <= 1.0 / threshold:
                verdict = "improvement"
            else:
                verdict = "ok"
            findings.append(RegressionFinding(
                kind="per_model", subject=name, verdict=verdict, ratio=ratio,
                current=cur_v, history=hist_v,
                detail=("normalized by run geometric mean" if normalized
                        else "raw ratio (single common model)")))

    cur_compile = cur.get("compile_speedup", {}).get("compiled_over_eager")
    hist_compile = hist.get("compile_speedup", {}).get("compiled_over_eager")
    if cur_compile and hist_compile:
        ratio = cur_compile / hist_compile
        verdict = "regression" if ratio >= compile_slack else (
            "improvement" if ratio <= 1.0 / compile_slack else "ok")
        findings.append(RegressionFinding(
            kind="compile", subject="compiled_over_eager", verdict=verdict,
            ratio=ratio, current=cur_compile, history=hist_compile,
            detail="within-run ratio, compared directly"))
    return findings


def render_regressions(findings) -> str:
    """One line per finding, regressions first."""
    if not findings:
        return "bench sentinel: nothing to compare"
    ordered = sorted(findings, key=lambda f: f.verdict != "regression")
    lines = [f"{'verdict':<12} {'kind':<10} {'subject':<28} "
             f"{'ratio':>7} {'current':>10} {'history':>10}"]
    for f in ordered:
        ratio = f"{f.ratio:.2f}x" if f.ratio is not None else "-"
        cur = f"{f.current:.4f}" if f.current is not None else "-"
        hist = f"{f.history:.4f}" if f.history is not None else "-"
        lines.append(f"{f.verdict:<12} {f.kind:<10} {f.subject:<28} "
                     f"{ratio:>7} {cur:>10} {hist:>10}")
    regressions = sum(1 for f in findings if f.is_regression)
    lines.append("")
    lines.append(f"bench sentinel: {regressions} regression(s) across "
                 f"{len(findings)} check(s)")
    return "\n".join(lines)
