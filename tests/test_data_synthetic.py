"""Tests for the synthetic generator's planted structure."""

import numpy as np
import pytest

from repro.data import ElectricityGenerator, SpatioTemporalGenerator, SyntheticConfig


def _gen(**overrides):
    defaults = dict(num_nodes=12, steps_per_day=24, num_days=14, seed=3)
    defaults.update(overrides)
    return SpatioTemporalGenerator(SyntheticConfig(**defaults))


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = _gen().generate()
        b = _gen().generate()
        np.testing.assert_allclose(a.values, b.values)

    def test_different_seed_different_data(self):
        a = _gen(seed=1).generate()
        b = _gen(seed=2).generate()
        assert not np.allclose(a.values, b.values)


class TestShapes:
    def test_dataset_dimensions(self):
        ds = _gen().generate()
        assert ds.values.shape == (24 * 14, 12, 2)
        assert ds.time_index.shape == (24 * 14,)
        assert ds.coordinates.shape == (12, 2)
        assert ds.areas.shape == (12,)
        assert ds.num_steps == 24 * 14
        assert ds.num_nodes == 12

    def test_calendar_fields(self):
        ds = _gen(start_weekday=3).generate()
        assert ds.slot_of_day.max() == 23
        assert ds.day_of_week[0] == 3
        assert ds.day_of_week[24] == 4

    def test_nonnegative_flows(self):
        ds = _gen().generate()
        assert (ds.values >= 0).all()


class TestPlantedStructure:
    def test_daily_periodicity_fft_peak(self):
        """The strongest non-DC frequency of total outflow must be a
        harmonic of one cycle per day (the profile has two daily bumps, so
        the dominant harmonic may be the second)."""
        num_days = 20
        ds = _gen(num_days=num_days, day_factor_scale=0.05, slot_factor_scale=0.05).generate()
        signal = ds.values[:, :, 1].sum(axis=1)
        spectrum = np.abs(np.fft.rfft(signal - signal.mean()))
        peak = np.argmax(spectrum[1:]) + 1
        cycles_per_day = peak / num_days
        assert cycles_per_day == pytest.approx(round(cycles_per_day), abs=0.05)
        assert 1.0 <= cycles_per_day <= 3.0

    def test_weekday_weekend_periodicity(self):
        """Business-area morning flow must be much higher on weekdays."""
        gen = _gen(num_days=21, day_factor_scale=0.0, slot_factor_scale=0.0)
        ds = gen.generate()
        business = ds.areas == 1
        morning = ds.slot_of_day == 4  # phase ~ 0.17: morning bump
        weekday = ds.day_of_week < 5
        inflow = ds.values[:, business, 0]
        weekday_level = inflow[morning & weekday].mean()
        weekend_level = inflow[morning & ~weekday].mean()
        assert weekday_level > 2.0 * weekend_level

    def test_od_matrix_time_varying(self):
        gen = _gen()
        assert not np.allclose(gen.od_matrix(4), gen.od_matrix(12))

    def test_od_matrix_weekly_periodic(self):
        """OD at the same slot one week apart must be identical (the
        propensity field is perfectly periodic; only flows carry noise)."""
        gen = _gen(num_days=15)
        np.testing.assert_allclose(gen.od_matrix(5), gen.od_matrix(5 + 7 * 24))

    def test_od_zero_diagonal_nonnegative(self):
        m = _gen().od_matrix(10)
        np.testing.assert_allclose(np.diag(m), 0.0)
        assert (m >= 0).all()

    def test_dataset_od_accessor(self):
        ds = _gen().generate()
        np.testing.assert_allclose(ds.od_matrix(7), ds.generator.od_matrix(7))

    def test_flow_conservation(self):
        """Total inflow ≈ total (lagged) outflow: passengers are conserved
        through the routing step."""
        ds = _gen(num_days=5).generate()
        total_out = ds.values[:-1, :, 1].sum()
        total_in = ds.values[1:, :, 0].sum()
        assert total_in == pytest.approx(total_out, rel=1e-6)

    def test_modulation_makes_days_differ(self):
        """With day shocks on, the same weekday slot differs across weeks
        (what defeats HA); with shocks off it is nearly identical."""
        noisy = _gen(num_days=15, noise_scale=0.0).generate()
        clean = _gen(num_days=15, noise_scale=0.0, day_factor_scale=0.0, slot_factor_scale=0.0).generate()
        slot = 10
        week_apart = lambda ds: np.abs(ds.values[slot] - ds.values[slot + 7 * 24]).mean()
        assert week_apart(clean) < 1e-9
        assert week_apart(noisy) > 1.0


class TestElectricity:
    def test_single_feature(self):
        ds = ElectricityGenerator(SyntheticConfig(num_nodes=6, steps_per_day=24, num_days=10)).generate()
        assert ds.values.shape == (240, 6, 1)
        assert (ds.values >= 0).all()

    def test_area_correlation_planted(self):
        """Nodes sharing an area must correlate more than nodes across
        areas (the latent-factor structure)."""
        ds = ElectricityGenerator(
            SyntheticConfig(num_nodes=12, steps_per_day=24, num_days=20, noise_scale=0.02)
        ).generate()
        series = ds.values[:, :, 0]
        corr = np.corrcoef(series.T)
        same, cross = [], []
        for i in range(12):
            for j in range(i + 1, 12):
                (same if ds.areas[i] == ds.areas[j] else cross).append(corr[i, j])
        assert np.mean(same) > np.mean(cross)
