"""DCRNN (Li et al., ICLR 2018): diffusion-convolutional recurrent
network on a *pre-defined* distance graph.

Gates convolve over bidirectional random-walk diffusion supports of the
fixed graph; encoder-decoder with autoregressive decoding, as in the
original (scheduled sampling omitted — it mainly matters at much longer
training budgets).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, stack, zeros
from ..graph.cheb import diffusion_supports
from ..nn import Linear, Module, ModuleList
from .cells import FixedGraphGRUCell


class DCRNN(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        adjacency: np.ndarray,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        max_diffusion_step: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = adjacency.shape[0]
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        supports = diffusion_supports(adjacency, max_step=max_diffusion_step)
        enc_dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        dec_dims = [out_dim] + [hidden_dim] * (num_layers - 1)
        self.encoder_cells = ModuleList(
            [FixedGraphGRUCell(supports, d, hidden_dim, rng=rng) for d in enc_dims]
        )
        self.decoder_cells = ModuleList(
            [FixedGraphGRUCell(supports, d, hidden_dim, rng=rng) for d in dec_dims]
        )
        self.head = Linear(hidden_dim, out_dim, rng=rng)

    def _run_layers(self, cells: ModuleList, x: Tensor, hiddens: list[Tensor]) -> list[Tensor]:
        new_hiddens = []
        layer_input = x
        for cell, hidden in zip(cells, hiddens):
            layer_input = cell(layer_input, hidden)
            new_hiddens.append(layer_input)
        return new_hiddens

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            hiddens = self._run_layers(self.encoder_cells, x[:, t], hiddens)
        decoder_input = x[:, history - 1, :, : self.out_dim]
        outputs = []
        for _ in range(self.horizon):
            hiddens = self._run_layers(self.decoder_cells, decoder_input, hiddens)
            prediction = self.head(hiddens[-1])
            outputs.append(prediction)
            decoder_input = prediction
        return stack(outputs, axis=1)
