"""Experiment runner: one (model, dataset) cell of a paper table.

Wraps training, evaluation, parameter counting, and timing so every
benchmark regenerates its table row through the same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..baselines.registry import NEURAL_BASELINES, STATISTICAL_BASELINES, build_baseline
from ..core.tgcrn import TGCRN
from ..core.variants import build_variant
from ..data.datasets import ForecastingTask
from ..metrics.errors import MetricReport, evaluate, horizon_report
from ..nn import Module
from .trainer import Trainer, TrainingConfig


@dataclass
class ExperimentResult:
    """Everything a table/figure needs about one trained model."""

    model_name: str
    dataset: str
    overall: MetricReport
    per_horizon: list[MetricReport]
    num_parameters: int
    seconds_per_epoch: float
    epochs_run: int
    history: Any = None
    model: Any = None

    def horizon_metric(self, metric: str) -> list[float]:
        return [getattr(report, metric.lower()) for report in self.per_horizon]


def default_tgcrn_kwargs(task: ForecastingTask, hidden_dim: int = 32, node_dim: int = 16, time_dim: int = 8, num_layers: int = 2) -> dict:
    """CPU-scaled TGCRN configuration for a task (paper scale: 64/2/64/32)."""
    return dict(
        num_nodes=task.num_nodes,
        in_dim=task.in_dim,
        out_dim=task.out_dim,
        horizon=task.horizon,
        hidden_dim=hidden_dim,
        num_layers=num_layers,
        node_dim=node_dim,
        time_dim=time_dim,
        steps_per_day=task.steps_per_day,
    )


def run_experiment(
    model_name: str,
    task: ForecastingTask,
    config: TrainingConfig | None = None,
    model_kwargs: dict | None = None,
    hidden_dim: int = 32,
    num_layers: int = 2,
    seed: int = 0,
    keep_model: bool = False,
    logger=None,
    trainer=None,
) -> ExperimentResult:
    """Train/fit ``model_name`` on ``task`` and report test metrics.

    ``model_name`` is "tgcrn", a variant key ("wo_tagsl", ...), or any
    baseline name from the registry.  ``logger`` is an optional
    :class:`~repro.obs.RunLogger` forwarded to :meth:`Trainer.fit`.
    ``trainer`` substitutes a pre-built trainer — e.g. a
    :class:`~repro.resilience.GuardedTrainer` for divergence-protected
    runs; when given, its own config wins over ``config``.
    """
    if trainer is not None:
        config = trainer.config
    else:
        config = config or TrainingConfig(seed=seed)
        trainer = Trainer(config)
    rng = np.random.default_rng(seed)

    if model_name in STATISTICAL_BASELINES:
        start = time.perf_counter()
        model = build_baseline(model_name, task, seed=seed)
        fit_seconds = time.perf_counter() - start
        prediction, target = model.evaluate(task, "test")
        return ExperimentResult(
            model_name=model_name,
            dataset=task.name,
            overall=evaluate(prediction, target),
            per_horizon=horizon_report(prediction, target),
            num_parameters=0,
            seconds_per_epoch=fit_seconds,
            epochs_run=1,
            model=model if keep_model else None,
        )

    use_tdl: bool | None = None
    if model_name == "tgcrn" or model_name in _variant_names():
        kwargs = default_tgcrn_kwargs(task, hidden_dim=hidden_dim, num_layers=num_layers)
        if model_kwargs:
            kwargs.update(model_kwargs)
        variant_key = "tgcrn" if model_name == "tgcrn" else model_name
        model, spec = build_variant(variant_key, kwargs, rng=rng)
        use_tdl = spec.use_tdl
    elif model_name in NEURAL_BASELINES:
        model = build_baseline(model_name, task, hidden_dim=hidden_dim, num_layers=num_layers, seed=seed)
    else:
        raise ValueError(f"unknown model {model_name!r}")

    history = trainer.fit(model, task, use_tdl=use_tdl, logger=logger)
    overall, per_horizon = trainer.test_report(model, task)
    return ExperimentResult(
        model_name=model_name,
        dataset=task.name,
        overall=overall,
        per_horizon=per_horizon,
        num_parameters=model.num_parameters(),
        seconds_per_epoch=float(np.mean(history.epoch_seconds)) if history.epoch_seconds else 0.0,
        epochs_run=history.epochs_run,
        history=history,
        model=model if keep_model else None,
    )


@dataclass
class RepeatedResult:
    """Aggregate of one model trained on several seeds."""

    model_name: str
    dataset: str
    runs: list[ExperimentResult]

    def mean(self, metric: str = "mae") -> float:
        return float(np.mean([getattr(r.overall, metric) for r in self.runs]))

    def std(self, metric: str = "mae") -> float:
        return float(np.std([getattr(r.overall, metric) for r in self.runs]))

    def __str__(self) -> str:
        return (
            f"{self.model_name} on {self.dataset} over {len(self.runs)} seeds: "
            f"MAE {self.mean('mae'):.3f} ± {self.std('mae'):.3f}, "
            f"RMSE {self.mean('rmse'):.3f} ± {self.std('rmse'):.3f}"
        )


def run_repeated(
    model_name: str,
    task: ForecastingTask,
    config: TrainingConfig | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    **kwargs,
) -> RepeatedResult:
    """Train ``model_name`` on several seeds and aggregate (mean ± std).

    Accepts the same keyword arguments as :func:`run_experiment`; each
    run gets its own seed in both the model init and the training config.
    """
    base = config or TrainingConfig()
    runs = []
    for seed in seeds:
        seeded = TrainingConfig(**{**base.__dict__, "seed": seed})
        runs.append(run_experiment(model_name, task, seeded, seed=seed, **kwargs))
    return RepeatedResult(model_name=model_name, dataset=task.name, runs=runs)


def _variant_names() -> set[str]:
    from ..core.variants import VARIANTS

    return set(VARIANTS)


def count_parameters(model: Module) -> int:
    """Convenience alias used by the Table VIII bench."""
    return model.num_parameters()
