"""Deliberately naive reference implementations of the paper's equations.

Every function here is a slow, loop-based, numpy-scalar rendition of a
production path in ``repro.core`` / ``repro.graph`` — written directly from
the paper's math (TagSL Eq. 6–9, the discrepancy loss Eq. 3–5, the GCGRU
gate equations of §III-B, Chebyshev propagation) with no vectorization, no
broadcasting tricks, and no shared code with the production modules.  They
exist as *oracles*: any future optimization PR (vectorized kernels, graph
caching, batching) must keep the production outputs elementwise equal to
these references (see ``repro.verify.crosscheck``).

Keep these functions boring.  Clarity and obvious one-to-one correspondence
with the paper beat speed; they only ever run on tiny shapes.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "chebyshev_supports_reference",
    "discrepancy_loss_reference",
    "gcgru_cell_reference",
    "node_adaptive_conv_reference",
    "periodic_discriminant_reference",
    "row_softmax_reference",
    "static_adjacency_reference",
    "tagsl_adjacency_reference",
    "trend_factor_reference",
]


def _sigmoid(value: float) -> float:
    if value >= 0.0:
        return 1.0 / (1.0 + math.exp(-value))
    expv = math.exp(value)
    return expv / (1.0 + expv)


def _matmul_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple-loop matrix product of two 2-D arrays."""
    rows, inner = a.shape
    inner2, cols = b.shape
    assert inner == inner2, (a.shape, b.shape)
    out = np.zeros((rows, cols))
    for i in range(rows):
        for j in range(cols):
            acc = 0.0
            for k in range(inner):
                acc += a[i, k] * b[k, j]
            out[i, j] = acc
    return out


# --------------------------------------------------------------------- #
# TagSL (Eq. 6–9)
# --------------------------------------------------------------------- #


def static_adjacency_reference(node_embedding: np.ndarray) -> np.ndarray:
    """Eq. 6: ``A_v[i, j] = ⟨E_v[i], E_v[j]⟩``, shape (N, N)."""
    num_nodes = node_embedding.shape[0]
    out = np.zeros((num_nodes, num_nodes))
    for i in range(num_nodes):
        for j in range(num_nodes):
            acc = 0.0
            for k in range(node_embedding.shape[1]):
                acc += node_embedding[i, k] * node_embedding[j, k]
            out[i, j] = acc
    return out


def trend_factor_reference(time_table: np.ndarray, time_indices: np.ndarray) -> np.ndarray:
    """Eq. 7: ``η_t = ⟨E_τ^t, E_τ^{t-1}⟩`` per batch element, shape (B,).

    ``time_table`` is the learned slot table (num_slots, d_τ); indices wrap
    modulo ``num_slots`` exactly as ``DiscreteTimeEmbedding`` does, so the
    step before slot 0 is the last slot of the previous day.
    """
    num_slots = time_table.shape[0]
    out = np.zeros(len(time_indices))
    for b, t in enumerate(np.asarray(time_indices, dtype=np.int64)):
        current = time_table[int(t) % num_slots]
        previous = time_table[int(t - 1) % num_slots]
        acc = 0.0
        for k in range(time_table.shape[1]):
            acc += current[k] * previous[k]
        out[b] = acc
    return out


def periodic_discriminant_reference(node_state: np.ndarray) -> np.ndarray:
    """Eq. 8: ``A_p[b, i, j] = tanh(⟨X[b, i], X[b, j]⟩)``, shape (B, N, N)."""
    batch, num_nodes, channels = node_state.shape
    out = np.zeros((batch, num_nodes, num_nodes))
    for b in range(batch):
        for i in range(num_nodes):
            for j in range(num_nodes):
                acc = 0.0
                for c in range(channels):
                    acc += node_state[b, i, c] * node_state[b, j, c]
                out[b, i, j] = math.tanh(acc)
    return out


def tagsl_adjacency_reference(
    node_embedding: np.ndarray,
    time_table: np.ndarray,
    node_state: np.ndarray,
    time_indices: np.ndarray,
    alpha: float = 0.3,
    use_trend: bool = True,
    use_pdf: bool = True,
) -> np.ndarray:
    """Eq. 9: ``A^t = (1 + α·σ(A_p)) ⊙ (A_v + η_t)``, shape (B, N, N)."""
    batch = len(np.asarray(time_indices))
    num_nodes = node_embedding.shape[0]
    static = static_adjacency_reference(node_embedding)
    trend = trend_factor_reference(time_table, time_indices) if use_trend else np.zeros(batch)
    periodic = periodic_discriminant_reference(node_state) if use_pdf else None
    out = np.zeros((batch, num_nodes, num_nodes))
    for b in range(batch):
        for i in range(num_nodes):
            for j in range(num_nodes):
                value = static[i, j] + trend[b]
                if use_pdf:
                    gate = 1.0 + alpha * _sigmoid(periodic[b, i, j])
                    value = gate * value
                out[b, i, j] = value
    return out


def row_softmax_reference(adjacency: np.ndarray) -> np.ndarray:
    """Eq. 11's default Norm: softmax over each adjacency row."""
    out = np.zeros_like(adjacency)
    flat_rows = adjacency.reshape(-1, adjacency.shape[-1])
    out_rows = out.reshape(-1, adjacency.shape[-1])
    for r in range(flat_rows.shape[0]):
        row = flat_rows[r]
        peak = max(float(v) for v in row)
        exps = [math.exp(float(v) - peak) for v in row]
        total = sum(exps)
        for c, e in enumerate(exps):
            out_rows[r, c] = e / total
    return out


# --------------------------------------------------------------------- #
# Time Discrepancy Learning (Eq. 3–5)
# --------------------------------------------------------------------- #


def discrepancy_loss_reference(
    time_table: np.ndarray,
    anchor_values: np.ndarray,
    adjacent_values: np.ndarray,
    mid_values: np.ndarray,
    distant_values: np.ndarray,
    l2_eps: float = 1e-12,
) -> float:
    """Eq. 3–5 on one batch of Algorithm-1 samples, as a plain float.

    ζ (Eq. 4) is the Euclidean distance between slot embeddings; d (Eq. 5)
    is the L1 distance between *within-day* slot positions floored at 1 —
    the day-periodic table makes absolute-index distances unsatisfiable, so
    F_dist works on slot positions exactly as ``core.discrepancy`` does.
    ``l2_eps`` mirrors the numerical floor inside ``autodiff.l2_norm``.
    """
    num_slots = time_table.shape[0]
    batch = len(anchor_values)
    loss = 0.0
    for b in range(batch):
        anchor_slot = int(anchor_values[b]) % num_slots
        anchor_vec = time_table[anchor_slot]
        ratios = []
        for values in (adjacent_values, mid_values, distant_values):
            slot = int(values[b]) % num_slots
            vec = time_table[slot]
            squared = 0.0
            for k in range(time_table.shape[1]):
                squared += (vec[k] - anchor_vec[k]) ** 2
            zeta = math.sqrt(squared + l2_eps)
            delta = abs(float(slot) - float(anchor_slot))
            dist = max(delta, 1.0)
            ratios.append(zeta / dist)
        loss += (
            abs(ratios[0] - ratios[1])
            + abs(ratios[0] - ratios[2])
            + abs(ratios[1] - ratios[2])
        )
    return loss / batch


# --------------------------------------------------------------------- #
# GCGRU (§III-B, Eq. 10–16)
# --------------------------------------------------------------------- #


def node_adaptive_conv_reference(
    x: np.ndarray,
    adjacency: np.ndarray,
    node_embed: np.ndarray,
    weight_pool: np.ndarray,
    bias_pool: np.ndarray,
    cheb_k: int,
) -> np.ndarray:
    """Node-adaptive graph convolution (Eq. 10 + 12), shape (B, N, C_out).

    Per node *n*: gather the polynomial supports ``[x, Âx, Â²x, ...]``,
    concatenate along channels, then apply the weights ``W_n = Ê[n]·W̃``
    and bias ``b_n = Ê[n]·b̃`` materialized from the pools.
    """
    batch, num_nodes, in_dim = x.shape
    out_dim = bias_pool.shape[1]
    out = np.zeros((batch, num_nodes, out_dim))
    for b in range(batch):
        # polynomial supports, each (N, C_in)
        terms = [x[b]]
        for _ in range(cheb_k - 1):
            terms.append(_matmul_naive(adjacency[b], terms[-1]))
        for n in range(num_nodes):
            conv = np.concatenate([term[n] for term in terms])  # (K*C_in,)
            # materialize this node's weight matrix from the pool
            pooled = np.zeros(weight_pool.shape[1])
            for e in range(node_embed.shape[-1]):
                pooled += node_embed[b, n, e] * weight_pool[e]
            weight = pooled.reshape(cheb_k * in_dim, out_dim)
            bias = np.zeros(out_dim)
            for e in range(node_embed.shape[-1]):
                bias += node_embed[b, n, e] * bias_pool[e]
            for j in range(out_dim):
                acc = 0.0
                for k in range(cheb_k * in_dim):
                    acc += conv[k] * weight[k, j]
                out[b, n, j] = acc + bias[j]
    return out


def gcgru_cell_reference(
    x: np.ndarray,
    h: np.ndarray,
    adjacency: np.ndarray,
    node_embed: np.ndarray,
    gate_weight_pool: np.ndarray,
    gate_bias_pool: np.ndarray,
    candidate_weight_pool: np.ndarray,
    candidate_bias_pool: np.ndarray,
    cheb_k: int,
) -> np.ndarray:
    """One GCGRU step (Eq. 13–16), shape (B, N, H).

    Matches ``core.gcgru.GCGRUCell``: the gate convolution produces
    ``[z ; r]`` stacked along channels (update gate first), the candidate
    convolution sees ``[x ; r⊙h]``, and the new state is
    ``(1 − z)·h + z·h̃``.
    """
    batch, num_nodes, hidden_dim = h.shape
    xh = np.concatenate([x, h], axis=-1)
    gates = node_adaptive_conv_reference(
        xh, adjacency, node_embed, gate_weight_pool, gate_bias_pool, cheb_k
    )
    z = np.zeros((batch, num_nodes, hidden_dim))
    r = np.zeros((batch, num_nodes, hidden_dim))
    for b in range(batch):
        for n in range(num_nodes):
            for c in range(hidden_dim):
                z[b, n, c] = _sigmoid(gates[b, n, c])                # Eq. 13
                r[b, n, c] = _sigmoid(gates[b, n, hidden_dim + c])  # Eq. 14
    xrh = np.concatenate([x, r * h], axis=-1)
    candidate = node_adaptive_conv_reference(
        xrh, adjacency, node_embed, candidate_weight_pool, candidate_bias_pool, cheb_k
    )
    out = np.zeros((batch, num_nodes, hidden_dim))
    for b in range(batch):
        for n in range(num_nodes):
            for c in range(hidden_dim):
                h_tilde = math.tanh(candidate[b, n, c])              # Eq. 15
                out[b, n, c] = (1.0 - z[b, n, c]) * h[b, n, c] + z[b, n, c] * h_tilde  # Eq. 16
    return out


# --------------------------------------------------------------------- #
# Chebyshev propagation
# --------------------------------------------------------------------- #


def chebyshev_supports_reference(normalized: np.ndarray, order: int = 2) -> list[np.ndarray]:
    """Chebyshev recurrence ``T_0 = I, T_1 = L, T_k = 2·L·T_{k-1} − T_{k-2}``.

    Accepts a single (N, N) matrix or a batch (B, N, N); returns ``order``
    matrices of the input shape, matching ``graph.cheb.chebyshev_supports``.
    """
    arr = np.asarray(normalized, dtype=float)
    if arr.ndim == 2:
        n = arr.shape[-1]
        supports = [np.eye(n), arr.copy()]
        for _ in range(order - 2):
            supports.append(2.0 * _matmul_naive(arr, supports[-1]) - supports[-2])
        return supports[:order]
    # batched: run the 2-D recurrence per element and restack
    stacked: list[list[np.ndarray]] = [
        chebyshev_supports_reference(arr[b], order) for b in range(arr.shape[0])
    ]
    return [np.stack([per_b[k] for per_b in stacked]) for k in range(order)]
