"""Sliding-window construction and chronological splits.

A *forecasting sample* pairs P historical frames with Q future frames and
remembers the absolute time index of all P+Q steps (TagSL needs future
timestamps, which are always known at prediction time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class WindowSet:
    """A set of forecasting samples.

    Attributes
    ----------
    inputs: (S, P, N, d) histories.
    targets: (S, Q, N, d_out) futures.
    time_indices: (S, P+Q) absolute step index per frame.
    """

    inputs: np.ndarray
    targets: np.ndarray
    time_indices: np.ndarray

    def __len__(self) -> int:
        return self.inputs.shape[0]

    @property
    def history(self) -> int:
        return self.inputs.shape[1]

    @property
    def horizon(self) -> int:
        return self.targets.shape[1]


def make_windows(
    values: np.ndarray,
    time_index: np.ndarray,
    history: int,
    horizon: int,
    target_dim: int | None = None,
    stride: int = 1,
) -> WindowSet:
    """Slide a (history, horizon) window over (T, N, d) values.

    ``target_dim`` truncates target features (e.g. predict inflow/outflow
    from richer inputs); defaults to all input features.
    """
    total = values.shape[0]
    span = history + horizon
    if total < span:
        raise ValueError(f"series of length {total} too short for P+Q={span}")
    starts = np.arange(0, total - span + 1, stride)
    inputs = np.stack([values[s : s + history] for s in starts])
    targets = np.stack([values[s + history : s + span] for s in starts])
    if target_dim is not None:
        targets = targets[..., :target_dim]
    times = np.stack([time_index[s : s + span] for s in starts])
    return WindowSet(inputs=inputs, targets=targets, time_indices=times)


def chronological_split(
    windows: WindowSet, train_fraction: float, val_fraction: float
) -> tuple[WindowSet, WindowSet, WindowSet]:
    """Split samples by time order into train/val/test (paper protocol)."""
    if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1:
        raise ValueError("train + val fractions must leave room for test")
    count = len(windows)
    train_end = int(count * train_fraction)
    val_end = int(count * (train_fraction + val_fraction))
    if train_end == 0 or val_end == train_end or val_end == count:
        raise ValueError(f"split of {count} samples produced an empty subset")

    def subset(lo: int, hi: int) -> WindowSet:
        return WindowSet(
            inputs=windows.inputs[lo:hi],
            targets=windows.targets[lo:hi],
            time_indices=windows.time_indices[lo:hi],
        )

    return subset(0, train_end), subset(train_end, val_end), subset(val_end, count)


def split_series_by_steps(
    values: np.ndarray, time_index: np.ndarray, boundaries: tuple[int, int]
) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Split the raw series at absolute step boundaries (e.g. by days).

    Windowing each split independently avoids train/test leakage through
    windows straddling the boundary — this matches how the metro papers
    partition by date.
    """
    first, second = boundaries
    if not 0 < first < second < values.shape[0]:
        raise ValueError(f"invalid boundaries {boundaries} for length {values.shape[0]}")
    return (
        (values[:first], time_index[:first]),
        (values[first:second], time_index[first:second]),
        (values[second:], time_index[second:]),
    )
