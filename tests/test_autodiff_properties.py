"""Property-based tests (hypothesis) for autodiff invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, tensor, unbroadcast

_finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


def _arr(shape_max_dims=3, side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=shape_max_dims, min_side=1, max_side=side),
        elements=_finite,
    )


@given(_arr())
@settings(max_examples=40, deadline=None)
def test_add_commutes(a):
    x, y = tensor(a), tensor(a[::-1].copy())
    np.testing.assert_allclose((x + y).data, (y + x).data)


@given(_arr())
@settings(max_examples=40, deadline=None)
def test_sum_matches_numpy(a):
    np.testing.assert_allclose(tensor(a).sum().item(), a.sum(), rtol=1e-9, atol=1e-9)


@given(_arr())
@settings(max_examples=40, deadline=None)
def test_mean_gradient_is_uniform(a):
    x = tensor(a, requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 1.0 / a.size))


@given(_arr())
@settings(max_examples=40, deadline=None)
def test_reshape_roundtrip_preserves_gradient(a):
    x = tensor(a, requires_grad=True)
    x.reshape((-1,)).reshape(a.shape).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@given(_arr(shape_max_dims=2))
@settings(max_examples=40, deadline=None)
def test_mul_gradient_is_other_operand(a):
    x = tensor(a, requires_grad=True)
    y = tensor(np.full_like(a, 2.5))
    (x * y).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 2.5))


@given(
    arrays(np.float64, array_shapes(min_dims=1, max_dims=4, min_side=1, max_side=4), elements=_finite)
)
@settings(max_examples=60, deadline=None)
def test_unbroadcast_inverts_broadcast(a):
    """For any array, broadcasting to a bigger shape then unbroadcasting a
    ones-gradient yields the broadcast multiplicity."""
    target_shape = (3,) + a.shape
    g = np.ones(target_shape)
    reduced = unbroadcast(g, a.shape)
    np.testing.assert_allclose(reduced, np.full(a.shape, 3.0))


@given(_arr(shape_max_dims=2, side=5), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_scalar_pow_gradient(a, power):
    x = tensor(np.abs(a) + 1.0, requires_grad=True)
    (x ** power).sum().backward()
    np.testing.assert_allclose(x.grad, power * (np.abs(a) + 1.0) ** (power - 1), rtol=1e-8)


@given(_arr(shape_max_dims=2))
@settings(max_examples=40, deadline=None)
def test_tanh_bounds_and_gradient_bound(a):
    x = tensor(a, requires_grad=True)
    out = x.tanh()
    assert (np.abs(out.data) <= 1.0).all()
    out.sum().backward()
    assert (x.grad <= 1.0 + 1e-12).all()
    assert (x.grad >= 0.0).all()


@given(_arr(shape_max_dims=3))
@settings(max_examples=40, deadline=None)
def test_abs_gradient_is_sign(a):
    x = tensor(a, requires_grad=True)
    x.abs().sum().backward()
    np.testing.assert_allclose(x.grad, np.sign(a))


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_matmul_shape_contract(n, m):
    rng = np.random.default_rng(0)
    a = tensor(rng.normal(size=(n, 3)))
    b = tensor(rng.normal(size=(3, m)))
    assert (a @ b).shape == (n, m)
