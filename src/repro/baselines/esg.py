"""ESG (Ye et al., KDD 2022): evolving graph structure learning.

A dedicated GRU evolves per-node embeddings across time from the current
input; at each step the embeddings define an *evolving* adjacency
softmax(relu(e_t e_tᵀ)) driving a graph-conv GRU — a dynamic graph that
reacts to the hidden state but (unlike TagSL) has no explicit notion of
time, trend, or periodicity.  Multi-scale stacking is reduced to the
single scale that matters at the paper's short horizons.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax, zeros
from ..nn import GRUCell, Linear, Module, ModuleList, Parameter, init
from .cells import DynamicGraphGRUCell


class ESG(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 1,
        embed_dim: int = 16,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.embed_dim = embed_dim
        self.initial_embedding = Parameter(init.normal((num_nodes, embed_dim), rng, std=1.0 / np.sqrt(embed_dim)))
        # The graph-evolution GRU consumes each node's current features.
        self.evolver = GRUCell(in_dim, embed_dim, rng=rng)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        self.cells = ModuleList([DynamicGraphGRUCell(d, hidden_dim, hops=1, rng=rng) for d in dims])
        self.head = Linear(hidden_dim, horizon * out_dim, rng=rng)

    def _evolve(self, frame: Tensor, embedding: Tensor) -> Tensor:
        """One step of embedding evolution; shapes fold nodes into batch."""
        batch, num_nodes, in_dim = frame.shape
        flat_x = frame.reshape(batch * num_nodes, in_dim)
        flat_e = embedding.reshape(batch * num_nodes, self.embed_dim)
        return self.evolver(flat_x, flat_e).reshape(batch, num_nodes, self.embed_dim)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        embedding = self.initial_embedding.unsqueeze(0).broadcast_to(
            (batch, self.num_nodes, self.embed_dim)
        )
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            frame = x[:, t]
            embedding = self._evolve(frame, embedding)
            logits = (embedding @ embedding.swapaxes(-1, -2)).relu()
            adjacency = softmax(logits, axis=-1)
            layer_input = frame
            new_hiddens = []
            for cell, hidden in zip(self.cells, hiddens):
                layer_input = cell(layer_input, hidden, adjacency)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
        flat = self.head(hiddens[-1])
        out = flat.reshape(batch, self.num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
