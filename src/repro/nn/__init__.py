"""Neural-network library built on the autodiff substrate."""

from .module import Module, ModuleList, Parameter
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, Sequential, get_activation
from .rnn import GRU, LSTM, GRUCell, LSTMCell
from .conv import Conv1d, GatedTCNBlock
from .attention import MultiHeadAttention, TransformerBlock, causal_mask, scaled_dot_product_attention
from .optim import SGD, Adam, AdamW, MultiStepLR, Optimizer, clip_grad_norm
from .serialization import (
    CheckpointCorruptionError,
    load_checkpoint,
    load_optimizer,
    save_checkpoint,
    save_optimizer,
    state_hash,
    verify_checkpoint,
)
from . import init

__all__ = [
    "Adam",
    "AdamW",
    "CheckpointCorruptionError",
    "Conv1d",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "GatedTCNBlock",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "MultiStepLR",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "TransformerBlock",
    "causal_mask",
    "clip_grad_norm",
    "get_activation",
    "init",
    "load_checkpoint",
    "load_optimizer",
    "save_checkpoint",
    "save_optimizer",
    "scaled_dot_product_attention",
    "state_hash",
    "verify_checkpoint",
]
