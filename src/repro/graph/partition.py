"""Graph-aware node partitioning for the sharded serving fleet.

The fleet (:mod:`repro.serve.fleet`) splits the node set across shards,
each served by its own model over the node subset.  Edges that cross a
shard boundary are *lost* to the per-shard models (a shard's graph
convolution only sees its own nodes), so the partition objective is the
classic min-cut-with-balance: shards of near-equal size whose cut weight
— the adjacency mass on cross-shard edges — is as small as possible.

:func:`partition_nodes` is a deterministic greedy grower with a
boundary-refinement pass: seeds are spread apart, each remaining node
joins the capacity-feasible shard it is most strongly connected to, and
a few Kernighan–Lin-style sweeps then move boundary nodes wherever the
move strictly reduces the cut without breaking balance.  For the graph
sizes this repo serves (tens to hundreds of nodes) it runs in
milliseconds and needs no external solver.

:func:`learned_adjacency` extracts the partitioning weights from a
trained TGCRN: the time-invariant TagSL backbone ``Ê_v · Ê_vᵀ`` (Eq. 6).
Shard layouts must be stable across time, so partitioning keys on the
static component that every time-aware adjacency ``A^t`` modulates, not
on any single timestep's graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["NodePartition", "cut_weight", "learned_adjacency", "partition_nodes"]


@dataclass(frozen=True)
class NodePartition:
    """A disjoint cover of ``range(num_nodes)`` by shard node sets.

    ``cut_weight`` is the symmetrized adjacency mass on cross-shard
    edges; ``total_weight`` the mass on all edges, so
    ``cut_fraction = cut/total`` is the share of graph structure the
    sharded fleet gives up (0 when every edge is internal).
    """

    shards: tuple[tuple[int, ...], ...]
    cut_weight: float
    total_weight: float

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_nodes(self) -> int:
        return sum(len(s) for s in self.shards)

    @property
    def cut_fraction(self) -> float:
        return self.cut_weight / self.total_weight if self.total_weight > 0 else 0.0

    def shard_of(self, node: int) -> int:
        for shard_id, nodes in enumerate(self.shards):
            if node in nodes:
                return shard_id
        raise KeyError(f"node {node} is not covered by the partition")

    def to_dict(self) -> dict:
        return {
            "shards": [list(s) for s in self.shards],
            "cut_weight": self.cut_weight,
            "total_weight": self.total_weight,
            "cut_fraction": self.cut_fraction,
        }


def _symmetrize(adjacency: np.ndarray) -> np.ndarray:
    weights = np.abs(np.asarray(adjacency, dtype=np.float64))
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {weights.shape}")
    weights = (weights + weights.T) / 2.0
    np.fill_diagonal(weights, 0.0)
    return weights


def cut_weight(adjacency: np.ndarray, shards) -> float:
    """Symmetrized adjacency mass on edges crossing shard boundaries."""
    weights = _symmetrize(adjacency)
    labels = np.full(weights.shape[0], -1, dtype=np.int64)
    for shard_id, nodes in enumerate(shards):
        labels[np.asarray(list(nodes), dtype=np.int64)] = shard_id
    if np.any(labels < 0):
        raise ValueError("shards do not cover every node")
    cross = labels[:, None] != labels[None, :]
    return float(weights[cross].sum() / 2.0)


def partition_nodes(adjacency: np.ndarray, num_shards: int) -> NodePartition:
    """Split nodes into ``num_shards`` balanced shards minimizing the cut.

    Deterministic: ties break toward the lowest node / shard index, so
    the same adjacency always yields the same layout (a fleet restarted
    from the same checkpoint routes identically).  Shard sizes differ by
    at most one node.
    """
    weights = _symmetrize(adjacency)
    num_nodes = weights.shape[0]
    if not 1 <= num_shards <= num_nodes:
        raise ValueError(
            f"num_shards must be in [1, {num_nodes}] for {num_nodes} nodes, got {num_shards}"
        )
    capacity = math.ceil(num_nodes / num_shards)
    total = float(weights.sum() / 2.0)

    if num_shards == 1:
        return NodePartition((tuple(range(num_nodes)),), 0.0, total)

    # -- seeds: the strongest hub first, then nodes far from every seed --
    degrees = weights.sum(axis=1)
    seeds = [int(np.argmax(degrees))]
    while len(seeds) < num_shards:
        # Affinity of each candidate to the closest existing seed; the
        # next seed is the least-attached node, which spreads seeds
        # across weakly-connected regions of the graph.
        affinity = weights[:, seeds].max(axis=1)
        affinity[seeds] = np.inf
        seeds.append(int(np.argmin(affinity)))

    labels = np.full(num_nodes, -1, dtype=np.int64)
    sizes = np.zeros(num_shards, dtype=np.int64)
    # score[v, s] = total weight between node v and shard s's members
    score = np.zeros((num_nodes, num_shards), dtype=np.float64)

    def assign(node: int, shard: int) -> None:
        labels[node] = shard
        sizes[shard] += 1
        score[:, shard] += weights[:, node]

    for shard, seed in enumerate(seeds):
        assign(seed, shard)

    # -- greedy growth: globally best (node, shard) attachment next ------ #
    while np.any(labels < 0):
        unassigned = np.flatnonzero(labels < 0)
        open_shards = np.flatnonzero(sizes < capacity)
        gains = score[np.ix_(unassigned, open_shards)]
        flat = int(np.argmax(gains))
        node = int(unassigned[flat // len(open_shards)])
        shard = int(open_shards[flat % len(open_shards)])
        if gains.flat[flat] <= 0.0:
            # Isolated node: pack it into the emptiest open shard.
            shard = int(open_shards[np.argmin(sizes[open_shards])])
        assign(node, shard)

    # -- refinement: move boundary nodes while the cut strictly drops --- #
    floor = num_nodes // num_shards
    for _ in range(4):
        moved = False
        for node in range(num_nodes):
            source = int(labels[node])
            internal = score[node, source]
            best_gain, best_shard = 0.0, source
            for shard in range(num_shards):
                if shard == source or sizes[shard] >= capacity:
                    continue
                gain = score[node, shard] - internal
                if gain > best_gain:
                    best_gain, best_shard = gain, shard
            if best_shard != source and sizes[source] > max(floor, 1):
                labels[node] = best_shard
                sizes[source] -= 1
                sizes[best_shard] += 1
                score[:, source] -= weights[:, node]
                score[:, best_shard] += weights[:, node]
                moved = True
        if not moved:
            break

    shards = tuple(
        tuple(int(v) for v in np.flatnonzero(labels == shard))
        for shard in range(num_shards)
    )
    return NodePartition(shards, cut_weight(weights, shards), total)


def learned_adjacency(model) -> np.ndarray:
    """The TagSL static backbone ``|Ê_v · Ê_vᵀ|`` as partition weights.

    Accepts a TGCRN (or anything exposing ``.tagsl``) or a bare TagSL
    module; chaos wrappers delegating via ``.inner`` are unwrapped.
    Raises ``AttributeError`` when the model has no learned graph — the
    caller should fall back to a data-driven graph
    (:func:`repro.graph.builders.correlation_graph`).
    """
    from ..autodiff import no_grad

    while not hasattr(model, "tagsl") and not hasattr(model, "static_adjacency") \
            and hasattr(model, "inner"):
        model = model.inner
    tagsl = getattr(model, "tagsl", model)
    with no_grad():
        base = tagsl.static_adjacency().numpy()
    return np.abs(base)
