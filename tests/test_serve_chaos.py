"""End-to-end containment: the acceptance scenarios for repro.serve.

Two storylines (docs/serving.md):

* **NaN-emitting model** — zero valid requests see a 5xx-style error:
  every response is a healthy model forecast or an explicitly-marked
  ``historical_average`` fallback; the breaker trips within its
  configured threshold, recovers via half-open probe once the fault
  clears, and every transition lands in the JSONL log.
* **kill-mid-reload** — a checkpoint corrupted between write and warm
  reload is rejected by the integrity hash; the previously-live model
  keeps serving and a structured ``checkpoint_rejected`` record is
  logged.
"""

import json

import numpy as np
import pytest

from repro.core import TGCRN
from repro.nn import save_checkpoint
from repro.obs import RunLogger
from repro.resilience import corrupt_checkpoint
from repro.serve import CircuitBreaker, ForecastServer, NaNModel, SlowModel
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


FAILURE_THRESHOLD = 2
COOLDOWN = 10.0


def _model(task, name="chaos-serve-model"):
    return TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
        rng=named_rng(5, name),
    )


def _submit_valid(server, task, count, tag):
    for i in range(count):
        j = i % len(task.test)
        server.submit({"window": task.test.inputs[j],
                       "time_index": task.test.time_indices[j],
                       "id": f"{tag}-{i}"})


@pytest.fixture
def harness(tiny_task, tmp_path):
    clock = FakeClock()
    log_path = tmp_path / "serve.jsonl"
    logger = RunLogger(path=str(log_path), console=False)
    nan_model = NaNModel(_model(tiny_task), failing=False)
    server = ForecastServer(
        nan_model, tiny_task, queue_depth=64, max_batch=2,
        breaker=CircuitBreaker(failure_threshold=FAILURE_THRESHOLD,
                               cooldown=COOLDOWN, clock=clock),
        logger=logger, clock=clock,
    )
    yield server, nan_model, clock, log_path, logger
    logger.close()


def _events(log_path):
    return [json.loads(line) for line in log_path.open()]


class TestNaNContainment:
    def test_end_to_end_containment_and_recovery(self, tiny_task, harness):
        server, nan_model, clock, log_path, logger = harness

        # Phase 1: healthy traffic.
        _submit_valid(server, tiny_task, 4, "pre")
        healthy = server.drain()
        assert all(r.source == "model" for r in healthy)

        # Phase 2: the model goes bad mid-flight.
        nan_model.failing = True
        _submit_valid(server, tiny_task, 8, "nan")
        poisoned = server.drain()

        # Zero 5xx: every request answered, each explicitly marked.
        assert len(poisoned) == 8
        assert all(r.source == "historical_average" and r.degraded for r in poisoned)
        assert all(np.all(np.isfinite(r.prediction)) for r in poisoned)
        # Breaker tripped within the configured threshold: only the first
        # FAILURE_THRESHOLD batches ever reached the model.
        model_calls_during_fault = nan_model.calls - 2  # phase 1 used 2 batches
        assert model_calls_during_fault == FAILURE_THRESHOLD
        assert server.breaker.state == "open"

        # Phase 3: fault clears, but cooldown still routes to fallback.
        nan_model.failing = False
        clock.advance(COOLDOWN / 2)
        _submit_valid(server, tiny_task, 2, "cool")
        cooling = server.drain()
        assert all(r.source == "historical_average" for r in cooling)

        # Phase 4: cooldown over -> half-open probe -> closed.
        clock.advance(COOLDOWN)
        _submit_valid(server, tiny_task, 2, "post")
        recovered = server.drain()
        assert all(r.source == "model" for r in recovered)
        assert server.breaker.state == "closed"

        # Every transition appears in the JSONL log.
        logger.close()
        events = [r["event"] for r in _events(log_path)]
        assert "breaker_open" in events
        assert "breaker_half_open" in events
        assert "breaker_closed" in events
        assert "fallback_served" in events
        order = [e for e in events
                 if e in ("breaker_open", "breaker_half_open", "breaker_closed")]
        assert order == ["breaker_open", "breaker_half_open", "breaker_closed"]

    def test_probe_failure_reopens(self, tiny_task, harness):
        server, nan_model, clock, _, _ = harness
        nan_model.failing = True
        _submit_valid(server, tiny_task, 2 * FAILURE_THRESHOLD, "nan")
        server.drain()
        assert server.breaker.state == "open"
        clock.advance(COOLDOWN + 1)  # fault has NOT cleared: probe fails
        _submit_valid(server, tiny_task, 2, "probe")
        responses = server.drain()
        assert all(r.source == "historical_average" for r in responses)
        assert server.breaker.state == "open"


class TestSlowModelTimeout:
    def test_slow_batches_count_as_breaker_failures(self, tiny_task):
        clock = FakeClock()
        slow = SlowModel(_model(tiny_task), delay=0.05)
        server = ForecastServer(
            slow, tiny_task, max_batch=2, batch_timeout=0.001,
            breaker=CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock),
            clock=clock,
        )
        _submit_valid(server, tiny_task, 6, "slow")
        responses = server.drain()
        # Valid output is still served while the breaker is counting...
        assert all(r.source in ("model", "historical_average") for r in responses)
        # ...but persistent slowness trips it, flipping traffic to fallback.
        assert server.breaker.state == "open"
        assert slow.calls == 2
        assert server.metrics._counters["serve.timeouts"].value == 2
        fallbacks = [r for r in responses if r.source == "historical_average"]
        assert len(fallbacks) == 2  # third batch never touched the slow model


class TestKillMidReload:
    def test_corruption_racing_the_reload_is_contained(self, tiny_task, tmp_path):
        """The checkpoint is corrupted *during* reload (after the reload
        begins, before the archive is read) — the tightest race there is."""
        log_path = tmp_path / "serve.jsonl"
        logger = RunLogger(path=str(log_path), console=False)
        live = _model(tiny_task)
        ckpt = tmp_path / "candidate.npz"
        save_checkpoint(ckpt, _model(tiny_task, name="chaos-serve-next"))

        def factory_then_corrupt():
            # Runs inside reload_checkpoint, before load: simulates the
            # file being damaged mid-reload (partial overwrite, bit rot).
            corrupt_checkpoint(ckpt, mode="truncate")
            return _model(tiny_task)

        server = ForecastServer(live, tiny_task, logger=logger,
                                model_factory=factory_then_corrupt)
        version_before = server.model_version
        assert not server.reload_checkpoint(ckpt)
        assert server.model_version == version_before

        # Previously-live model keeps serving.
        server.submit({"window": tiny_task.test.inputs[0],
                       "time_index": tiny_task.test.time_indices[0]}, now=0.0)
        (response,) = server.drain(now=0.0)
        assert response.source == "model"
        assert response.model_version == version_before

        logger.close()
        rejected = [r for r in _events(log_path) if r["event"] == "checkpoint_rejected"]
        assert len(rejected) == 1
        assert rejected[0]["path"] == str(ckpt)
        assert rejected[0]["live_model_version"] == version_before
        assert [r for r in _events(log_path) if r["event"] == "model_reloaded"] == []
