"""Divergence sentinels and self-healing training.

The joint objective L = L_error + λ·L_time (Eq. 17) is a long
optimization whose TagSL gate and contrastive discrepancy loss can blow
up when embeddings drift: a single NaN batch poisons Adam's moments and
the run is lost.  Two layers of defense:

* :class:`DivergenceSentinel` — cheap per-batch/per-epoch health checks
  wired into :meth:`Trainer.fit`.  It raises
  :class:`~repro.training.trainer.DivergenceDetected` *before* the
  optimizer step, so flagged gradients never reach the parameters and
  the last checkpoint is always clean.
* :class:`GuardedTrainer` — wraps a :class:`Trainer` whose config has a
  ``checkpoint_path``.  On divergence it rolls the model back to the
  last good checkpoint, scales the learning rate down by ``lr_backoff``,
  and retries; after ``max_retries`` failed recoveries it raises a
  structured :class:`TrainingDivergedError` carrying every recorded
  event.  Every rollback/backoff/recovery is logged through
  ``repro.obs.runlog`` so post-mortems read straight off the JSONL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obs import RunLogger
from ..training.trainer import DivergenceDetected, Trainer, TrainingHistory


@dataclass(frozen=True)
class GuardEvent:
    """One recorded divergence: what fired, where, and on which attempt."""

    reason: str
    epoch: int
    batch: int | None
    value: float | None
    attempt: int

    def as_dict(self) -> dict:
        return {"reason": self.reason, "epoch": self.epoch, "batch": self.batch,
                "value": self.value, "attempt": self.attempt}


class TrainingDivergedError(RuntimeError):
    """Training kept diverging after every allotted rollback/backoff retry.

    A clean structured failure: ``events`` lists every
    :class:`GuardEvent` in order, so the caller (or the JSONL log) shows
    the full divergence history instead of a bare NaN traceback.
    """

    def __init__(self, events: list[GuardEvent], retries: int):
        self.events = list(events)
        self.retries = retries
        reasons = ", ".join(f"{e.reason}@epoch{e.epoch}" for e in self.events)
        super().__init__(
            f"training diverged {len(self.events)} time(s) and exhausted "
            f"{retries} recovery retr{'y' if retries == 1 else 'ies'}: {reasons}"
        )


class DivergenceSentinel:
    """Health checks for the training loop.

    Per batch (before the optimizer step): non-finite loss, loss above
    ``loss_max``, non-finite or exploding (``grad_norm_max``) pre-clip
    gradient norm.  Per epoch: non-finite validation MAE, and — when
    ``stall_epochs`` is set — a validation curve that has not improved by
    ``stall_min_delta`` for that many consecutive epochs (distinct from
    early stopping: a stall triggers rollback + lr backoff rather than a
    quiet exit).  All checks raise
    :class:`~repro.training.trainer.DivergenceDetected`.
    """

    def __init__(
        self,
        grad_norm_max: float = 1e6,
        loss_max: float | None = None,
        stall_epochs: int | None = None,
        stall_min_delta: float = 0.0,
    ):
        if grad_norm_max <= 0:
            raise ValueError("grad_norm_max must be positive")
        if stall_epochs is not None and stall_epochs < 1:
            raise ValueError("stall_epochs must be >= 1 (or None to disable)")
        self.grad_norm_max = grad_norm_max
        self.loss_max = loss_max
        self.stall_epochs = stall_epochs
        self.stall_min_delta = stall_min_delta
        self._stall_best = math.inf
        self._stall_count = 0

    def reset(self) -> None:
        """Clear stall tracking (called at the start of each retry)."""
        self._stall_best = math.inf
        self._stall_count = 0

    def on_batch(self, epoch: int, batch: int, loss: float, grad_norm: float) -> None:
        if not math.isfinite(loss):
            raise DivergenceDetected("nonfinite_loss", epoch, batch, loss)
        if self.loss_max is not None and loss > self.loss_max:
            raise DivergenceDetected("loss_explosion", epoch, batch, loss)
        if not math.isfinite(grad_norm):
            raise DivergenceDetected("nonfinite_grad", epoch, batch, grad_norm)
        if grad_norm > self.grad_norm_max:
            raise DivergenceDetected("grad_explosion", epoch, batch, grad_norm)

    def on_epoch(self, epoch: int, train_loss: float, val_mae: float, best_val_mae: float) -> None:
        if not math.isfinite(val_mae):
            raise DivergenceDetected("nonfinite_validation", epoch, value=val_mae)
        if self.stall_epochs is None:
            return
        if val_mae < self._stall_best - self.stall_min_delta:
            self._stall_best = val_mae
            self._stall_count = 0
        else:
            self._stall_count += 1
            if self._stall_count >= self.stall_epochs:
                raise DivergenceDetected("val_stall", epoch, value=val_mae)


class GuardedTrainer:
    """A :class:`Trainer` that survives divergence via rollback + backoff.

    Delegates ``predict``/``test_report``/``validate`` to the wrapped
    trainer, so it is a drop-in replacement anywhere a ``Trainer`` is
    expected (``run_experiment`` accepts one through its ``trainer``
    parameter).  Requires ``trainer.config.checkpoint_path``.
    """

    def __init__(
        self,
        trainer: Trainer | None = None,
        sentinel: DivergenceSentinel | None = None,
        max_retries: int = 3,
        lr_backoff: float = 0.5,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        self.trainer = trainer or Trainer()
        self.sentinel = sentinel or DivergenceSentinel()
        self.max_retries = max_retries
        self.lr_backoff = lr_backoff
        self.events: list[GuardEvent] = []

    @property
    def config(self):
        return self.trainer.config

    def predict(self, *args, **kwargs):
        return self.trainer.predict(*args, **kwargs)

    def validate(self, *args, **kwargs):
        return self.trainer.validate(*args, **kwargs)

    def test_report(self, *args, **kwargs):
        return self.trainer.test_report(*args, **kwargs)

    def fit(
        self,
        model,
        task,
        use_tdl: bool | None = None,
        augmenter=None,
        logger: RunLogger | None = None,
        fault_hook=None,
        resume: bool | None = None,
    ) -> TrainingHistory:
        """Train with divergence protection; see :meth:`Trainer.fit`.

        On :class:`DivergenceDetected` the run restarts from the last
        good checkpoint with the lr schedule scaled by ``lr_backoff``
        (compounding across retries through the checkpointed base lr);
        after ``max_retries`` failed recoveries a
        :class:`TrainingDivergedError` summarizes every event.
        """
        cfg = self.trainer.config
        if cfg.checkpoint_path is None:
            raise ValueError(
                "GuardedTrainer needs config.checkpoint_path: rollback is "
                "impossible without a checkpoint to roll back to"
            )
        self.events = []
        owns_logger = logger is None
        if logger is None:
            logger = RunLogger(
                path=cfg.log_path, console=cfg.verbose,
                metadata={"task": task.name, "model": type(model).__name__,
                          "guard": {"max_retries": self.max_retries,
                                    "lr_backoff": self.lr_backoff}},
            )
        try:
            attempt = 0
            do_resume = resume
            lr_scale = 1.0
            while True:
                self.sentinel.reset()
                try:
                    history = self.trainer.fit(
                        model, task, use_tdl=use_tdl, augmenter=augmenter,
                        logger=logger, sentinel=self.sentinel,
                        fault_hook=fault_hook, resume=do_resume,
                        lr_scale=lr_scale,
                    )
                    if attempt:
                        logger.log("recovered", attempts=attempt,
                                   events=[e.as_dict() for e in self.events])
                    return history
                except DivergenceDetected as exc:
                    event = GuardEvent(exc.reason, exc.epoch, exc.batch, exc.value, attempt)
                    self.events.append(event)
                    logger.log("divergence", **event.as_dict())
                    attempt += 1
                    if attempt > self.max_retries:
                        logger.log("giving_up", attempts=attempt - 1,
                                   events=[e.as_dict() for e in self.events])
                        raise TrainingDivergedError(self.events, self.max_retries) from exc
                    logger.log("rollback", attempt=attempt,
                               checkpoint=str(cfg.checkpoint_path),
                               lr_backoff=self.lr_backoff)
                    # Retry from the last good checkpoint, one backoff
                    # step lower (compounds: the checkpoint already holds
                    # any earlier backoff in its saved base lr).
                    do_resume = True
                    lr_scale = self.lr_backoff
        finally:
            if owns_logger:
                logger.close()
