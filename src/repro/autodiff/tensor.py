"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper's models were implemented in PyTorch, which is not available in this
environment, so we provide a small define-by-run autodiff engine with the
same semantics (dynamic graph, ``backward()`` on a scalar loss, gradient
accumulation into ``Tensor.grad``).

The engine is deliberately simple: a :class:`Tensor` wraps an
``numpy.ndarray`` and remembers the closure that propagates its output
gradient to its parents.  ``backward()`` runs the closures in reverse
topological order.  All primitives are broadcasting-aware; broadcast axes
are summed out on the way back (:func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64

# Global switch consulted when building the graph.  Inside ``no_grad()``
# blocks no backward closures are recorded, mirroring torch.no_grad().
_GRAD_ENABLED = True

# --------------------------------------------------------------------- #
# observability hook points (installed by repro.obs.trace)
#
# ``_MAKE_HOOK(data, backward_fn)`` fires on every op result so a tracer
# can count calls and bytes; ``_BACKWARD_OP_HOOK(backward_fn, started,
# seconds)`` fires after each backward closure with its wall-time.  Both
# default to None; the disabled cost is one global load + None check.
# --------------------------------------------------------------------- #

_MAKE_HOOK: Callable[[np.ndarray, Callable | None], None] | None = None
_BACKWARD_OP_HOOK: Callable[[Callable, float, float], None] | None = None

# ``_SYM_HANDLER`` (installed by repro.analyze.shapes) lets an abstract
# interpreter intercept the module-level ops below, which read ``.data`` of
# every operand up front and would otherwise drop symbolic tracking.  Each
# hook returns None when no operand is symbolic, so the real implementation
# runs untouched; the disabled cost is one global load + None check.
_SYM_HANDLER = None


def set_symbolic_handler(handler):
    """Install (or clear) the symbolic-execution handler; returns the previous one."""
    global _SYM_HANDLER
    previous, _SYM_HANDLER = _SYM_HANDLER, handler
    return previous


def get_symbolic_handler():
    """The active symbolic-execution handler, or None."""
    return _SYM_HANDLER


def set_make_hook(hook: Callable | None) -> Callable | None:
    """Install (or clear) the op-creation hook; returns the previous one."""
    global _MAKE_HOOK
    previous, _MAKE_HOOK = _MAKE_HOOK, hook
    return previous


def set_backward_op_hook(hook: Callable | None) -> Callable | None:
    """Install (or clear) the per-closure backward hook; returns the previous one."""
    global _BACKWARD_OP_HOOK
    previous, _BACKWARD_OP_HOOK = _BACKWARD_OP_HOOK, hook
    return previous


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction."""
    global _GRAD_ENABLED
    previous, _GRAD_ENABLED = _GRAD_ENABLED, False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum out leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    """Coerce to a numpy array; numeric payloads become ``DEFAULT_DTYPE``."""
    arr = np.asarray(value)
    if arr.dtype == np.bool_:
        return arr
    return arr.astype(DEFAULT_DTYPE, copy=False)


class Tensor:
    """A numpy array with an optional gradient and a backward closure.

    Parameters
    ----------
    data:
        Array-like payload; floats are coerced to ``DEFAULT_DTYPE``.
    requires_grad:
        Whether gradients should accumulate into ``self.grad``.
    parents:
        Tensors this one was computed from (internal).
    backward_fn:
        Closure mapping ``self.grad`` into the parents' ``grad`` (internal).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(parents) if self.requires_grad or backward_fn else ()
        self._backward_fn = backward_fn if _GRAD_ENABLED else None

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction / backward
    # ------------------------------------------------------------------ #

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward_fn) -> "Tensor":
        """Build an op result, recording the closure only if needed."""
        if _MAKE_HOOK is not None:
            _MAKE_HOOK(data, backward_fn)
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not needs_grad:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=DEFAULT_DTYPE)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (mandatory scalar seed for losses).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data, dtype=DEFAULT_DTYPE)
        else:
            grad = np.asarray(grad, dtype=DEFAULT_DTYPE)
            if grad.shape != self.data.shape:
                raise ValueError(f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        hook = _BACKWARD_OP_HOOK
        if hook is None:
            for node in reversed(topo):
                if node._backward_fn is not None and node.grad is not None:
                    node._backward_fn(node.grad)
        else:
            for node in reversed(topo):
                if node._backward_fn is not None and node.grad is not None:
                    started = perf_counter()
                    node._backward_fn(node.grad)
                    hook(node._backward_fn, started, perf_counter() - started)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data + other.data

        def backward_fn(grad):
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data - other.data

        def backward_fn(grad):
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    def __rsub__(self, other) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data * other.data

        def backward_fn(grad):
            self._accumulate(unbroadcast(grad * other.data, self.shape))
            other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data / other.data

        def backward_fn(grad):
            self._accumulate(unbroadcast(grad / other.data, self.shape))
            other._accumulate(unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    def __rtruediv__(self, other) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward_fn(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward_fn)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward_fn(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn)

    def __matmul__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = np.matmul(self.data, other.data)

        def backward_fn(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = np.matmul(grad[..., None, :], np.swapaxes(b, -1, -2))[..., 0, :]
                self._accumulate(unbroadcast(ga, a.shape))
                gb = a[:, None] * grad[..., None, :]
                other._accumulate(unbroadcast(gb, b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b[None, :]
                self._accumulate(unbroadcast(ga, a.shape))
                gb = np.matmul(np.swapaxes(a, -1, -2), grad[..., :, None])[..., 0]
                other._accumulate(unbroadcast(gb, b.shape))
                return
            ga = np.matmul(grad, np.swapaxes(b, -1, -2))
            gb = np.matmul(np.swapaxes(a, -1, -2), grad)
            self._accumulate(unbroadcast(ga, a.shape))
            other._accumulate(unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    def __rmatmul__(self, other) -> "Tensor":
        return ensure_tensor(other).__matmul__(self)

    # comparisons yield plain boolean arrays (no gradients flow through them)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        def backward_fn(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward_fn)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward_fn(grad):
            self._accumulate(grad / (2.0 * out_data))

        return Tensor._make(out_data, (self,), backward_fn)

    def sin(self) -> "Tensor":
        cos_data = np.cos(self.data)

        def backward_fn(grad):
            self._accumulate(grad * cos_data)

        return Tensor._make(np.sin(self.data), (self,), backward_fn)

    def cos(self) -> "Tensor":
        sin_data = np.sin(self.data)

        def backward_fn(grad):
            self._accumulate(-grad * sin_data)

        return Tensor._make(np.cos(self.data), (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad):
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward_fn)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward_fn(grad):
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward_fn)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward_fn(grad):
            self._accumulate(grad * scale)

        return Tensor._make(self.data * scale, (self,), backward_fn)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward_fn(grad):
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward_fn)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward_fn(grad):
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad):
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward_fn)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(grad):
            if axis is None:
                mask = (self.data == out_data)
                g = grad * mask / mask.sum()
            else:
                expanded = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                g = g * mask / mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.shape) * 1.0)

        return Tensor._make(out_data, (self,), backward_fn)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward_fn(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward_fn)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward_fn(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward_fn)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def unsqueeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        axis = axis if axis >= 0 else axis + self.ndim + 1
        shape.insert(axis, 1)
        return self.reshape(tuple(shape))

    def squeeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        if shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        del shape[axis]
        return self.reshape(tuple(shape))

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape).copy()
        original = self.shape

        def backward_fn(grad):
            self._accumulate(unbroadcast(grad, original))

        return Tensor._make(out_data, (self,), backward_fn)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward_fn(grad):
            full = np.zeros_like(self.data, dtype=DEFAULT_DTYPE)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(np.array(out_data, copy=True), (self,), backward_fn)


def ensure_tensor(value) -> Tensor:
    """Coerce scalars / arrays to ``Tensor`` (no-op for tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator, requires_grad: bool = False) -> Tensor:
    """Standard-normal tensor; ``rng`` is mandatory so results are seedable."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.concat(tensors, axis)
        if symbolic is not None:
            return symbolic
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [ensure_tensor(t) for t in tensors]
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.stack(tensors, axis)
        if symbolic is not None:
            return symbolic
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad):
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, slices):
            t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.where(condition, a, b)
        if symbolic is not None:
            return symbolic
    cond = condition.data if isinstance(condition, Tensor) else condition
    cond = np.asarray(cond, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward_fn(grad):
        a._accumulate(unbroadcast(grad * cond, a.shape))
        b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward_fn)


def gather_rows(table: Tensor, indices) -> Tensor:
    """Row lookup ``table[indices]`` for embeddings (integer fancy index).

    ``indices`` may be any integer array; the result has shape
    ``indices.shape + table.shape[1:]`` and gradients scatter-add back.
    """
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.gather_rows(table, indices)
        if symbolic is not None:
            return symbolic
    idx = np.asarray(indices.data if isinstance(indices, Tensor) else indices, dtype=np.int64)
    out_data = table.data[idx]

    def backward_fn(grad):
        full = np.zeros_like(table.data, dtype=DEFAULT_DTYPE)
        np.add.at(full, idx, grad)
        table._accumulate(full)

    return Tensor._make(out_data, (table,), backward_fn)


def maximum(a, b) -> Tensor:
    """Elementwise maximum with subgradient splitting ties to ``a``."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.where(True, a, b)
        if symbolic is not None:
            return symbolic
    mask = a.data >= b.data
    return where(mask, a, b)


def minimum(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    if _SYM_HANDLER is not None:
        symbolic = _SYM_HANDLER.where(True, a, b)
        if symbolic is not None:
            return symbolic
    mask = a.data <= b.data
    return where(mask, a, b)
