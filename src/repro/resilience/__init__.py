"""Fault-tolerant training and inference (docs/resilience.md).

Four pillars:

* **checkpoint/resume** — :mod:`.checkpoint` persists the complete
  training-loop state atomically so a killed run restarts
  bit-compatibly (``Trainer.fit(resume=True)`` / ``repro.cli train
  --resume``);
* **divergence sentinel** — :mod:`.guard` detects NaN/Inf losses,
  exploding gradients, and stalled validation, then rolls back to the
  last good checkpoint with lr backoff (bounded retries before a
  structured :class:`TrainingDivergedError`);
* **fault injection** — :mod:`.chaos` stages deterministic failures
  (NaN gradients, aborts, checkpoint corruption, flaky IO) so tests
  prove every recovery path fires;
* **graceful degradation** — :mod:`.degrade` validates inference output
  and falls back to the historical-average baseline instead of serving
  NaN.

:mod:`.backoff` is the shared retry-delay seam (jittered exponential
schedules with injectable sleep/RNG) that every retry loop in the repo
must use (lint rule RL010).

:mod:`.supervisor` watches a set of out-of-process serving replicas
(:mod:`repro.serve.proc`): heartbeat watchdog, readiness/termination
deadlines, budgeted restarts through the backoff seam, and crash-loop
parking — every transition a structured JSONL record.
"""

from ..nn.serialization import CheckpointCorruptionError
from ..training.trainer import DivergenceDetected
from .backoff import Backoff, retry_call
from .chaos import (
    AbortInjector,
    ChaosSchedule,
    FlakyReader,
    NaNGradientInjector,
    SimulatedCrash,
    TransientIOError,
    corrupt_checkpoint,
)
from .checkpoint import (
    TrainingCheckpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from .degrade import (
    SafePrediction,
    output_bound,
    safe_predict,
    validate_input,
    validate_output,
)
from .guard import DivergenceSentinel, GuardedTrainer, GuardEvent, TrainingDivergedError
from .supervisor import ReplicaSupervisor, RestartPolicy

__all__ = [
    "AbortInjector",
    "Backoff",
    "ChaosSchedule",
    "CheckpointCorruptionError",
    "DivergenceDetected",
    "DivergenceSentinel",
    "FlakyReader",
    "GuardEvent",
    "GuardedTrainer",
    "NaNGradientInjector",
    "ReplicaSupervisor",
    "RestartPolicy",
    "SafePrediction",
    "SimulatedCrash",
    "TrainingCheckpoint",
    "TrainingDivergedError",
    "TransientIOError",
    "corrupt_checkpoint",
    "load_training_checkpoint",
    "output_bound",
    "retry_call",
    "safe_predict",
    "save_training_checkpoint",
    "validate_input",
    "validate_output",
]
