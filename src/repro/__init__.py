"""repro — reproduction of "Learning Time-aware Graph Structures for
Spatially Correlated Time Series Forecasting" (TGCRN, ICDE 2024).

Public API tour
---------------
``repro.core``       TagSL, GCGRU, TGCRN and ablation variants.
``repro.baselines``  the paper's thirteen comparison methods.
``repro.data``       synthetic Table III datasets with ground-truth
                     dynamic OD correlations.
``repro.training``   Trainer (paper protocol) + experiment runner.
``repro.metrics``    MAE/RMSE/MAPE/MSE/PCC.
``repro.autodiff``   the numpy autodiff engine everything runs on.
``repro.nn``         layers, RNNs, attention, optimizers.
``repro.graph``      adjacency normalizations and pre-defined builders.
``repro.viz``        heat maps and t-SNE for Figs. 11-12.

Quickstart
----------
>>> from repro import load_task, TGCRN, Trainer, TrainingConfig
>>> import numpy as np
>>> task = load_task("hzmetro", num_nodes=10, num_days=8)
>>> model = TGCRN(num_nodes=task.num_nodes, in_dim=task.in_dim,
...               out_dim=task.out_dim, horizon=task.horizon,
...               hidden_dim=16, num_layers=1, node_dim=8, time_dim=4,
...               steps_per_day=task.steps_per_day,
...               rng=np.random.default_rng(0))
>>> history = Trainer(TrainingConfig(epochs=2)).fit(model, task)
"""

from .core import TGCRN, TagSL, GCGRUCell
from .data import load_task
from .training import Trainer, TrainingConfig, run_experiment
from .metrics import evaluate, horizon_report

__version__ = "1.0.0"

__all__ = [
    "GCGRUCell",
    "TGCRN",
    "TagSL",
    "Trainer",
    "TrainingConfig",
    "evaluate",
    "horizon_report",
    "load_task",
    "run_experiment",
    "__version__",
]
