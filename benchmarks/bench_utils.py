"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Scale is
controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — CPU-sized configs: scaled-down node counts and
  calendars, few epochs.  Absolute numbers differ from the paper; the
  *shapes* (method ordering, ablation deltas, crossovers) are the
  reproduction target (see DESIGN.md §4).
* ``full`` — larger configs approaching Table III sizes; hours on CPU.

Rendered tables are printed and archived under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


@dataclass(frozen=True)
class BenchScale:
    """Knobs resolved from the REPRO_BENCH_SCALE environment variable."""

    name: str
    metro_nodes: int
    metro_days: int
    demand_nodes: int
    demand_days: int
    electricity_nodes: int
    electricity_days: int
    epochs: int
    hidden_dim: int
    node_dim: int
    time_dim: int
    num_layers: int


_SCALES = {
    "quick": BenchScale(
        name="quick", metro_nodes=12, metro_days=10, demand_nodes=10, demand_days=8,
        electricity_nodes=10, electricity_days=20, epochs=8, hidden_dim=16,
        node_dim=16, time_dim=8, num_layers=1,
    ),
    "full": BenchScale(
        name="full", metro_nodes=40, metro_days=25, demand_nodes=32, demand_days=28,
        electricity_nodes=24, electricity_days=60, epochs=30, hidden_dim=64,
        node_dim=32, time_dim=16, num_layers=2,
    ),
}


def scale() -> BenchScale:
    key = os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return _SCALES[key]
    except KeyError:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}") from None


def tgcrn_kwargs(s: BenchScale) -> dict:
    return dict(node_dim=s.node_dim, time_dim=s.time_dim, num_layers=s.num_layers)


def report(name: str, text: str, data: dict | list | None = None) -> None:
    """Print a rendered table and archive it under benchmarks/results/.

    Printing goes to the *real* stdout so the tables appear in the
    terminal / tee output even when pytest captures test output (i.e.
    without ``-s``).

    Besides the rendered ``.txt``, every bench also gets a
    machine-readable ``.json`` sibling holding the scale, a timestamp,
    the text, and — when the bench passes one — its structured ``data``
    payload, so the perf/metric trajectory can be diffed across commits.
    """
    import sys

    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(banner + text + "\n")
    stream.flush()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "scale": scale().name,
        "ts": time.time(),
        "text": text,
    }
    if data is not None:
        payload["data"] = data
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2, default=float) + "\n")


def perf_snapshot(name: str, data: dict) -> Path:
    """Write a ``BENCH_<name>.json`` perf snapshot at the repo root.

    These files seed the cross-commit bench trajectory (see ROADMAP.md):
    each snapshot records the scale it was measured at plus whatever
    structured numbers the bench provides.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload = {"name": name, "scale": scale().name, "ts": time.time(), "data": data}
    path.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    return path
