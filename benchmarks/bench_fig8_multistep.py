"""Fig. 8: multi-step MAE relative to the FC-LSTM benchmark.

Regenerates the horizon-wise curves: each method's MAE at every horizon,
normalized by FC-LSTM's MAE at the same horizon.  Expected shape (paper):
TGCRN's ratio is lowest and *decreases* (or degrades slowest) with the
horizon — its advantage grows with the forecasting distance.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_relative_series, run_experiment

METHODS = ("fclstm", "dcrnn", "agcrn", "esg", "tgcrn")


def _run(dataset: str) -> str:
    s = scale()
    if dataset in ("hzmetro", "shmetro"):
        task = load_task(dataset, num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    else:
        task = load_task(dataset, num_nodes=s.demand_nodes, num_days=s.demand_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    curves = {}
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        result = run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                                num_layers=s.num_layers, **kwargs)
        curves[method] = result.horizon_metric("mae")
    benchmark_curve = curves["fclstm"]
    horizons = " ".join(f"  t+{q+1:<3}" for q in range(task.horizon))
    lines = [f"MAE relative to FC-LSTM ({dataset}); horizons: {horizons}"]
    for method in METHODS:
        lines.append(format_relative_series(method, curves[method], benchmark_curve))
    return "\n".join(lines)


def test_fig8_hzmetro(benchmark):
    out = benchmark.pedantic(lambda: _run("hzmetro"), rounds=1, iterations=1)
    report("fig8_multistep_hzmetro", out)


def test_fig8_nyc_bike(benchmark):
    out = benchmark.pedantic(lambda: _run("nyc_bike"), rounds=1, iterations=1)
    report("fig8_multistep_nyc_bike", out)
