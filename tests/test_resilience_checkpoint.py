"""Atomic writes and training-state checkpoint integrity."""

import numpy as np
import pytest

from repro.ioutil import atomic_savez, atomic_write, atomic_write_text
from repro.nn import CheckpointCorruptionError, Linear, load_checkpoint, save_checkpoint
from repro.resilience import (
    TrainingCheckpoint,
    corrupt_checkpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)


class TestAtomicWrite:
    def test_success_replaces_destination(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target) as tmp:
            tmp.write_text("new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]  # no temp debris

    def test_failure_preserves_original(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as tmp:
                tmp.write_text("half-writ")
                raise RuntimeError("simulated crash mid-write")
        assert target.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_savez_appends_npz_suffix(self, tmp_path):
        final = atomic_savez(tmp_path / "arrays", {"a": np.arange(3)})
        assert final.name == "arrays.npz"
        with np.load(final) as archive:
            np.testing.assert_array_equal(archive["a"], np.arange(3))

    def test_atomic_write_text(self, tmp_path):
        path = atomic_write_text(tmp_path / "note.md", "hello")
        assert path.read_text() == "hello"

    def test_commit_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        """Durability: the temp file AND the parent dir are fsynced, so a
        power loss after ``os.replace`` returns cannot yield an empty file."""
        import os as _os

        synced = []
        real_fsync = _os.fsync

        def recording_fsync(fd):
            synced.append(_os.fstat(fd).st_mode)
            return real_fsync(fd)

        monkeypatch.setattr("os.fsync", recording_fsync)
        atomic_write_text(tmp_path / "durable.txt", "payload")
        import stat

        files = [m for m in synced if stat.S_ISREG(m)]
        dirs = [m for m in synced if stat.S_ISDIR(m)]
        assert len(files) == 1   # the temp file, before the rename
        assert len(dirs) == 2    # the parent dir, before and after the rename

    def test_failed_write_skips_fsync_and_cleans_up(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr("os.fsync", lambda fd: calls.append(fd))
        with pytest.raises(RuntimeError):
            with atomic_write(tmp_path / "x.txt") as tmp:
                tmp.write_text("partial")
                raise RuntimeError("crash before commit")
        assert calls == []
        assert list(tmp_path.iterdir()) == []


class TestModelCheckpointAtomicity:
    def test_interrupted_save_keeps_previous_checkpoint(self, tmp_path, monkeypatch):
        """A crash inside np.savez must not clobber the existing file."""
        model = Linear(3, 2, rng=np.random.default_rng(0))
        path = tmp_path / "ck.npz"
        save_checkpoint(path, model)
        good = path.read_bytes()

        def exploding_savez(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", exploding_savez)
        with pytest.raises(OSError):
            save_checkpoint(path, Linear(3, 2, rng=np.random.default_rng(1)))
        assert path.read_bytes() == good
        assert list(tmp_path.iterdir()) == [path]


def _checkpoint() -> TrainingCheckpoint:
    rng = np.random.default_rng(3)
    state = {"layer.weight": rng.normal(size=(3, 2)), "layer.bias": rng.normal(size=2)}
    return TrainingCheckpoint(
        epoch=5,
        model_state=state,
        best_state={k: v + 1.0 for k, v in state.items()},
        optimizer_state={
            "step_count": 40,
            "lr": 5e-4,
            "m": [np.ones((3, 2)), np.ones(2)],
            "v": [np.full((3, 2), 2.0), np.full(2, 2.0)],
        },
        scheduler_state={"epoch": 5, "base_lr": 1e-3},
        rng_states={"trainer": np.random.default_rng(9).bit_generator.state},
        history={"train_losses": [1.0, 0.5], "val_maes": [2.0, 1.5],
                 "epoch_seconds": [0.1, 0.1], "error_losses": [1.0, 0.5],
                 "time_losses": [0.0, 0.0], "lrs": [1e-3, 1e-3],
                 "grad_norms": [3.0, 2.0], "best_epoch": 1,
                 "best_val_mae": 1.5, "stopped_early": False},
        bad_epochs=2,
        metadata={"task": "hzmetro"},
    )


class TestTrainingCheckpoint:
    def test_roundtrip(self, tmp_path):
        original = _checkpoint()
        path = save_training_checkpoint(tmp_path / "state.npz", original)
        loaded = load_training_checkpoint(path)
        assert loaded.epoch == original.epoch
        assert loaded.bad_epochs == original.bad_epochs
        assert loaded.scheduler_state == original.scheduler_state
        assert loaded.rng_states == original.rng_states
        assert loaded.history == original.history
        assert loaded.metadata == original.metadata
        for key in original.model_state:
            np.testing.assert_array_equal(loaded.model_state[key], original.model_state[key])
            np.testing.assert_array_equal(loaded.best_state[key], original.best_state[key])
        assert loaded.optimizer_state["step_count"] == 40
        assert loaded.optimizer_state["lr"] == 5e-4
        np.testing.assert_array_equal(loaded.optimizer_state["m"][0], np.ones((3, 2)))

    def test_restored_rng_state_continues_stream(self, tmp_path):
        rng = np.random.default_rng(17)
        rng.normal(size=10)  # advance
        ckpt = _checkpoint()
        ckpt.rng_states = {"trainer": rng.bit_generator.state}
        expected = rng.normal(size=5)
        path = save_training_checkpoint(tmp_path / "state.npz", ckpt)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = load_training_checkpoint(path).rng_states["trainer"]
        np.testing.assert_array_equal(fresh.normal(size=5), expected)

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corruption_detected(self, tmp_path, mode):
        path = save_training_checkpoint(tmp_path / "state.npz", _checkpoint())
        corrupt_checkpoint(path, mode=mode, seed=1)
        with pytest.raises(CheckpointCorruptionError):
            load_training_checkpoint(path)

    def test_corruption_error_carries_hashes_on_payload_tamper(self, tmp_path):
        path = save_training_checkpoint(tmp_path / "state.npz", _checkpoint())
        with np.load(path) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["model/layer.bias"][0] += 1.0
        np.savez(path, **arrays)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            load_training_checkpoint(path)
        assert excinfo.value.expected is not None
        assert excinfo.value.actual is not None
        assert excinfo.value.expected != excinfo.value.actual

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_training_checkpoint(tmp_path / "nope.npz")
