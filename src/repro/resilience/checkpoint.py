"""Full training-state checkpoints: everything ``Trainer.fit`` needs to
restart mid-run *bit-compatibly*.

A model-only checkpoint (``repro.nn.save_checkpoint``) is enough to serve
predictions, but resuming training from one silently changes the run:
Adam's moments restart cold, the lr schedule resets, and every RNG stream
(batch shuffling, Algorithm-1 discrepancy sampling, scheduled-sampling
coin flips) re-derives from the base seed instead of continuing where it
left off.  :class:`TrainingCheckpoint` captures the complete loop state —
model parameters, best-so-far parameters, optimizer moments, scheduler
position, named RNG bit-generator states, and the
:class:`~repro.training.trainer.TrainingHistory` — so a killed run
resumed from its checkpoint finishes with the *same* ``state_hash`` and
loss curve as an uninterrupted one (asserted by the tier-1 resume test
and the ``repro.cli chaos`` harness).

Writes are atomic (``repro.ioutil``) and integrity-hashed: a truncated or
bit-flipped file raises :class:`~repro.nn.CheckpointCorruptionError`
instead of resuming from garbage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..ioutil import atomic_savez
from ..nn.serialization import CheckpointCorruptionError, read_archive, state_hash

_META_KEY = "__training_meta__"
_HASH_KEY = "__training_hash__"
_FORMAT_VERSION = 1

# Array-key prefixes inside the .npz.
_MODEL = "model/"
_BEST = "best/"
_OPT_M = "opt/m_"
_OPT_V = "opt/v_"


@dataclass
class TrainingCheckpoint:
    """Resumable snapshot of one training loop, taken between epochs.

    ``epoch`` is the *next* epoch to run (a checkpoint written after
    epoch 3 completes has ``epoch == 4``).  ``rng_states`` maps stream
    names (``"trainer"``, ``"loader"``, ``"model_sampling"``) to numpy
    bit-generator state dicts.  ``history`` is the plain-dict form of
    :class:`~repro.training.trainer.TrainingHistory`.
    """

    epoch: int
    model_state: dict
    best_state: dict
    optimizer_state: dict
    scheduler_state: dict
    rng_states: dict
    history: dict
    bad_epochs: int = 0
    metadata: dict = field(default_factory=dict)
    version: int = _FORMAT_VERSION


def save_training_checkpoint(path: str | Path, checkpoint: TrainingCheckpoint) -> Path:
    """Serialize a :class:`TrainingCheckpoint` atomically with an
    integrity hash; returns the final path (``.npz`` suffix enforced)."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in checkpoint.model_state.items():
        arrays[_MODEL + name] = np.asarray(value)
    for name, value in checkpoint.best_state.items():
        arrays[_BEST + name] = np.asarray(value)
    opt = checkpoint.optimizer_state
    for i, (m, v) in enumerate(zip(opt["m"], opt["v"])):
        arrays[_OPT_M + str(i)] = np.asarray(m)
        arrays[_OPT_V + str(i)] = np.asarray(v)
    meta = {
        "version": checkpoint.version,
        "epoch": checkpoint.epoch,
        "optimizer": {"step_count": opt["step_count"], "lr": opt["lr"],
                      "slots": len(opt["m"])},
        "scheduler": checkpoint.scheduler_state,
        "rng_states": checkpoint.rng_states,
        "history": checkpoint.history,
        "bad_epochs": checkpoint.bad_epochs,
        "metadata": checkpoint.metadata,
    }
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    # Hash covers every payload array *and* the metadata blob, in sorted
    # key order so the digest is layout-independent.
    digest = state_hash({key: arrays[key] for key in sorted(arrays)})
    arrays[_HASH_KEY] = np.frombuffer(digest.encode(), dtype=np.uint8)
    return atomic_savez(path, arrays)


def load_training_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Read and verify a checkpoint written by
    :func:`save_training_checkpoint`.

    Raises :class:`~repro.nn.CheckpointCorruptionError` when the archive
    is truncated/unreadable, the integrity hash mismatches, or the
    metadata blob is malformed.
    """
    path = Path(path)
    arrays = read_archive(path)
    hash_blob = arrays.pop(_HASH_KEY, None)
    if hash_blob is None:
        raise CheckpointCorruptionError(path, "missing integrity hash")
    expected = bytes(hash_blob.tobytes()).decode()
    actual = state_hash({key: arrays[key] for key in sorted(arrays)})
    if actual != expected:
        raise CheckpointCorruptionError(
            path,
            f"state hash {actual[:16]}… does not match the embedded {expected[:16]}…",
            expected=expected,
            actual=actual,
        )
    meta_blob = arrays.pop(_META_KEY, None)
    if meta_blob is None:
        raise CheckpointCorruptionError(path, "missing training metadata")
    try:
        meta = json.loads(bytes(meta_blob.tobytes()).decode())
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptionError(path, f"malformed metadata ({exc})") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise CheckpointCorruptionError(
            path, f"unsupported checkpoint version {meta.get('version')!r}"
        )

    model_state = {k[len(_MODEL):]: v for k, v in arrays.items() if k.startswith(_MODEL)}
    best_state = {k[len(_BEST):]: v for k, v in arrays.items() if k.startswith(_BEST)}
    slots = int(meta["optimizer"]["slots"])
    try:
        optimizer_state = {
            "step_count": int(meta["optimizer"]["step_count"]),
            "lr": float(meta["optimizer"]["lr"]),
            "m": [arrays[_OPT_M + str(i)] for i in range(slots)],
            "v": [arrays[_OPT_V + str(i)] for i in range(slots)],
        }
    except KeyError as exc:
        raise CheckpointCorruptionError(path, f"missing optimizer slot {exc}") from exc
    return TrainingCheckpoint(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        best_state=best_state,
        optimizer_state=optimizer_state,
        scheduler_state=meta["scheduler"],
        rng_states=meta["rng_states"],
        history=meta["history"],
        bad_epochs=int(meta.get("bad_epochs", 0)),
        metadata=meta.get("metadata", {}),
    )
