"""Process-isolated replicas: socket transport behind the router contract.

:class:`~repro.serve.fleet.ForecastFleet` contains the loss of whole
replicas, but with ``transport="thread"`` every replica still shares an
interpreter, the GIL, and an address space with the router — a wedged or
corrupted replica can take the process down with it.  This module moves
each replica into its **own OS process** behind a length-prefixed socket
protocol, while presenting the **same synchronous contract** the router
already speaks (``submit`` / ``process_once`` / ``take_responses`` /
``abort`` / ``health`` / ``reload_checkpoint`` / ``queue`` /
``model_version``), so ``ForecastFleet(transport="process")`` swaps in
:class:`ProcReplicaClient` objects with zero router-logic changes.

Wire format — one frame per message, either direction::

    magic  b"RP"   (2 bytes)
    type   uint8   (frame kind, see the ``FRAME_*`` constants)
    length uint32  (big-endian payload byte count)
    crc    uint32  (big-endian CRC-32 of the payload)
    payload        (pickled python object)

Two failure tiers, deliberately distinct:

* :class:`WireCorruptFrameError` — the header framed correctly but the
  payload is damaged (CRC mismatch, unpicklable).  The stream is still
  in sync, so the frame is **dropped and counted** and the connection
  keeps serving (the chaos smoke injects exactly this).
* :class:`WireDesyncError` — bad magic or an absurd length: the byte
  stream itself can no longer be trusted.  The child exits (the
  supervisor restarts it); the parent marks the replica down.

Cross-process concerns the transport owns:

* **span stitching** — SUBMIT frames carry ``trace_id``/``span_id`` of
  the router's dispatch span; the child parents its ``request`` tree
  under a :func:`~repro.obs.spans.remote_parent` shim and ships its
  finished span records back (piggybacked on RESPONSE and HEARTBEAT
  frames) for :func:`~repro.obs.spans.ingest_span_record`, so
  ``check_fleet_traces`` sees one complete tree per request.  Child span
  ids are namespaced with ``set_span_id_prefix(f"{replica_id}.{pid}.")``
  so counters restarting at 1 in every child can never collide.
* **deadline budgets** — ``CLOCK_MONOTONIC`` is system-wide on Linux,
  so absolute ``time.monotonic`` deadlines propagate over the wire
  unchanged and the child's queue sheds doomed work itself.
* **orphan cleanup** — children are forked daemonic, every live client
  is registered for an atexit SIGKILL sweep, and each child arms
  ``prctl(PR_SET_PDEATHSIG, SIGKILL)`` so a hard-killed parent takes
  its replicas down with it.  Nothing survives the fleet.
* **chaos injection** — :meth:`ProcReplicaClient.kill_process` is a real
  ``SIGKILL`` mid-batch; :meth:`ProcReplicaClient.inject_wedge` makes
  the child admit work but never answer or heartbeat (optionally
  ignoring SIGTERM, forcing the supervisor's kill escalation);
  :meth:`ProcReplicaClient.inject_corrupt_frame` writes a damaged frame
  of either tier; ``slow_start_s`` delays READY to exercise the
  supervisor's readiness deadline.
"""

from __future__ import annotations

import atexit
import errno
import os
import pickle
import select
import signal
import socket
import struct
import threading
import time
import zlib

from ..obs import spans as _spans
from ..obs.spans import SpanCollector, ingest_span_record, remote_parent
from .queueing import DeadlineExceededError, ServiceOverloadedError
from .server import ForecastResponse
from .validation import InvalidRequestError

MAGIC = b"RP"
_HEADER = struct.Struct("!2sBII")  # magic, type, length, crc32
MAX_FRAME = 64 * 1024 * 1024  # anything larger means the stream is garbage

FRAME_READY = 1
FRAME_SUBMIT = 2
FRAME_ACK = 3
FRAME_RESPONSE = 4
FRAME_HEARTBEAT = 5
FRAME_CONTROL = 6
FRAME_CONTROL_ACK = 7
FRAME_RELOAD = 8
FRAME_RELOAD_RESULT = 9
FRAME_SHUTDOWN = 10
FRAME_BYE = 11

_FRAME_NAMES = {
    FRAME_READY: "ready", FRAME_SUBMIT: "submit", FRAME_ACK: "ack",
    FRAME_RESPONSE: "response", FRAME_HEARTBEAT: "heartbeat",
    FRAME_CONTROL: "control", FRAME_CONTROL_ACK: "control_ack",
    FRAME_RELOAD: "reload", FRAME_RELOAD_RESULT: "reload_result",
    FRAME_SHUTDOWN: "shutdown", FRAME_BYE: "bye",
}


class WireCorruptFrameError(RuntimeError):
    """A single frame is damaged; the stream is still framed correctly."""


class WireDesyncError(RuntimeError):
    """The byte stream lost framing; the connection cannot recover."""


class ReplicaStartupError(RuntimeError):
    """A spawned replica never reported READY within its deadline."""

    def __init__(self, replica_id: str, timeout: float):
        self.replica_id = replica_id
        super().__init__(
            f"replica {replica_id} not READY within {timeout:.1f}s")


def encode_frame(ftype: int, payload) -> bytes:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, ftype, len(blob), zlib.crc32(blob)) + blob


class FrameConn:
    """Buffered frame reader/writer over one stream socket.

    ``recv_frames`` parses every complete frame already buffered (plus
    whatever arrives within ``timeout``); corrupt frames are counted on
    :attr:`corrupt_frames` and skipped, desync raises.  EOF sets
    :attr:`eof` and returns whatever parsed before it.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.buffer = bytearray()
        self.corrupt_frames = 0
        self.eof = False

    def fileno(self) -> int:
        return self.sock.fileno()

    def send_frame(self, ftype: int, payload) -> None:
        self.sock.sendall(encode_frame(ftype, payload))

    def send_raw(self, blob: bytes) -> None:
        self.sock.sendall(blob)

    def recv_frames(self, timeout: float = 0.0) -> list[tuple[int, object]]:
        self._fill(timeout)
        frames: list[tuple[int, object]] = []
        while True:
            parsed = self._parse_one()
            if parsed is None:
                break
            frames.append(parsed)
        return frames

    def _fill(self, timeout: float) -> None:
        if self.eof:
            return
        # Socket-readiness deadlines are real I/O time, not simulated
        # time: both ends of the wire share system CLOCK_MONOTONIC.
        deadline = time.monotonic() + max(0.0, timeout)  # analyze: allow[RL004]
        first = True
        while True:
            wait = max(0.0, deadline - time.monotonic()) if first else 0.0  # analyze: allow[RL004]
            first = False
            try:
                readable, _, _ = select.select([self.sock], [], [], wait)
            except (OSError, ValueError):
                self.eof = True
                return
            if not readable:
                return
            try:
                chunk = self.sock.recv(1 << 16)
            except BlockingIOError:
                return
            except OSError as exc:
                if exc.errno in (errno.ECONNRESET, errno.EPIPE, errno.EBADF):
                    self.eof = True
                    return
                raise
            if not chunk:
                self.eof = True
                return
            self.buffer.extend(chunk)

    def _parse_one(self):
        if len(self.buffer) < _HEADER.size:
            return None
        magic, ftype, length, crc = _HEADER.unpack_from(self.buffer)
        if magic != MAGIC or length > MAX_FRAME:
            raise WireDesyncError(
                f"bad frame header (magic={magic!r}, length={length})")
        if len(self.buffer) < _HEADER.size + length:
            return None
        blob = bytes(self.buffer[_HEADER.size:_HEADER.size + length])
        del self.buffer[:_HEADER.size + length]
        if zlib.crc32(blob) != crc:
            self.corrupt_frames += 1
            return (None, None)  # replaced by caller-side skip below
        try:
            payload = pickle.loads(blob)
        except Exception:
            self.corrupt_frames += 1
            return (None, None)
        return (ftype, payload)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # analyze: allow[RL006] double-close on teardown is benign
            pass


def _drop_corrupt(frames: list[tuple[int, object]]) -> list[tuple[int, object]]:
    return [(ftype, payload) for ftype, payload in frames if ftype is not None]


# --------------------------------------------------------------------- #
# orphan cleanup: one atexit sweep over every live client
# --------------------------------------------------------------------- #

_LIVE_CLIENTS: set["ProcReplicaClient"] = set()
_CLEANUP_REGISTERED = False
_REGISTRY_LOCK = threading.Lock()


def _kill_orphans() -> None:
    for client in list(_LIVE_CLIENTS):
        client._hard_kill_quiet()


def _register(client: "ProcReplicaClient") -> None:
    global _CLEANUP_REGISTERED
    with _REGISTRY_LOCK:
        _LIVE_CLIENTS.add(client)
        if not _CLEANUP_REGISTERED:
            atexit.register(_kill_orphans)
            _CLEANUP_REGISTERED = True


def _unregister(client: "ProcReplicaClient") -> None:
    with _REGISTRY_LOCK:
        _LIVE_CLIENTS.discard(client)


# --------------------------------------------------------------------- #
# the child process
# --------------------------------------------------------------------- #


def _arm_parent_death_signal() -> None:
    """SIGKILL this child the instant its parent dies (Linux prctl)."""
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0)
    except Exception:  # analyze: allow[RL006] non-Linux: atexit sweep + daemon flag still cover cleanup
        pass


class _ChildState:
    """Mutable runtime flags shared with the SIGTERM handler."""

    def __init__(self):
        self.term_received = False
        self.wedged = False
        self.ignore_term = False


def _error_payload(exc: Exception) -> dict:
    if isinstance(exc, InvalidRequestError):
        return {"type": "InvalidRequestError",
                "code": exc.code, "detail": exc.detail}
    if isinstance(exc, DeadlineExceededError):
        return {"type": "DeadlineExceededError",
                "request_id": exc.request_id, "detail": str(exc)}
    if isinstance(exc, ServiceOverloadedError):
        return {"type": "ServiceOverloadedError", "depth": exc.depth,
                "max_depth": exc.max_depth, "detail": str(exc)}
    return {"type": type(exc).__name__, "detail": str(exc)}


def rebuild_wire_error(error: dict) -> Exception:
    """Reconstruct a front-door exception shipped in an ACK frame."""
    kind = error.get("type", "")
    if kind == "InvalidRequestError":
        return InvalidRequestError(error.get("code", "invalid"),
                                   error.get("detail", ""))
    if kind == "DeadlineExceededError":
        # The message already rendered in the child; carry it verbatim.
        exc = DeadlineExceededError(error.get("request_id", ""), 0.0, 0.0)
        exc.args = (error.get("detail", str(exc)),)
        return exc
    if kind == "ServiceOverloadedError":
        return ServiceOverloadedError(error.get("depth", 0),
                                      error.get("max_depth", 0),
                                      detail=error.get("detail", ""))
    return RuntimeError(f"replica error {kind}: {error.get('detail', '')}")


def _child_main(conn: FrameConn, server_factory, replica_id: str,
                options: dict) -> int:
    """Replica child: single-threaded pump between socket and server.

    The child never spawns the server's worker thread — the pump loop
    *is* the scheduler, so there is exactly one thread to reason about
    after fork.  Returns the intended exit code (the caller ``os._exit``s
    with it).
    """
    _arm_parent_death_signal()
    _spans._fork_reset()
    _spans.set_span_id_prefix(f"{replica_id}.{os.getpid()}.")
    collector = SpanCollector().install()

    state = _ChildState()

    def _on_term(signum, frame):
        if not state.ignore_term:
            state.term_received = True

    signal.signal(signal.SIGTERM, _on_term)

    slow_start = float(options.get("slow_start_s", 0.0))
    if slow_start > 0:
        time.sleep(slow_start)  # analyze: allow[RL010] startup chaos injection, not a retry loop

    heartbeat_interval = float(options.get("heartbeat_interval", 0.2))
    server = server_factory()

    shipped = 0

    def _take_spans() -> list[dict]:
        nonlocal shipped
        with collector._records_lock:
            fresh = collector.records[shipped:]
            shipped = len(collector.records)
            if shipped > 4096:  # bound child memory on long runs
                del collector.records[:shipped]
                shipped = 0
            return list(fresh)

    def _heartbeat() -> None:
        conn.send_frame(FRAME_HEARTBEAT, {
            "replica_id": replica_id,
            "pid": os.getpid(),
            "status": "degraded" if server.breaker.state != "closed" else "ok",
            "model_version": server.model_version,
            "queue_depth": len(server.queue),
            "breaker": server.breaker.state,
            "corrupt_frames": conn.corrupt_frames,
            "spans": _take_spans(),
        })

    def _flush_responses() -> None:
        for resp in server.take_responses():
            conn.send_frame(FRAME_RESPONSE, {
                "response": vars(resp),
                "spans": _take_spans(),
            })

    conn.send_frame(FRAME_READY, {
        "replica_id": replica_id,
        "pid": os.getpid(),
        "model_version": server.model_version,
    })
    # The child runs on real time by construction: wire deadlines are
    # absolute CLOCK_MONOTONIC values minted by the router.
    last_heartbeat = time.monotonic()  # analyze: allow[RL004]

    while True:
        if state.term_received:
            server.drain()
            _flush_responses()
            conn.send_frame(FRAME_BYE, {"reason": "sigterm",
                                        "spans": _take_spans()})
            return 0
        try:
            frames = _drop_corrupt(conn.recv_frames(timeout=0.02))
        except WireDesyncError:
            return 3  # stream poisoned: die loudly, supervisor restarts us
        if conn.eof:
            return 0  # parent is gone; PDEATHSIG is the backstop
        for ftype, payload in frames:
            if state.wedged and ftype == FRAME_CONTROL:
                if payload.get("op") == "unwedge":
                    state.wedged = False
                    state.ignore_term = False
                    conn.send_frame(FRAME_CONTROL_ACK,
                                    {"rpc": payload.get("rpc"), "ok": True})
                continue
            if state.wedged:
                if ftype == FRAME_SUBMIT:
                    # A wedged worker still *admits* — it just never
                    # answers or heartbeats (matches the thread-mode
                    # pause semantics the chaos suite encodes).
                    trace = payload.get("trace")
                    parent = (remote_parent(trace["trace_id"],
                                            trace["span_id"])
                              if trace else None)
                    try:
                        request_id = server.submit(payload["payload"],
                                                   parent_span=parent)
                        conn.send_frame(FRAME_ACK, {
                            "id": payload["id"], "ok": True,
                            "request_id": request_id})
                    except Exception:  # analyze: allow[RL006] wedged: stay silent on rejection too
                        pass
                continue
            if ftype == FRAME_SUBMIT:
                parent = None
                trace = payload.get("trace")
                if trace:
                    parent = remote_parent(trace["trace_id"], trace["span_id"])
                try:
                    request_id = server.submit(payload["payload"],
                                               parent_span=parent)
                except Exception as exc:
                    conn.send_frame(FRAME_ACK, {
                        "id": payload["id"], "ok": False,
                        "error": _error_payload(exc),
                        "spans": _take_spans()})
                else:
                    conn.send_frame(FRAME_ACK, {
                        "id": payload["id"], "ok": True,
                        "request_id": request_id})
            elif ftype == FRAME_CONTROL:
                op = payload.get("op")
                if op == "wedge":
                    state.wedged = True
                    state.ignore_term = bool(payload.get("ignore_term"))
                elif op == "abort":
                    server.abort(reason=payload.get("reason", "aborted"))
                conn.send_frame(FRAME_CONTROL_ACK,
                                {"rpc": payload.get("rpc"), "ok": True})
            elif ftype == FRAME_RELOAD:
                ok = server.reload_checkpoint(payload["path"])
                conn.send_frame(FRAME_RELOAD_RESULT, {
                    "rpc": payload.get("rpc"), "ok": ok,
                    "model_version": server.model_version,
                    "spans": _take_spans()})
            elif ftype == FRAME_SHUTDOWN:
                if payload.get("drain", True):
                    server.drain()
                _flush_responses()
                conn.send_frame(FRAME_BYE, {"reason": "shutdown",
                                            "spans": _take_spans()})
                return 0
            # unknown frame types are ignored (forward compatibility)
        if not state.wedged:
            server.process_once()
            _flush_responses()
            now = time.monotonic()  # analyze: allow[RL004] child heartbeat pacing is real time
            if now - last_heartbeat >= heartbeat_interval:
                _heartbeat()
                last_heartbeat = now


def _child_entry(sock: socket.socket, server_factory, replica_id: str,
                 options: dict) -> None:
    conn = FrameConn(sock)
    code = 1
    try:
        code = _child_main(conn, server_factory, replica_id, options)
    except (BrokenPipeError, ConnectionResetError):
        code = 0  # parent went away mid-write
    except Exception:
        import traceback

        traceback.print_exc()
        code = 1
    finally:
        conn.close()
        # Never run the parent's inherited atexit/teardown machinery.
        os._exit(code)


# --------------------------------------------------------------------- #
# the router-side client
# --------------------------------------------------------------------- #


class _InflightView:
    """``len()``-able stand-in for the remote queue (router contract)."""

    def __init__(self, client: "ProcReplicaClient"):
        self._client = client

    def __len__(self) -> int:
        return self._client.outstanding


class ProcReplicaClient:
    """One out-of-process replica, speaking the in-process server contract.

    The router calls exactly what it calls on a local
    :class:`~repro.serve.server.ForecastServer` — ``submit`` is a
    synchronous SUBMIT→ACK round trip (admission errors are
    reconstructed and re-raised, a dead or silent child raises
    ``ReplicaDownError``), ``process_once`` drains the socket
    (responses, heartbeats, span backhaul), and ``health`` serves the
    last heartbeat.  Lifecycle (``spawn``/``respawn``/``terminate_process``
    /``kill_process``/``close``) and chaos (``inject_wedge``,
    ``inject_corrupt_frame``) are what the supervisor and the kill-chaos
    smoke drive.
    """

    def __init__(
        self,
        replica_id: str,
        server_factory,
        *,
        heartbeat_interval: float = 0.2,
        ack_timeout: float = 2.0,
        slow_start_s: float = 0.0,
        logger=None,
    ):
        self.replica_id = replica_id
        self._server_factory = server_factory
        self.heartbeat_interval = heartbeat_interval
        self.ack_timeout = ack_timeout
        self.slow_start_s = slow_start_s
        self.logger = logger
        self.queue = _InflightView(self)

        self._lock = threading.RLock()
        self._conn: FrameConn | None = None
        self._process = None
        self._ready = False
        self._bye = False
        self._model_version: str | None = None
        self._last_heartbeat: float | None = None
        self._health: dict = {}
        self._inflight: set[str] = set()
        self._responses: list[ForecastResponse] = []
        self._rpc_results: dict[int, dict] = {}
        self._rpc_ids = iter(range(1, 1 << 62))
        self.restarts = 0

    # -- lifecycle ------------------------------------------------------- #

    def spawn(self) -> None:
        """Fork the replica child (idempotent while alive)."""
        with self._lock:
            if self.is_alive():
                return
            import multiprocessing

            parent_sock, child_sock = socket.socketpair()
            ctx = multiprocessing.get_context("fork")
            options = {
                "heartbeat_interval": self.heartbeat_interval,
                "slow_start_s": self.slow_start_s,
            }
            self._process = ctx.Process(
                target=_child_entry,
                args=(child_sock, self._server_factory, self.replica_id,
                      options),
                name=f"replica-{self.replica_id}",
                daemon=True,
            )
            self._process.start()
            child_sock.close()
            self._conn = FrameConn(parent_sock)
            self._ready = False
            self._bye = False
            self._last_heartbeat = None
            self._inflight.clear()
        _register(self)
        self._log("replica_spawned", replica_id=self.replica_id, pid=self.pid)

    def respawn(self) -> None:
        """Replace a dead child with a fresh fork (supervisor restart)."""
        with self._lock:
            self._hard_kill_quiet()
            self._process = None
            self._conn = None
            self.restarts += 1
        self.spawn()

    # The snapshot properties take the (reentrant) lock: respawn/close
    # rebind _process and _handle_frame mutates the rest, so lock-free
    # reads would race the router against the atexit/supervisor paths.

    @property
    def pid(self) -> int | None:
        with self._lock:
            return self._process.pid if self._process is not None else None

    def is_alive(self) -> bool:
        with self._lock:
            return self._process is not None and self._process.is_alive()

    @property
    def ready(self) -> bool:
        with self._lock:
            return self._ready and self.is_alive()

    @property
    def last_heartbeat(self) -> float | None:
        with self._lock:
            return self._last_heartbeat

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._inflight)

    def wait_ready(self, timeout: float = 10.0) -> None:
        # Startup of a real fork is bounded in real seconds; an injected
        # clock has no meaning across the process boundary.
        deadline = time.monotonic() + timeout  # analyze: allow[RL004]
        while time.monotonic() < deadline:  # analyze: allow[RL004]
            self.poll_transport()
            if self.ready:
                return
            if not self.is_alive():
                break
            time.sleep(0.005)  # analyze: allow[RL010] startup barrier poll, not a retry loop
        self.poll_transport()
        if self.ready:
            return
        raise ReplicaStartupError(self.replica_id, timeout)

    def terminate_process(self) -> None:
        """Graceful stop request: SIGTERM (the child drains, then exits)."""
        with self._lock:
            if self._process is not None and self._process.is_alive():
                try:
                    os.kill(self._process.pid, signal.SIGTERM)
                except (OSError, TypeError):  # analyze: allow[RL006] child already gone
                    pass

    def kill_process(self) -> None:
        """Hard crash: SIGKILL, queued work dies with the child."""
        with self._lock:
            self._hard_kill_quiet()
            self._ready = False

    def _hard_kill_quiet(self) -> None:
        process = self._process
        if process is not None and process.is_alive():
            try:
                process.kill()
            except Exception:  # analyze: allow[RL006] child already gone
                pass
            process.join(timeout=5.0)

    def close(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Orderly shutdown: SHUTDOWN → BYE, escalating TERM → KILL."""
        with self._lock:
            conn = self._conn
            if conn is not None and self.is_alive():
                try:
                    conn.send_frame(FRAME_SHUTDOWN, {"drain": drain})
                except OSError:  # analyze: allow[RL006] dead wire: fall through to TERM/KILL
                    pass
                deadline = time.monotonic() + timeout  # analyze: allow[RL004]
                while (time.monotonic() < deadline and not self._bye  # analyze: allow[RL004]
                       and self.is_alive()):
                    # analyze: allow[CC003] shutdown handshake: 20ms bounded polls; the lock must fence out submits
                    self._drain_socket(wait=0.02)
            if self._process is not None and self._process.is_alive():
                self.terminate_process()
                self._process.join(timeout=1.0)
            self._hard_kill_quiet()
            if conn is not None:
                conn.close()
                self._conn = None
            self._ready = False
            got_bye = self._bye
        _unregister(self)
        self._log("replica_closed", replica_id=self.replica_id,
                  got_bye=got_bye)

    # -- router contract ------------------------------------------------- #

    @property
    def model_version(self) -> str:
        with self._lock:
            return self._model_version or "unknown"

    def submit(self, payload, now: float | None = None, *,
               parent_span=None) -> str:
        """SUBMIT → ACK round trip; admission errors re-raise locally."""
        from .fleet import ReplicaDownError

        frame = {"id": str(payload.get("id", "")), "payload": payload}
        if parent_span is not None:
            frame["trace"] = {"trace_id": parent_span.trace_id,
                              "span_id": parent_span.span_id}
        with self._lock:
            if self._conn is None or not self.is_alive():
                raise ReplicaDownError(self.replica_id)
            try:
                self._conn.send_frame(FRAME_SUBMIT, frame)
            except OSError:
                raise ReplicaDownError(self.replica_id) from None
            # analyze: allow[CC003] SUBMIT->ACK is a deliberate synchronous RPC bounded by ack_timeout; the lock serializes the wire
            ack = self._await(FRAME_ACK,
                              lambda p: p.get("id") == frame["id"],
                              self.ack_timeout)
            if ack is None:
                raise ReplicaDownError(self.replica_id)
            if not ack.get("ok"):
                raise rebuild_wire_error(ack.get("error", {}))
            request_id = ack["request_id"]
            self._inflight.add(request_id)
            return request_id

    def process_once(self, now: float | None = None) -> list[ForecastResponse]:
        """Drain the socket; returns responses that arrived this round."""
        with self._lock:
            before = len(self._responses)
            # analyze: allow[CC003] wait=0.0 makes this a non-blocking poll; recv fires only after select says readable
            self._drain_socket(wait=0.0)
            return self._responses[before:]

    # Supervisor-facing alias: pump a replica the router is not routing to
    # (killed/restarting) so READY and heartbeats still get observed.
    poll_transport = process_once

    def take_responses(self) -> list[ForecastResponse]:
        with self._lock:
            out, self._responses = self._responses, []
            return out

    def abort(self, reason: str = "aborted") -> list[str]:
        """Drop the router-side view of everything outstanding.

        If the child is still alive it is told to abort its queue too
        (fire-and-forget); after a SIGKILL there is no child to tell —
        the ids are what the router needs for failover either way.
        """
        with self._lock:
            dropped = sorted(self._inflight)
            self._inflight.clear()
            if self._conn is not None and self.is_alive():
                try:
                    self._conn.send_frame(FRAME_CONTROL,
                                          {"op": "abort", "reason": reason})
                except OSError:  # analyze: allow[RL006] fire-and-forget; ids are what failover needs
                    pass
            return dropped

    def health(self) -> dict:
        with self._lock:
            # analyze: allow[CC003] wait=0.0 makes this a non-blocking poll; recv fires only after select says readable
            self._drain_socket(wait=0.0)
            if not self.is_alive():
                return {"status": "down",
                        "model_version": self.model_version,
                        "queue_depth": 0, "pid": self.pid,
                        "transport": "process"}
            base = {"status": "ok" if self._ready else "starting",
                    "model_version": self.model_version,
                    "queue_depth": len(self._inflight)}
            base.update(self._health)
            base["pid"] = self.pid
            base["transport"] = "process"
            return base

    def reload_checkpoint(self, path) -> bool:
        result = self._rpc(FRAME_RELOAD, {"path": str(path)},
                           FRAME_RELOAD_RESULT, timeout=30.0)
        if result is None:
            return False
        if result.get("model_version"):
            with self._lock:
                self._model_version = result["model_version"]
        return bool(result.get("ok"))

    # -- chaos injection -------------------------------------------------- #

    def inject_wedge(self, ignore_term: bool = False) -> bool:
        """Wedge the child: admits work, never answers or heartbeats."""
        result = self._rpc(FRAME_CONTROL,
                           {"op": "wedge", "ignore_term": ignore_term},
                           FRAME_CONTROL_ACK, timeout=self.ack_timeout)
        return result is not None and bool(result.get("ok"))

    def inject_unwedge(self) -> bool:
        result = self._rpc(FRAME_CONTROL, {"op": "unwedge"},
                           FRAME_CONTROL_ACK, timeout=self.ack_timeout)
        return result is not None and bool(result.get("ok"))

    def inject_corrupt_frame(self, kind: str = "crc") -> None:
        """Write a deliberately damaged frame onto the wire.

        ``"crc"`` flips the checksum (recoverable: the child drops and
        counts it), ``"payload"`` ships unpicklable bytes under a valid
        CRC (also recoverable), ``"magic"`` poisons the stream itself
        (the child exits with a desync; the supervisor restarts it).
        """
        blob = pickle.dumps({"op": "noop"})
        if kind == "crc":
            raw = _HEADER.pack(MAGIC, FRAME_CONTROL, len(blob),
                               zlib.crc32(blob) ^ 0xDEADBEEF) + blob
        elif kind == "payload":
            junk = b"\x80\x05not-a-pickle"
            raw = _HEADER.pack(MAGIC, FRAME_CONTROL, len(junk),
                               zlib.crc32(junk)) + junk
        elif kind == "magic":
            raw = b"XX" + _HEADER.pack(MAGIC, FRAME_CONTROL, len(blob),
                                       zlib.crc32(blob))[2:] + blob
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.send_raw(raw)
                except OSError:  # analyze: allow[RL006] chaos injection on a dead wire is a no-op
                    pass

    # -- plumbing --------------------------------------------------------- #

    def _rpc(self, ftype: int, payload: dict, reply_type: int,
             timeout: float):
        rpc_id = next(self._rpc_ids)
        payload = dict(payload, rpc=rpc_id)
        with self._lock:
            if self._conn is None or not self.is_alive():
                return None
            try:
                self._conn.send_frame(ftype, payload)
            except OSError:
                return None
            # analyze: allow[CC003] control-plane RPC is a deliberate bounded synchronous round trip; the lock serializes the wire
            return self._await(reply_type,
                               lambda p: p.get("rpc") == rpc_id, timeout)

    def _await(self, reply_type: int, predicate, timeout: float):
        # Callers hold self._lock.  Frames that are not the awaited reply
        # are demuxed through the normal handlers (responses, heartbeats).
        deadline = time.monotonic() + timeout  # analyze: allow[RL004] real wire-I/O timeout
        while time.monotonic() < deadline:  # analyze: allow[RL004]
            got = self._drain_socket(wait=0.02, want=(reply_type, predicate))
            if got is not None:
                return got
            if not self.is_alive() and (self._conn is None or self._conn.eof):
                return None
        return None

    def _drain_socket(self, wait: float, want=None):
        # Callers hold self._lock.
        conn = self._conn
        if conn is None:
            return None
        matched = None
        try:
            frames = _drop_corrupt(conn.recv_frames(timeout=wait))
        except WireDesyncError:
            self._log("replica_wire_desync", replica_id=self.replica_id)
            self.kill_process()
            return None
        except OSError:
            return None
        for ftype, payload in frames:
            if (want is not None and matched is None and ftype == want[0]
                    and want[1](payload)):
                matched = payload
                self._ingest_spans(payload)
                continue
            self._handle_frame(ftype, payload)
        return matched

    def _handle_frame(self, ftype: int, payload) -> None:
        if not isinstance(payload, dict):
            return
        self._ingest_spans(payload)
        if ftype == FRAME_READY:
            # Every path into _handle_frame runs under self._lock (see
            # _drain_socket's callers); heartbeat ages are compared
            # against the supervisor's clock, which is monotonic too.
            self._ready = True  # analyze: allow[RL008]
            self._model_version = payload.get("model_version")
            self._last_heartbeat = time.monotonic()  # analyze: allow[RL004,RL008]
            self._log("replica_ready", replica_id=self.replica_id,
                      pid=payload.get("pid"),
                      model_version=self._model_version)
        elif ftype == FRAME_HEARTBEAT:
            self._last_heartbeat = time.monotonic()  # analyze: allow[RL004,RL008]
            self._model_version = payload.get("model_version",
                                              self._model_version)
            self._health = {
                "status": payload.get("status", "ok"),
                "queue_depth": payload.get("queue_depth", 0),
                "breaker": payload.get("breaker"),
                "corrupt_frames": payload.get("corrupt_frames", 0),
            }
        elif ftype == FRAME_RESPONSE:
            fields = payload.get("response", {})
            response = ForecastResponse(**fields)
            self._inflight.discard(response.request_id)
            self._responses.append(response)
        elif ftype == FRAME_BYE:
            self._bye = True  # analyze: allow[RL008] under _lock via _drain_socket's callers

    @staticmethod
    def _ingest_spans(payload: dict) -> None:
        for record in payload.get("spans") or ():
            ingest_span_record(record)

    def _log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.log(event, **fields)
