"""Tests for composite functional ops (softmax, losses, gumbel, dropout)."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    check_gradients,
    dropout,
    gumbel_softmax,
    huber_loss,
    l2_norm,
    log_softmax,
    mae_loss,
    mse_loss,
    one_hot,
    pairwise_euclidean,
    randn,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = randn(4, 6, rng=rng)
        out = softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_stability_with_large_logits(self):
        x = Tensor(np.array([[1e6, 1e6 + 1.0]]))
        out = softmax(x)
        assert np.isfinite(out.data).all()
        assert out.data[0, 1] > out.data[0, 0]

    def test_gradient(self, rng):
        x = randn(3, 5, rng=rng, requires_grad=True)
        check_gradients(lambda: (softmax(x, axis=-1) * Tensor(np.arange(5.0))).sum(), [x])

    def test_gradient_other_axis(self, rng):
        x = randn(3, 5, rng=rng, requires_grad=True)
        check_gradients(lambda: softmax(x, axis=0).tanh().sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = randn(3, 5, rng=rng)
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-10)

    def test_log_softmax_gradient(self, rng):
        x = randn(2, 4, rng=rng, requires_grad=True)
        check_gradients(lambda: (log_softmax(x) * Tensor(np.ones((2, 4)))).sum() * 0.25, [x])


class TestLosses:
    def test_mae_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = np.array([2.0, 2.0, 1.0])
        assert mae_loss(pred, target).item() == pytest.approx(1.0)

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = np.array([0.0, 0.0])
        assert mse_loss(pred, target).item() == pytest.approx(5.0)

    def test_mae_gradient(self, rng):
        pred = randn(4, 3, rng=rng, requires_grad=True)
        target = rng.normal(size=(4, 3))
        check_gradients(lambda: mae_loss(pred, Tensor(target)), [pred])

    def test_huber_quadratic_region_matches_half_mse(self, rng):
        pred = Tensor(rng.normal(scale=0.1, size=(5,)), requires_grad=True)
        target = np.zeros(5)
        expected = 0.5 * np.mean(pred.data ** 2)
        assert huber_loss(pred, Tensor(target), delta=10.0).item() == pytest.approx(expected)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([10.0]))
        loss = huber_loss(pred, Tensor(np.array([0.0])), delta=1.0)
        assert loss.item() == pytest.approx(10.0 - 0.5)

    def test_huber_gradient(self, rng):
        pred = randn(6, rng=rng, requires_grad=True)
        pred.data *= 2.0
        target = np.zeros(6)
        check_gradients(lambda: huber_loss(pred, Tensor(target), delta=1.0), [pred])


class TestDropout:
    def test_eval_is_identity(self, rng):
        x = randn(10, 10, rng=rng)
        out = dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_p_zero_is_identity(self, rng):
        x = randn(10, rng=rng)
        assert dropout(x, 0.0, training=True, rng=rng) is x

    def test_training_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_zeroes_fraction(self, rng):
        x = Tensor(np.ones((100, 100)))
        out = dropout(x, 0.4, training=True, rng=rng)
        zero_fraction = (out.data == 0).mean()
        assert zero_fraction == pytest.approx(0.4, abs=0.03)


class TestGumbelSoftmax:
    def test_soft_rows_sum_to_one(self, rng):
        logits = randn(5, 3, rng=rng)
        out = gumbel_softmax(logits, temperature=0.5, rng=rng)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_hard_is_one_hot(self, rng):
        logits = randn(5, 3, rng=rng)
        out = gumbel_softmax(logits, temperature=0.5, rng=rng, hard=True)
        assert set(np.unique(out.data)) <= {0.0, 1.0}
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_hard_gradient_flows(self, rng):
        logits = randn(4, 3, rng=rng, requires_grad=True)
        out = gumbel_softmax(logits, temperature=0.5, rng=rng, hard=True)
        (out * Tensor(np.arange(3.0))).sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_low_temperature_follows_argmax(self, rng):
        logits = Tensor(np.array([[10.0, -10.0, -10.0]] * 20))
        out = gumbel_softmax(logits, temperature=0.1, rng=rng, hard=True)
        assert out.data[:, 0].mean() > 0.9


class TestHelpers:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_multidim(self):
        out = one_hot(np.array([[0], [1]]), 2)
        assert out.shape == (2, 1, 2)

    def test_l2_norm(self, rng):
        x = randn(4, 3, rng=rng, requires_grad=True)
        np.testing.assert_allclose(
            l2_norm(x, axis=-1).data, np.linalg.norm(x.data, axis=-1), rtol=1e-6
        )
        check_gradients(lambda: l2_norm(x, axis=-1).sum(), [x])

    def test_pairwise_euclidean(self, rng):
        a = randn(5, 3, rng=rng, requires_grad=True)
        b = randn(5, 3, rng=rng, requires_grad=True)
        np.testing.assert_allclose(
            pairwise_euclidean(a, b).data, np.linalg.norm(a.data - b.data, axis=-1), rtol=1e-6
        )
        check_gradients(lambda: pairwise_euclidean(a, b).sum(), [a, b])
