"""Training-time augmentation for spatially correlated windows.

Optional regularizers a practitioner would reach for on small traffic
datasets: additive jitter, per-node magnitude scaling, and window
cropping with re-padding.  All operate on *scaled* window batches and
leave targets untouched (the forecast problem stays the same; only the
observed history is perturbed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AugmentationConfig:
    """Strengths of each augmentation; 0 disables an augmentation."""

    jitter_std: float = 0.0
    scale_std: float = 0.0
    crop_probability: float = 0.0
    min_crop_fraction: float = 0.5


class WindowAugmenter:
    """Apply the configured augmentations to (B, P, N, d) input batches."""

    def __init__(self, config: AugmentationConfig, rng: np.random.Generator):
        if not 0 < config.min_crop_fraction <= 1:
            raise ValueError("min_crop_fraction must lie in (0, 1]")
        self.config = config
        self._rng = rng

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        cfg = self.config
        if cfg.jitter_std > 0:
            out = out + self._rng.normal(scale=cfg.jitter_std, size=out.shape)
        if cfg.scale_std > 0:
            batch, _, nodes, _ = out.shape
            factors = np.exp(self._rng.normal(scale=cfg.scale_std, size=(batch, 1, nodes, 1)))
            out = out * factors
        if cfg.crop_probability > 0:
            out = self._crop(np.array(out, copy=True))
        return out

    def _crop(self, inputs: np.ndarray) -> np.ndarray:
        """Randomly blank a leading prefix of the history (simulates a
        sensor coming online mid-window); kept frames stay aligned to the
        forecast origin."""
        batch, history, _, _ = inputs.shape
        min_keep = max(1, int(np.ceil(self.config.min_crop_fraction * history)))
        for b in range(batch):
            if self._rng.random() < self.config.crop_probability:
                keep = int(self._rng.integers(min_keep, history + 1))
                inputs[b, : history - keep] = 0.0
        return inputs
