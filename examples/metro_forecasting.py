"""Metro passenger-flow forecasting with time-aware graph inspection.

Run:  python examples/metro_forecasting.py

The scenario of the paper's introduction: stations in residential,
business, and shopping areas exchange passengers with daily trends and
weekday/weekend periodicity.  This example

1. inspects the ground-truth OD dynamics the generator plants (Fig. 2),
2. trains TGCRN and two graph baselines,
3. extracts the learned time-aware adjacency at several times of day and
   compares it against the true OD matrices (Fig. 11's analysis).
"""

import numpy as np

from repro import TGCRN, Trainer, TrainingConfig, load_task
from repro.autodiff import Tensor, no_grad
from repro.training import default_tgcrn_kwargs, run_experiment
from repro.viz import matrix_correlation, render_heatmap, side_by_side


def inspect_ground_truth(task):
    """Show the planted OD periodicity/trend (the paper's Fig. 2)."""
    spd = task.steps_per_day
    morning = spd // 6
    monday = task.dataset.od_matrix(0 * spd + morning)
    saturday = task.dataset.od_matrix(5 * spd + morning)
    print("Ground-truth OD transfer, same morning slot:")
    print(side_by_side(
        render_heatmap(monday, title="Monday"),
        render_heatmap(saturday, title="Saturday"),
    ))
    drift = [np.abs(task.dataset.od_matrix(morning + k) - monday).mean() for k in range(4)]
    print("mean |OD(t+k) - OD(t)| over consecutive spans:",
          " ".join(f"{d:.3f}" for d in drift))


def learned_adjacency(model, task, step):
    frame = task.scaler.transform(task.dataset.values[step : step + 1])
    with no_grad():
        adjacency = model.tagsl.normalized(Tensor(frame), np.array([step]))
    out = adjacency.data[0].copy()
    np.fill_diagonal(out, 0.0)
    return out


def main():
    task = load_task("hzmetro", num_nodes=12, num_days=10, seed=0)
    inspect_ground_truth(task)

    config = TrainingConfig(epochs=10, batch_size=16)
    print("\nTraining TGCRN and graph baselines (DCRNN pre-defined graph, "
          "AGCRN static self-learning graph)...")
    results = {}
    for name in ("dcrnn", "agcrn"):
        results[name] = run_experiment(name, task, config, hidden_dim=16, num_layers=1)

    model = TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=16, node_dim=8, time_dim=8, num_layers=1),
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(config)
    trainer.fit(model, task)
    overall, _ = trainer.test_report(model, task)

    print(f"\n{'model':<8} {'MAE':>8} {'RMSE':>8}")
    for name, r in results.items():
        print(f"{name:<8} {r.overall.mae:8.2f} {r.overall.rmse:8.2f}")
    print(f"{'tgcrn':<8} {overall.mae:8.2f} {overall.rmse:8.2f}")

    print("\nLearned time-aware adjacency vs ground-truth OD (weekday morning):")
    spd = task.steps_per_day
    step = 1 * spd + spd // 6
    learned = learned_adjacency(model, task, step)
    truth = task.dataset.od_matrix(step)
    print(side_by_side(
        render_heatmap(learned, title="learned A^t"),
        render_heatmap(truth, title=f"true OD (corr={matrix_correlation(learned, truth):+.3f})"),
    ))
    weekend = learned_adjacency(model, task, 5 * spd + spd // 6)
    print(f"\nmean |A_weekday - A_weekend| = {np.abs(learned - weekend).mean():.4f} "
          "(nonzero -> the graph is period-aware)")


if __name__ == "__main__":
    main()
