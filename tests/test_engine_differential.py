"""Differential replay-vs-eager harness for the execution engine.

Every model in the registry (TGCRN plus the eleven neural baselines)
trains twin copies side by side from identical initialisation — one
eager, one through :class:`~repro.autodiff.engine.ExecutionEngine` —
and the harness asserts that predictions, losses, every parameter
gradient, and every post-step parameter value are **bitwise** identical
at every step.  The engine's contract is "same arithmetic, fewer Python
frames"; any drift here is a correctness bug in the engine, never an
acceptable tolerance.

No model currently needs a tolerance fallback: replay re-runs the same
kernels over the same operands in the same order, so reduction order is
preserved exactly.  If a future kernel rewrite legitimately reorders a
reduction, document it here and relax only that model's comparison to
``rtol=1e-12`` — never silently.

Model constructors are shared with ``test_baselines_neural`` so the
"every registry model" guarantee can't drift from the registry itself.
"""

import numpy as np
import pytest

from tests.test_baselines_neural import _IN, _NODES, _OUT, _P, _Q, _build

from repro.autodiff import Tensor, mae_loss
from repro.autodiff.engine import ExecutionEngine, discover_rngs
from repro.baselines import NEURAL_BASELINES
from repro.core import TGCRN
from repro.nn import Adam, clip_grad_norm
from repro.verify import named_rng

ALL_MODELS = ("tgcrn",) + tuple(NEURAL_BASELINES)

_STEPS_PER_DAY = 24
_BATCH = 3


def _make(name):
    """One model instance from a name-salted rng (twin-safe: same name,
    same seed → bitwise-identical parameters and graph draws)."""
    rng = named_rng(0, f"engine-diff-{name}")
    if name == "tgcrn":
        return TGCRN(
            num_nodes=_NODES, in_dim=_IN, out_dim=_OUT, horizon=_Q,
            hidden_dim=8, num_layers=1, node_dim=4, time_dim=4,
            steps_per_day=_STEPS_PER_DAY, rng=rng,
        )
    return _build(name, rng)


def _batches(n=2, batch=_BATCH):
    """Deterministic (x, y, t) training batches, all the same shape so a
    single plan signature covers every step after the first."""
    rng = named_rng(1, "engine-diff-batches")
    out = []
    for i in range(n):
        x = rng.normal(size=(batch, _P, _NODES, _IN))
        y = rng.normal(scale=0.3, size=(batch, _Q, _NODES, _OUT))
        t = np.arange(_P + _Q)[None, :].repeat(batch, axis=0) + i
        out.append((x, y, t))
    return out


def _step_of(model):
    def step(x_t, y_t, t):
        pred = model(x_t, t)
        loss = mae_loss(pred, y_t)
        loss.backward()
        return loss, pred
    return step


@pytest.mark.parametrize("name", ALL_MODELS)
def test_eager_and_compiled_twins_bitwise_identical(name):
    eager, compiled = _make(name), _make(name)
    eager.train(True)
    compiled.train(True)
    opt_e = Adam(eager.parameters(), lr=1e-3, weight_decay=1e-4)
    opt_c = Adam(compiled.parameters(), lr=1e-3, weight_decay=1e-4)
    engine = ExecutionEngine(f"diff:{name}", rngs=discover_rngs(compiled))
    step_e, step_c = _step_of(eager), _step_of(compiled)

    batches = _batches()
    for sweep in range(2):
        for i, (x, y, t) in enumerate(batches):
            opt_e.zero_grad()
            loss_e, pred_e = step_e(Tensor(x), Tensor(y), t)
            opt_c.zero_grad()
            loss_c, pred_c = engine.run(step_c, Tensor(x), Tensor(y), t)

            where = f"{name} sweep {sweep} batch {i}"
            assert loss_e.item() == loss_c.item(), f"{where}: loss diverged"
            assert np.array_equal(pred_e.data, pred_c.data), \
                f"{where}: predictions diverged"
            for (n_e, p_e), (n_c, p_c) in zip(
                eager.named_parameters(), compiled.named_parameters()
            ):
                assert n_e == n_c
                assert p_e.grad is not None and p_c.grad is not None, \
                    f"{where}: missing grad for {n_e}"
                assert np.array_equal(np.asarray(p_e.grad), np.asarray(p_c.grad)), \
                    f"{where}: grad diverged for {n_e}"

            clip_grad_norm(eager.parameters(), 5.0)
            clip_grad_norm(compiled.parameters(), 5.0)
            opt_e.step()
            opt_c.step()
            for (n_e, p_e), (_, p_c) in zip(
                eager.named_parameters(), compiled.named_parameters()
            ):
                assert np.array_equal(p_e.data, p_c.data), \
                    f"{where}: parameter diverged after step for {n_e}"

    # The comparison only means something if the engine actually replayed:
    # every model in the registry must capture once and then run the
    # recorded plan — zero eager fallbacks, zero invalidations.
    stats = engine.stats
    assert stats["captures"] == 1, f"{name}: {stats}"
    assert stats["replays"] == len(batches) * 2 - 1, f"{name}: {stats}"
    assert stats["eager_steps"] == 0, f"{name}: {stats}"
    assert stats["invalidations"] == 0, f"{name}: {stats}"
