"""Historical Average (HA): forecast the mean of corresponding periods.

The statistical baseline of Table IV/V — for a future frame at slot *s*
of a weekday/weekend day, predict the training-set average of that slot
and day type for each node.
"""

from __future__ import annotations

import numpy as np

from ..data.datasets import ForecastingTask


class HistoricalAverage:
    """Non-parametric baseline with the same predict contract as Trainer.

    ``fit`` aggregates the training windows by (slot-of-day, day-type);
    ``predict_windows`` looks the table up for every target frame.
    """

    def __init__(self, steps_per_day: int, start_weekday: int = 0):
        self.steps_per_day = steps_per_day
        self.start_weekday = start_weekday
        self._table: np.ndarray | None = None        # (2, slots, N, d)
        self._global_mean: np.ndarray | None = None  # (N, d)

    @classmethod
    def for_task(cls, task: ForecastingTask) -> "HistoricalAverage":
        """Build and fit the baseline for a task in one call.

        The always-available fallback model: ``repro.resilience.degrade``
        swaps this in when a neural model's output fails validation.
        """
        dataset = getattr(task, "dataset", None)
        day_of_week = getattr(dataset, "day_of_week", None)
        start = int(day_of_week[0]) if day_of_week is not None and len(day_of_week) else 0
        return cls(task.steps_per_day, start_weekday=start).fit(task)

    # ------------------------------------------------------------------ #

    def _slot_and_type(self, time_index: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        slot = time_index % self.steps_per_day
        day = time_index // self.steps_per_day
        weekend = ((self.start_weekday + day) % 7 >= 5).astype(np.int64)
        return slot, weekend

    def fit(self, task: ForecastingTask) -> "HistoricalAverage":
        """Aggregate all frames appearing in training inputs and targets."""
        inputs = task.train.inputs          # (S, P, N, d) — scaled
        times = task.train.time_indices[:, : task.history]
        frames = inputs.reshape(-1, *inputs.shape[2:])
        flat_times = times.reshape(-1)
        slots, weekends = self._slot_and_type(flat_times)

        num_nodes, dim = frames.shape[1], frames.shape[2]
        sums = np.zeros((2, self.steps_per_day, num_nodes, dim))
        counts = np.zeros((2, self.steps_per_day, 1, 1))
        np.add.at(sums, (weekends, slots), frames)
        np.add.at(counts, (weekends, slots), 1.0)
        self._global_mean = frames.mean(axis=0)
        with np.errstate(invalid="ignore"):
            table = sums / counts
        missing = counts[..., 0, 0] == 0
        table[missing] = self._global_mean
        self._table = table
        return self

    def predict_windows(self, time_indices: np.ndarray, history: int, out_dim: int) -> np.ndarray:
        """Predict scaled targets for windows given their time indices.

        Returns (S, Q, N, out_dim) matching the target layout.
        """
        if self._table is None:
            raise RuntimeError("fit() must run before predict")
        future = time_indices[:, history:]
        slots, weekends = self._slot_and_type(future)
        return self._table[weekends, slots][..., :out_dim]

    def evaluate(self, task: ForecastingTask, split: str = "test") -> tuple[np.ndarray, np.ndarray]:
        """Unscaled (prediction, target) for a split, Trainer-compatible."""
        windows = {"train": task.train, "val": task.val, "test": task.test}[split]
        scaled = self.predict_windows(windows.time_indices, task.history, task.out_dim)
        prediction = task.inverse_targets(scaled)
        target = task.inverse_targets(windows.targets)
        return prediction, target
