"""Common feed-forward layers."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..autodiff import Tensor, dropout, gather_rows
from . import init
from .module import Module, ModuleList, Parameter

_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": lambda x: x.relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
    "leaky_relu": lambda x: x.leaky_relu(),
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Resolve an activation by name (raises on unknown names)."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}") from None


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of learnable vectors, indexed by integer arrays."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *, rng: np.random.Generator, std: float = 1.0):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std))

    def forward(self, indices) -> Tensor:
        return gather_rows(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.training, self._rng)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim))
        self.beta = Parameter(np.zeros(normalized_dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Chain modules; callables (activations) are allowed inline."""

    def __init__(self, *stages):
        super().__init__()
        self._stages = []
        for index, stage in enumerate(stages):
            if isinstance(stage, Module):
                self.register_module(str(index), stage)
            self._stages.append(stage)

    def forward(self, x: Tensor) -> Tensor:
        for stage in self._stages:
            x = stage(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a uniform hidden activation."""

    def __init__(
        self,
        dims: Sequence[int],
        activation: str = "relu",
        out_activation: str = "identity",
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.layers = ModuleList(
            [Linear(d_in, d_out, rng=rng) for d_in, d_out in zip(dims[:-1], dims[1:])]
        )
        self._hidden_act = get_activation(activation)
        self._out_act = get_activation(out_activation)

    def forward(self, x: Tensor) -> Tensor:
        for layer in list(self.layers)[:-1]:
            x = self._hidden_act(layer(x))
        return self._out_act(self.layers[len(self.layers) - 1](x))
