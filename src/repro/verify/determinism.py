"""Determinism discipline: parameter hashing, named RNG streams, golden traces.

Trainer/optimizer refactors cannot be validated by eyeballing benchmark
numbers — graph-generator changes move metrics by less than seed variance.
Instead this module pins down *bit-level reproducibility*:

* :func:`state_hash` — a stable SHA-256 digest of a module's parameters
  (names, shapes, dtypes, payload bytes), so "did this refactor change the
  trained weights at all?" is a string comparison;
* :func:`named_rng` — derive independent, deterministic RNG streams from a
  base seed and a purpose string, so adding a consumer never perturbs the
  draws of existing ones (seeded RNG stream discipline);
* :func:`run_golden_trace` / :func:`compare_traces` — run a tiny TGCRN
  training deterministically and compare its loss curve against a committed
  fixture (``tests/golden/``) with explicit tolerances.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

# state_hash lives next to the checkpoint code (it doubles as the
# checkpoint integrity digest) and is re-exported here as part of the
# determinism toolkit.
from ..ioutil import atomic_write_text
from ..nn.serialization import state_hash

__all__ = [
    "GoldenTrace",
    "compare_traces",
    "load_trace",
    "named_rng",
    "run_golden_trace",
    "save_trace",
    "state_hash",
]


def named_rng(seed: int, name: str) -> np.random.Generator:
    """Deterministic, independent RNG stream for ``(seed, name)``.

    The purpose string is folded into the seed material through SHA-256, so
    streams never collide or shift when new names are introduced — the
    failure mode of handing one shared generator to every consumer.
    """
    name_entropy = int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "little")
    return np.random.default_rng(np.random.SeedSequence([int(seed), name_entropy]))


# --------------------------------------------------------------------- #
# golden traces
# --------------------------------------------------------------------- #

_TRACE_VERSION = 1


@dataclass
class GoldenTrace:
    """A loss-curve fixture: the deterministic footprint of one tiny run."""

    config: dict
    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    final_state_hash: str = ""
    version: int = _TRACE_VERSION


def run_golden_trace(
    epochs: int = 2,
    seed: int = 2024,
    num_nodes: int = 4,
    num_days: int = 4,
    compile: bool = False,
) -> GoldenTrace:
    """Train a tiny TGCRN end to end, fully deterministically.

    Everything that consumes randomness (data synthesis, parameter init,
    batch shuffling, Algorithm-1 sampling) is seeded from ``seed`` via
    :func:`named_rng`-style derivation inside the stack, so two calls with
    equal arguments produce identical loss curves and parameter hashes on
    the same platform.

    ``compile=True`` routes training through the capture/replay engine
    (docs/engine.md); the engine's bitwise guarantee means the resulting
    trace — including ``final_state_hash`` — is identical to the eager
    one, so the committed fixture gates both execution modes.  The flag
    deliberately stays out of ``config`` (fixture config equality).
    """
    from ..core import TGCRN
    from ..data import load_task
    from ..training import Trainer, TrainingConfig

    config = {
        "epochs": epochs,
        "seed": seed,
        "num_nodes": num_nodes,
        "num_days": num_days,
        "hidden_dim": 4,
        "node_dim": 3,
        "time_dim": 3,
        "num_layers": 1,
        "batch_size": 16,
    }
    task = load_task("hzmetro", num_nodes=num_nodes, num_days=num_days, seed=seed)
    model = TGCRN(
        num_nodes=task.num_nodes,
        in_dim=task.in_dim,
        out_dim=task.out_dim,
        horizon=task.horizon,
        hidden_dim=config["hidden_dim"],
        num_layers=config["num_layers"],
        node_dim=config["node_dim"],
        time_dim=config["time_dim"],
        steps_per_day=task.steps_per_day,
        rng=named_rng(seed, "golden-model-init"),
    )
    trainer = Trainer(
        TrainingConfig(epochs=epochs, batch_size=config["batch_size"], seed=seed,
                       compile=compile)
    )
    history = trainer.fit(model, task)
    return GoldenTrace(
        config=config,
        train_losses=[float(v) for v in history.train_losses],
        val_maes=[float(v) for v in history.val_maes],
        final_state_hash=state_hash(model),
    )


def save_trace(path: str | Path, trace: GoldenTrace) -> None:
    """Write a trace as pretty-printed JSON (stable key order for diffs)."""
    atomic_write_text(Path(path), json.dumps(asdict(trace), indent=2, sort_keys=True) + "\n")


def load_trace(path: str | Path) -> GoldenTrace:
    payload = json.loads(Path(path).read_text())
    return GoldenTrace(**payload)


def compare_traces(
    actual: GoldenTrace,
    golden: GoldenTrace,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    strict_hash: bool = False,
) -> list[str]:
    """Tolerance-aware trace comparison; returns human-readable mismatches.

    An empty list means the run matches the fixture.  Loss curves are
    compared with ``rtol``/``atol`` (cross-platform BLAS reductions can
    differ in the last bits); ``strict_hash=True`` additionally demands the
    bitwise parameter hash, which is only meaningful same-platform.
    """
    problems: list[str] = []
    if actual.config != golden.config:
        problems.append(f"config mismatch: {actual.config} != {golden.config}")
    for label, got, want in (
        ("train_losses", actual.train_losses, golden.train_losses),
        ("val_maes", actual.val_maes, golden.val_maes),
    ):
        if len(got) != len(want):
            problems.append(f"{label}: length {len(got)} != {len(want)}")
            continue
        got_arr, want_arr = np.asarray(got), np.asarray(want)
        if not np.allclose(got_arr, want_arr, rtol=rtol, atol=atol):
            worst = int(np.argmax(np.abs(got_arr - want_arr)))
            problems.append(
                f"{label}[{worst}]: {got_arr[worst]!r} != {want_arr[worst]!r} "
                f"(|Δ| = {abs(got_arr[worst] - want_arr[worst]):.3e})"
            )
    if strict_hash and actual.final_state_hash != golden.final_state_hash:
        problems.append(
            f"final_state_hash: {actual.final_state_hash[:16]}… != "
            f"{golden.final_state_hash[:16]}…"
        )
    return problems
