"""ASCII line plots for training curves and horizon series.

Keeps the whole toolkit usable over SSH / in CI logs where no display
exists — the same constraint under which the heat maps render as text.
"""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar chart of a numeric series."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    return "".join(_BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in values)


def line_plot(
    series: dict[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """Multi-series ASCII line plot (one glyph per series).

    Series are resampled to ``width`` columns; rows run from the max value
    (top) to the min (bottom).
    """
    if not series:
        return "(no data)"
    glyphs = "*+ox#@%&"
    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        values = list(values)
        if len(values) == 1:
            values = values * 2
        for col in range(width):
            position = col / (width - 1) * (len(values) - 1)
            left = int(position)
            frac = position - left
            value = values[left] if left + 1 >= len(values) else (
                (1 - frac) * values[left] + frac * values[left + 1]
            )
            row = int((hi - value) / span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.4g} ┤" + "".join(grid[-1]))
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def training_curve(train_losses: Sequence[float], val_maes: Sequence[float]) -> str:
    """Render a TrainingHistory's curves side by side."""
    left = f"train loss {sparkline(train_losses)}  [{train_losses[0]:.3f} -> {train_losses[-1]:.3f}]"
    right = f"val MAE    {sparkline(val_maes)}  [{val_maes[0]:.3f} -> {val_maes[-1]:.3f}]"
    return left + "\n" + right
