"""Runtime lock-order sanitizer: witness the locking the static pass infers.

:class:`LockOrderSanitizer` patches the ``threading.Lock`` / ``RLock``
*factories* so every lock created while it is installed is wrapped in a
tracker.  Each acquire records, per thread, the set of locks already
held and adds ``held -> acquired`` edges to a global lock-order graph;
each release pops the per-thread held-set.  At teardown the graph is
checked for cycles — two threads that ever take the same pair of locks
in opposite orders produce one, whether or not the schedule actually
deadlocked on this run.  That turns "the chaos smoke happened to pass"
into "no interleaving of the observed critical sections can deadlock".

Three judgement surfaces:

* :meth:`~LockOrderSanitizer.cycles` — lock-order cycles with witness
  creation sites and the acquisition sites of every edge.
* :meth:`~LockOrderSanitizer.checkpoint` — fault-injection seams
  (replica kill/pause, chaos ``fault_hook`` points) call this; holding
  any tracked lock across an injection point is recorded as a
  violation (faults must never fire inside a critical section, or
  recovery can deadlock on the dead holder's lock).
* :meth:`~LockOrderSanitizer.check` — raises
  :class:`LockOrderViolation` on either; tests call it at teardown.

The witness graph exports as JSONL
(:meth:`~LockOrderSanitizer.export_jsonl`) so CI uploads it as an
artifact next to the span/run logs.

Wiring: product code never imports this module.  ``install()`` hangs
``checkpoint`` on the :mod:`threading` module under a private name and
the serve/resilience injection seams invoke it via ``getattr`` — zero
coupling, zero overhead when not installed.  Locks created *before*
``install()`` (module-level registries) are invisible; install the
sanitizer before constructing servers/fleets.

Condition compatibility: ``threading.Condition`` duck-types its lock
through ``acquire``/``release``/``_is_owned``/``_release_save``/
``_acquire_restore``.  The wrapper forwards all five (synthesizing the
plain-``Lock`` fallbacks exactly as ``Condition`` itself would) and
keeps the held-set honest across ``wait()``'s release/reacquire.
"""

from __future__ import annotations

import _thread
import json
import threading
from collections import defaultdict
from pathlib import Path
from sys import _getframe

_HOOK_ATTR = "_repro_lockorder_checkpoint"


class LockOrderViolation(AssertionError):
    """A lock-order cycle or a lock held across a fault-injection point."""


def checkpoint(label: str) -> None:
    """Module-level seam: forward to the installed sanitizer, if any."""
    hook = getattr(threading, _HOOK_ATTR, None)
    if hook is not None:
        hook(label)


def _creation_site() -> str:
    """file:line of the first caller frame outside this module/threading."""
    frame = _getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(("lockorder.py", "threading.py")):
            parts = filename.replace("\\", "/").split("/")
            return f"{'/'.join(parts[-2:])}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _TrackedLock:
    """A Lock/RLock wrapper that reports acquire/release to the sanitizer."""

    def __init__(self, inner, sanitizer: "LockOrderSanitizer", name: str):
        self._inner = inner
        self._sanitizer = sanitizer
        self.name = name

    # -- the core protocol -------------------------------------------- #

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._sanitizer._note_acquire(self, _creation_site())
        return got

    def release(self):
        self._inner.release()
        self._sanitizer._note_release(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def locked(self):
        return self._inner.locked()

    def _at_fork_reinit(self):
        # threading._after_fork reinits every lock in the child; only the
        # forking thread survives, so drop any recursion this lock held
        self._inner._at_fork_reinit()
        self._sanitizer._note_release(self, full=True)

    def __repr__(self):
        return f"<tracked {self.name} wrapping {self._inner!r}>"

    # -- Condition duck-typing ---------------------------------------- #

    def _is_owned(self):
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        if inner.acquire(False):  # plain Lock: Condition's own fallback dance
            inner.release()
            return False
        return True

    def _release_save(self):
        # Condition.wait releases the *entire* recursion level
        self._sanitizer._note_release(self, full=True)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state):
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._sanitizer._note_acquire(self, _creation_site())


class LockOrderSanitizer:
    """Patch lock factories, accumulate the order graph, judge at teardown."""

    def __init__(self):
        self._state_lock = _thread.allocate_lock()  # raw: never self-tracked
        self._held: dict[int, list] = defaultdict(list)  # tid -> [[lock, count], ...]
        self._edges: dict[tuple, dict] = {}  # (from, to) -> witness
        self._locks: dict[str, str] = {}  # name -> creation site
        self._violations: list[dict] = []
        self._installed = False
        self._saved: dict = {}
        self._seq = 0

    # -- install / uninstall ------------------------------------------- #

    def install(self) -> "LockOrderSanitizer":
        if self._installed:
            return self
        self._saved = {"Lock": threading.Lock, "RLock": threading.RLock}

        def make_factory(kind: str, original):
            def factory(*args, **kwargs):
                site = _creation_site()
                with self._state_lock:
                    self._seq += 1
                    name = f"{kind}@{site}#{self._seq}"
                    self._locks[name] = site
                return _TrackedLock(original(*args, **kwargs), self, name)

            return factory

        threading.Lock = make_factory("Lock", self._saved["Lock"])
        threading.RLock = make_factory("RLock", self._saved["RLock"])
        setattr(threading, _HOOK_ATTR, self.checkpoint)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._saved["Lock"]
        threading.RLock = self._saved["RLock"]
        # bound methods are re-created per access, so compare owners
        hook = getattr(threading, _HOOK_ATTR, None)
        if getattr(hook, "__self__", None) is self:
            delattr(threading, _HOOK_ATTR)
        self._installed = False

    def __enter__(self) -> "LockOrderSanitizer":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.uninstall()
        if exc_type is None:
            self.check()
        return False

    # -- tracking ------------------------------------------------------- #

    def _note_acquire(self, lock: _TrackedLock, site: str) -> None:
        tid = _thread.get_ident()
        with self._state_lock:
            held = self._held[tid]
            for entry in held:
                if entry[0] is lock:  # reentrant re-acquire: no new edges
                    entry[1] += 1
                    return
            for entry in held:
                key = (entry[0].name, lock.name)
                if key not in self._edges:
                    self._edges[key] = {"thread": tid, "at": site}
            held.append([lock, 1])

    def _note_release(self, lock: _TrackedLock, full: bool = False) -> None:
        tid = _thread.get_ident()
        with self._state_lock:
            held = self._held[tid]
            for i, entry in enumerate(held):
                if entry[0] is lock:
                    entry[1] = 0 if full else entry[1] - 1
                    if entry[1] <= 0:
                        del held[i]
                    return

    # -- judgement ------------------------------------------------------ #

    def checkpoint(self, label: str) -> None:
        """Record a violation if the calling thread holds tracked locks."""
        tid = _thread.get_ident()
        with self._state_lock:
            held = [entry[0].name for entry in self._held.get(tid, [])]
            if held:
                self._violations.append(
                    {"type": "held_at_checkpoint", "label": label,
                     "locks": held, "thread": tid}
                )

    def held_now(self) -> list[str]:
        tid = _thread.get_ident()
        with self._state_lock:
            return [entry[0].name for entry in self._held.get(tid, [])]

    def edges(self) -> dict[tuple, dict]:
        with self._state_lock:
            return dict(self._edges)

    def cycles(self) -> list[list[str]]:
        """Lock-order cycles (each a list of lock names, in edge order)."""
        edges = self.edges()
        graph: dict[str, set] = defaultdict(set)
        for a, b in edges:
            graph[a].add(b)
            graph.setdefault(b, set())
        out: list[list[str]] = []
        state: dict[str, int] = {}  # 1 = on stack, 2 = done

        def dfs(node: str, path: list[str]):
            state[node] = 1
            path.append(node)
            for nxt in sorted(graph[node]):
                mark = state.get(nxt)
                if mark == 1:
                    out.append(path[path.index(nxt):] + [nxt])
                elif mark is None:
                    dfs(nxt, path)
            path.pop()
            state[node] = 2

        for node in sorted(graph):
            if node not in state:
                dfs(node, [])
        return out

    def violations(self) -> list[dict]:
        with self._state_lock:
            return list(self._violations)

    def report(self) -> dict:
        cycles = self.cycles()
        edges = self.edges()
        return {
            "locks": len(self._locks),
            "edges": len(edges),
            "cycles": cycles,
            "checkpoint_violations": self.violations(),
            "ok": not cycles and not self._violations,
        }

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` on cycles or held checkpoints."""
        report = self.report()
        if report["ok"]:
            return
        problems = []
        for cycle in report["cycles"]:
            problems.append("lock-order cycle: " + " -> ".join(cycle))
        for violation in report["checkpoint_violations"]:
            problems.append(
                f"locks {violation['locks']} held across fault-injection "
                f"point {violation['label']!r}"
            )
        raise LockOrderViolation("; ".join(problems))

    # -- export --------------------------------------------------------- #

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the witness graph (locks, edges, violations, summary)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        with self._state_lock:
            for name, site in sorted(self._locks.items()):
                lines.append({"type": "lock", "name": name, "created_at": site})
            for (a, b), witness in sorted(self._edges.items()):
                lines.append({"type": "edge", "from": a, "to": b, **witness})
            for violation in self._violations:
                lines.append({"type": "violation", **violation})
        lines.append({"type": "summary", **self.report()})
        from ..ioutil import atomic_write_text

        return atomic_write_text(
            path, "".join(json.dumps(line) + "\n" for line in lines)
        )
