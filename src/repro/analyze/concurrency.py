"""Cross-module concurrency lint: guarded-by inference + lock graphs.

The serving stack (``serve/``, ``resilience/``, ``obs/``) is genuinely
concurrent — worker threads, a fleet router, socket-backed replica
clients — and the single-file rules in :mod:`repro.analyze.lint` cannot
see the discipline that keeps it correct: *which lock guards which
attribute*, and *in which order locks nest across modules*.  This pass
parses every file once, builds whole-program lock facts, and reports:

======  ========  =====================================================
CC001   error     mixed guarded/unguarded access to a mutable instance
                  attribute in a threaded class (a data race)
CC002   error     lock-ordering cycle in the inter-procedural
                  lock-acquisition graph (a potential deadlock)
CC003   warning   blocking call (socket ``recv``/``accept``, un-timed
                  ``join``, ``sleep``, un-timed ``Queue.get``,
                  ``retry_call``) while holding a lock
CC004   error     ``Condition.wait`` outside a predicate ``while`` loop
                  (misses spurious wakeups)
======  ========  =====================================================

Inference rules (also documented in ``docs/analysis.md``):

* A *lock attribute* is any ``self.X = threading.Lock()/RLock()/
  Condition()/Semaphore()`` assignment (or an attribute whose name
  contains ``lock``).  ``Condition(self._lock)`` aliases the condition
  to the underlying lock, so ``with self._cond:`` and ``with
  self._lock:`` count as the same guard.
* A class is *threaded* when it constructs ``threading.Thread`` anywhere
  or lives under a worker-path prefix (``serve/``, ``resilience/``,
  ``obs/``) — code on those paths runs on server/fleet worker threads.
* *Inter-procedural guards*: a private method (leading underscore) whose
  every in-class call site runs with a lock held inherits that lock as
  its entry guard — the ``fleet.py`` "callers hold ``self._lock``"
  convention.  Public methods are assumed callable from anywhere.
* ``__init__`` — and private methods reachable *only* from
  ``__init__`` — run before the object is shared; accesses there are
  exempt from CC001.
* Calls resolve: ``self.m()`` to the same class; ``self.attr.m()`` via
  ``self.attr = ClassName(...)`` assignments; bare ``f()`` to a module
  function; otherwise by unique method name across all scanned classes
  (ambiguous names stay unresolved — the analyzer under-approximates
  rather than guess).

A finding on line *L* is suppressed by ``# analyze: allow[CC00x]
<reason>`` on *L* or the line above, same convention as the RL rules.
Findings anchor on the file path (no line numbers) so fingerprints
survive unrelated edits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .lint import _ALLOW_RE, _LOCK_FACTORIES, _dotted, _iter_py_files

#: module prefixes whose classes are treated as running on worker threads
WORKER_PATH_PREFIXES = ("serve/", "resilience/", "obs/")

#: dotted-name tails that always block (per the serving stack's inventory)
_BLOCKING_TAILS = {"recv", "recv_into", "recvfrom", "accept", "sleep", "retry_call"}

#: methods that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "clear", "add", "discard",
    "remove", "update", "setdefault", "sort", "reverse", "put",
}

#: rule catalog (mirrored in docs/analysis.md; tests assert both exist)
CONCURRENCY_RULES: dict[str, dict] = {
    "CC001": dict(
        name="mixed-guarded-access",
        severity="error",
        description=(
            "mutable instance attribute accessed both under the class lock "
            "and without it in a threaded class — a data race"
        ),
        fix_hint=(
            "take the lock on every non-init access, or document the benign "
            "race with '# analyze: allow[CC001] <reason>'"
        ),
    ),
    "CC002": dict(
        name="lock-order-cycle",
        severity="error",
        description=(
            "inter-procedural lock-acquisition graph contains a cycle — two "
            "threads taking the locks in opposite orders deadlock"
        ),
        fix_hint=(
            "pick one global acquisition order, or release the first lock "
            "before calling into the subsystem that takes the second"
        ),
    ),
    "CC003": dict(
        name="blocking-under-lock",
        severity="warning",
        description=(
            "blocking call (recv/accept, un-timed join, sleep, un-timed "
            "Queue.get, retry_call) while holding a lock stalls every other "
            "thread that needs it"
        ),
        fix_hint=(
            "move the blocking call outside the critical section or bound it "
            "with a timeout; if the lock must serialize the wait, annotate "
            "with '# analyze: allow[CC003] <reason>'"
        ),
    ),
    "CC004": dict(
        name="wait-without-while",
        severity="error",
        description=(
            "un-timed Condition.wait() outside a predicate while-loop — "
            "spurious wakeups and stolen wakeups break the invariant"
        ),
        fix_hint="re-check the predicate: 'while not pred: cond.wait()'",
    ),
}


# --------------------------------------------------------------------- #
# model extraction
# --------------------------------------------------------------------- #


@dataclass
class _ClassInfo:
    name: str
    module: "_ModuleInfo"
    node: ast.ClassDef
    lock_attrs: dict[str, str] = field(default_factory=dict)  # attr -> canonical attr
    lock_kinds: dict[str, str] = field(default_factory=dict)  # canonical attr -> factory
    attr_types: dict[str, str] = field(default_factory=dict)  # self.attr -> ClassName
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    starts_threads: bool = False

    @property
    def qualname(self) -> str:
        return self.name

    def lock_id(self, attr: str) -> str:
        return f"{self.name}.{self.lock_attrs.get(attr, attr)}"


@dataclass
class _ModuleInfo:
    path: Path
    display: str
    pkg_rel: str
    tree: ast.Module
    lines: list[str]
    mod_name: str
    module_locks: dict[str, str] = field(default_factory=dict)  # NAME -> factory
    classes: list[_ClassInfo] = field(default_factory=list)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def allows(self) -> dict[int, set[str]]:
        out: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(line)
            if match:
                out[lineno] = {p.strip() for p in match.group(1).split(",") if p.strip()}
        return out

    def in_any(self, prefixes: Iterable[str]) -> bool:
        return any(
            self.pkg_rel == p or self.pkg_rel.startswith(p) or f"/{p}" in f"/{self.pkg_rel}"
            for p in prefixes
        )


def _lock_factory_of(value: ast.expr) -> str | None:
    if isinstance(value, ast.Call):
        tail = _dotted(value.func).split(".")[-1]
        if tail in _LOCK_FACTORIES:
            return tail
    return None


def _lockish_name(attr: str) -> bool:
    """True for names where ``lock`` is a token (``_lock``, ``model_lock``)
    — not a substring (``_clock`` is a clock, not a lock)."""
    name = attr.lower().lstrip("_")
    return name == "lock" or name.endswith("_lock") or name.startswith("lock_")


def _collect_class(module: _ModuleInfo, node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(name=node.name, module=module, node=node)
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            if _dotted(child.func).split(".")[-1] == "Thread":
                info.starts_threads = True
        if not isinstance(child, ast.Assign):
            continue
        for target in child.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            factory = _lock_factory_of(child.value)
            if factory == "Condition" and isinstance(child.value, ast.Call) and child.value.args:
                # Condition(self._lock) shares the underlying lock
                arg = child.value.args[0]
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                ):
                    info.lock_attrs[target.attr] = arg.attr
                    continue
            if factory is not None or _lockish_name(target.attr):
                info.lock_attrs.setdefault(target.attr, target.attr)
                info.lock_kinds[target.attr] = factory or "Lock"
            elif isinstance(child.value, ast.Call) and isinstance(child.value.func, ast.Name):
                info.attr_types[target.attr] = child.value.func.id
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
    return info


def _collect_module(path: Path, top: Path, root: Path | None) -> _ModuleInfo | None:
    display = str(path)
    if root is not None:
        try:
            display = path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            display = str(path)
    pkg_rel = path.resolve().relative_to(top.resolve()).as_posix()
    source = path.read_text()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None  # lint.py already reports RL000 for unparsable files
    module = _ModuleInfo(
        path=path, display=display, pkg_rel=pkg_rel, tree=tree,
        lines=source.splitlines(), mod_name=pkg_rel[:-3].replace("/", "."),
    )
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            factory = _lock_factory_of(stmt.value)
            if factory is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.module_locks[target.id] = factory
        elif isinstance(stmt, ast.ClassDef):
            module.classes.append(_collect_class(module, stmt))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = stmt
    return module


# --------------------------------------------------------------------- #
# per-function facts
# --------------------------------------------------------------------- #

#: (module, class_name or None, func_name) — the global function key
_FuncKey = tuple


@dataclass
class _FuncFacts:
    key: _FuncKey
    module: _ModuleInfo
    cls: _ClassInfo | None
    node: ast.FunctionDef
    # (attr, lineno, held, is_write) for every self.<attr> access
    accesses: list = field(default_factory=list)
    # (lock_id, lineno, held_at_acquire)
    acquires: list = field(default_factory=list)
    # (callee_key | None, lineno, held, call_repr)
    calls: list = field(default_factory=list)
    # (primitive, lineno, held)
    blocking: list = field(default_factory=list)
    # (lineno, receiver_repr) for un-timed Condition.wait outside a while
    bad_waits: list = field(default_factory=list)
    entry_guard: frozenset = frozenset()
    init_only: bool = False
    may_acquire: set = field(default_factory=set)
    may_block: set = field(default_factory=set)


class _Program:
    """Whole-program indexes shared by the rule passes."""

    def __init__(self, modules: list[_ModuleInfo]):
        self.modules = modules
        self.classes: list[_ClassInfo] = [c for m in modules for c in m.classes]
        self.facts: dict[_FuncKey, _FuncFacts] = {}
        # unique method-name -> owning class (None once ambiguous)
        self._method_owner: dict[str, _ClassInfo | None] = {}
        for cls in self.classes:
            for name in cls.methods:
                if name in self._method_owner:
                    self._method_owner[name] = None
                else:
                    self._method_owner[name] = cls
        # unique lock-attr name -> (class, canonical) for foreign receivers
        self._lock_owner: dict[str, tuple | None] = {}
        for cls in self.classes:
            for attr, canonical in cls.lock_attrs.items():
                if attr in self._lock_owner:
                    self._lock_owner[attr] = None
                else:
                    self._lock_owner[attr] = (cls, canonical)
        self._class_by_name: dict[str, _ClassInfo | None] = {}
        for cls in self.classes:
            if cls.name in self._class_by_name:
                self._class_by_name[cls.name] = None
            else:
                self._class_by_name[cls.name] = cls

    def unique_method_owner(self, name: str) -> _ClassInfo | None:
        return self._method_owner.get(name)

    def unique_lock_owner(self, attr: str):
        return self._lock_owner.get(attr)

    def class_named(self, name: str) -> _ClassInfo | None:
        return self._class_by_name.get(name)

    def lock_kind(self, lock_id: str) -> str:
        cls_name, _, attr = lock_id.rpartition(".")
        cls = self.class_named(cls_name)
        if cls is not None:
            return cls.lock_kinds.get(attr, "Lock")
        for module in self.modules:
            if module.mod_name == cls_name:
                return module.module_locks.get(attr, "Lock")
        return "Lock"


def _lock_id_of(expr: ast.expr, cls: _ClassInfo | None, module: _ModuleInfo,
                program: _Program) -> str | None:
    """Canonical lock id of a ``with``-item context expression, if any."""
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" and cls is not None:
            if expr.attr in cls.lock_attrs:
                return cls.lock_id(expr.attr)
            return None
        owner = program.unique_lock_owner(expr.attr)
        if owner is not None:
            owner_cls, canonical = owner
            return f"{owner_cls.name}.{canonical}"
        if _lockish_name(expr.attr):
            return f"?.{expr.attr}"  # opaque: counts as held, weak graph node
        return None
    if isinstance(expr, ast.Name) and expr.id in module.module_locks:
        return f"{module.mod_name}.{expr.id}"
    return None


def _resolve_call(call: ast.Call, cls: _ClassInfo | None, module: _ModuleInfo,
                  program: _Program) -> _FuncKey | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in module.functions:
            return (module.mod_name, None, func.id)
        target = program.class_named(func.id)
        if target is not None and "__init__" in target.methods:
            return (target.module.mod_name, target.name, "__init__")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    recv = func.value
    if isinstance(recv, ast.Name) and recv.id == "self" and cls is not None:
        if func.attr in cls.methods:
            return (module.mod_name, cls.name, func.attr)
        return None
    if (
        isinstance(recv, ast.Attribute)
        and isinstance(recv.value, ast.Name)
        and recv.value.id == "self"
        and cls is not None
    ):
        type_name = cls.attr_types.get(recv.attr)
        target = program.class_named(type_name) if type_name else None
        if target is not None and func.attr in target.methods:
            return (target.module.mod_name, target.name, func.attr)
    owner = program.unique_method_owner(func.attr)
    if owner is not None and func.attr in owner.methods:
        return (owner.module.mod_name, owner.name, func.attr)
    return None


def _is_untimed(call: ast.Call) -> bool:
    return not call.args and not call.keywords


def _blocking_primitive(call: ast.Call) -> str | None:
    dotted = _dotted(call.func)
    tail = dotted.split(".")[-1]
    if tail in _BLOCKING_TAILS:
        return tail
    if tail == "join" and isinstance(call.func, ast.Attribute) and _is_untimed(call):
        return "join"  # un-timed Thread/Process.join; str.join takes an argument
    if tail == "get" and _is_untimed(call) and "queue" in dotted.lower():
        return "Queue.get"
    return None


def _walk_function(facts: _FuncFacts, func_node: ast.FunctionDef,
                   cls: _ClassInfo | None, module: _ModuleInfo,
                   program: _Program, cond_attrs: set) -> None:
    def record_access(attr: str, lineno: int, held: frozenset, is_write: bool):
        if cls is not None and attr not in cls.lock_attrs:
            facts.accesses.append((attr, lineno, held, is_write))

    def handle_call(call: ast.Call, held: frozenset, in_while: bool):
        func = call.func
        # Condition.wait discipline
        if isinstance(func, ast.Attribute) and func.attr == "wait":
            recv = func.value
            is_cond = False
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
                and cls is not None
                and recv.attr in cond_attrs
            ):
                is_cond = True
            elif isinstance(recv, ast.Name) and "cond" in recv.id.lower():
                is_cond = True
            if is_cond and _is_untimed(call) and not in_while:
                facts.bad_waits.append((call.lineno, _dotted(recv)))
        primitive = _blocking_primitive(call)
        if primitive is not None:
            facts.blocking.append((primitive, call.lineno, held))
        callee = _resolve_call(call, cls, module, program)
        facts.calls.append((callee, call.lineno, held, _dotted(call.func)))
        # mutating method on self.<attr> counts as a write
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            record_access(func.value.attr, call.lineno, held, True)

    def visit(node: ast.AST, held: frozenset, in_while: bool):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                visit(child, frozenset(), False)
            return
        if isinstance(node, ast.Lambda):
            visit(node.body, frozenset(), False)
            return
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                lock_id = _lock_id_of(item.context_expr, cls, module, program)
                if lock_id is not None:
                    facts.acquires.append((lock_id, node.lineno, inner))
                    inner = inner | {lock_id}
                else:
                    visit(item.context_expr, held, in_while)
                if item.optional_vars is not None:
                    visit(item.optional_vars, inner, in_while)
            for child in node.body:
                visit(child, inner, in_while)
            return
        if isinstance(node, ast.While):
            visit(node.test, held, in_while)
            for child in node.body + node.orelse:
                visit(child, held, True)
            return
        if isinstance(node, ast.Call):
            handle_call(node, held, in_while)
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                record_access(node.attr, node.lineno, held, False)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    record_access(base.attr, node.lineno, held, True)
        for child in ast.iter_child_nodes(node):
            visit(child, held, in_while)

    for stmt in func_node.body:
        visit(stmt, frozenset(), False)


def _build_program(paths: Sequence, root) -> _Program:
    modules = []
    for path, top in _iter_py_files(paths):
        module = _collect_module(path, top, root)
        if module is not None:
            modules.append(module)
    program = _Program(modules)
    for module in modules:
        for name, node in module.functions.items():
            key = (module.mod_name, None, name)
            program.facts[key] = _FuncFacts(key=key, module=module, cls=None, node=node)
            _walk_function(program.facts[key], node, None, module, program, set())
        for cls in module.classes:
            cond_attrs = {a for a, kind in cls.lock_kinds.items() if kind == "Condition"}
            cond_attrs |= {a for a, c in cls.lock_attrs.items() if a != c}
            for name, node in cls.methods.items():
                key = (module.mod_name, cls.name, name)
                program.facts[key] = _FuncFacts(key=key, module=module, cls=cls, node=node)
                _walk_function(program.facts[key], node, cls, module, program, cond_attrs)
    return program


# --------------------------------------------------------------------- #
# inter-procedural inference
# --------------------------------------------------------------------- #


def _infer_guards(program: _Program) -> None:
    """Entry guards + init-only reachability, per class, to fixpoint."""
    for cls in program.classes:
        keys = {name: (cls.module.mod_name, cls.name, name) for name in cls.methods}
        # call sites within the class: method -> [(caller, held_at_site)]
        sites: dict[str, list] = {name: [] for name in cls.methods}
        for name in cls.methods:
            facts = program.facts[keys[name]]
            for callee, _lineno, held, _repr in facts.calls:
                if callee is not None and callee[:2] == (cls.module.mod_name, cls.name):
                    sites[callee[2]].append((name, held))
        # entry guards: private methods whose every in-class call site
        # holds a common lock inherit it
        for _ in range(len(cls.methods) + 1):
            changed = False
            for name in cls.methods:
                facts = program.facts[keys[name]]
                if not name.startswith("_") or name.startswith("__") or not sites[name]:
                    continue
                guards = [
                    held | program.facts[keys[caller]].entry_guard
                    for caller, held in sites[name]
                ]
                merged = frozenset.intersection(*[frozenset(g) for g in guards])
                if guards and all(g for g in guards) and merged != facts.entry_guard:
                    facts.entry_guard = merged
                    changed = True
            if not changed:
                break
        # init-only: __init__ plus private methods called only from
        # init-only methods
        init_only = {"__init__"}
        for _ in range(len(cls.methods) + 1):
            grew = False
            for name in cls.methods:
                if name in init_only or not name.startswith("_") or name.startswith("__"):
                    continue
                if sites[name] and all(c in init_only for c, _ in sites[name]):
                    init_only.add(name)
                    grew = True
            if not grew:
                break
        for name in cls.methods:
            program.facts[keys[name]].init_only = name in init_only


def _infer_summaries(program: _Program) -> None:
    """may_acquire / may_block closure over the resolved call graph."""
    for facts in program.facts.values():
        facts.may_acquire = {lock for lock, _, _ in facts.acquires}
        facts.may_block = {prim for prim, _, _ in facts.blocking}
    for _ in range(24):  # bounded fixpoint; call-graph depth is shallow
        changed = False
        for facts in program.facts.values():
            for callee, _lineno, _held, _repr in facts.calls:
                summary = program.facts.get(callee) if callee else None
                if summary is None:
                    continue
                if not summary.may_acquire <= facts.may_acquire:
                    facts.may_acquire |= summary.may_acquire
                    changed = True
                if not summary.may_block <= facts.may_block:
                    facts.may_block |= summary.may_block
                    changed = True
        if not changed:
            break


# --------------------------------------------------------------------- #
# rule passes
# --------------------------------------------------------------------- #


def _cc001(program: _Program) -> list[tuple[_ModuleInfo, int, str, str]]:
    out = []
    for cls in program.classes:
        threaded = cls.starts_threads or cls.module.in_any(WORKER_PATH_PREFIXES)
        if not threaded or not cls.lock_attrs:
            continue
        per_attr: dict[str, dict] = {}
        for name in cls.methods:
            facts = program.facts[(cls.module.mod_name, cls.name, name)]
            if facts.init_only:
                continue
            for attr, lineno, held, is_write in facts.accesses:
                effective = held | facts.entry_guard
                bucket = per_attr.setdefault(
                    attr, {"guarded": [], "unguarded": [], "writes": 0, "locks": set()}
                )
                bucket["guarded" if effective else "unguarded"].append(lineno)
                bucket["locks"] |= effective
                if is_write:
                    bucket["writes"] += 1
        for attr, bucket in sorted(per_attr.items()):
            if bucket["writes"] and bucket["guarded"] and bucket["unguarded"]:
                lines = sorted(set(bucket["unguarded"]))
                # message stays line-free so the fingerprint (rule, anchor,
                # message) survives unrelated edits; `location` has the line
                out.append((
                    cls.module,
                    lines[0],
                    "CC001",
                    f"{cls.name}.{attr}: mutable attribute accessed under "
                    f"{sorted(bucket['locks'])} but also without it "
                    f"({len(lines)} unguarded site"
                    f"{'s' if len(lines) > 1 else ''})",
                ))
    return out


def _cc002(program: _Program) -> list[tuple[_ModuleInfo, int, str, str]]:
    # edge (a, b) -> witness (module, line, description)
    edges: dict[tuple, tuple] = {}

    def add_edge(a: str, b: str, module: _ModuleInfo, lineno: int, what: str):
        if a == b:
            return  # RLock reentrancy / imprecise resolution
        edges.setdefault((a, b), (module, lineno, what))

    for facts in program.facts.values():
        guard = facts.entry_guard
        for lock, lineno, held in facts.acquires:
            for prior in held | guard:
                add_edge(prior, lock, facts.module, lineno, f"acquires {lock}")
        for callee, lineno, held, call_repr in facts.calls:
            summary = program.facts.get(callee) if callee else None
            if summary is None:
                continue
            for prior in held | guard:
                for lock in summary.may_acquire:
                    add_edge(prior, lock, facts.module, lineno,
                             f"calls {call_repr}() which may acquire {lock}")

    graph: dict[str, set] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    # Tarjan SCC
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set = set()
    stack: list = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str):
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    out = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        members = sorted(scc)
        # recover one concrete cycle through the SCC for the message
        cycle = _find_cycle(graph, set(members))
        witness_parts = []
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            module, lineno, _what = edges[(a, b)]
            # no line numbers in the message: keeps fingerprints stable
            witness_parts.append(f"{a} -> {b} ({module.display})")
        first = edges[(cycle[0], cycle[1] if len(cycle) > 1 else cycle[0])]
        out.append((
            first[0], first[1], "CC002",
            f"lock-order cycle: {'; '.join(witness_parts)}",
        ))
    return out


def _find_cycle(graph: dict, members: set) -> list[str]:
    start = sorted(members)[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = next(n for n in sorted(graph[node]) if n in members)
        if nxt == start:
            return path
        if nxt in seen:
            return path[path.index(nxt):]
        path.append(nxt)
        seen.add(nxt)
        node = nxt


def _cc003(program: _Program) -> list[tuple[_ModuleInfo, int, str, str]]:
    out = []
    for facts in program.facts.values():
        where = (
            f"{facts.cls.name}.{facts.node.name}" if facts.cls is not None
            else facts.node.name
        )
        for primitive, lineno, held in facts.blocking:
            if held:
                out.append((
                    facts.module, lineno, "CC003",
                    f"{where}: blocking {primitive}() while holding "
                    f"{sorted(held)}",
                ))
        for callee, lineno, held, call_repr in facts.calls:
            if not held:
                continue
            summary = program.facts.get(callee) if callee else None
            if summary is None or not summary.may_block:
                continue
            out.append((
                facts.module, lineno, "CC003",
                f"{where}: call {call_repr}() may block "
                f"({', '.join(sorted(summary.may_block))}) while holding "
                f"{sorted(held)}",
            ))
    return out


def _cc004(program: _Program) -> list[tuple[_ModuleInfo, int, str, str]]:
    out = []
    for facts in program.facts.values():
        where = (
            f"{facts.cls.name}.{facts.node.name}" if facts.cls is not None
            else facts.node.name
        )
        for lineno, recv in facts.bad_waits:
            out.append((
                facts.module, lineno, "CC004",
                f"{where}: un-timed {recv}.wait() outside a predicate while "
                f"loop misses spurious wakeups",
            ))
    return out


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #


def analyze_concurrency(
    paths: Sequence[str | Path],
    *,
    root: str | Path | None = None,
    rules: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the CC rules over every ``.py`` file under ``paths``.

    ``rules`` restricts by rule-id prefix, same contract as
    :func:`repro.analyze.lint.lint_paths`.
    """
    wants = lambda rule_id: rules is None or any(rule_id.startswith(p) for p in rules)
    if not any(wants(rid) for rid in CONCURRENCY_RULES):
        return []
    program = _build_program(paths, root)
    _infer_guards(program)
    _infer_summaries(program)

    raw: list[tuple[_ModuleInfo, int, str, str]] = []
    if wants("CC001"):
        raw.extend(_cc001(program))
    if wants("CC002"):
        raw.extend(_cc002(program))
    if wants("CC003"):
        raw.extend(_cc003(program))
    if wants("CC004"):
        raw.extend(_cc004(program))

    allows_cache: dict[str, dict[int, set[str]]] = {}
    findings: list[Finding] = []
    for module, lineno, rule_id, message in raw:
        allows = allows_cache.setdefault(module.display, module.allows())
        allowed = allows.get(lineno, set()) | allows.get(lineno - 1, set())
        if rule_id in allowed or "*" in allowed:
            continue
        spec = CONCURRENCY_RULES[rule_id]
        findings.append(
            Finding(
                rule_id=rule_id,
                severity=spec["severity"],
                location=f"{module.display}:{lineno}",
                anchor=module.display,
                message=message,
                fix_hint=spec["fix_hint"],
            )
        )
    findings.sort(key=lambda f: (f.location, f.rule_id))
    return findings
