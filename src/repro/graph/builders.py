"""Pre-defined graph constructions.

DCRNN and PVCGN consume graphs built from domain knowledge: geographic
distance (thresholded Gaussian kernel), physical line topology, and
feature-correlation / OD-similarity graphs.  The synthetic datasets expose
node coordinates and line structure, so all three are reconstructible.
"""

from __future__ import annotations

import numpy as np
import networkx as nx


def distance_graph(coordinates: np.ndarray, sigma: float | None = None, threshold: float = 0.1) -> np.ndarray:
    """Thresholded Gaussian-kernel distance graph (DCRNN's construction).

    ``A_ij = exp(-d_ij^2 / sigma^2)`` zeroed below ``threshold``; ``sigma``
    defaults to the standard deviation of pairwise distances.
    """
    delta = coordinates[:, None, :] - coordinates[None, :, :]
    distances = np.sqrt((delta ** 2).sum(axis=-1))
    if sigma is None:
        off_diag = distances[~np.eye(len(coordinates), dtype=bool)]
        sigma = float(off_diag.std()) or 1.0
    adjacency = np.exp(-((distances / sigma) ** 2))
    adjacency[adjacency < threshold] = 0.0
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def knn_graph(coordinates: np.ndarray, k: int) -> np.ndarray:
    """Binary k-nearest-neighbour graph, symmetrized by max."""
    delta = coordinates[:, None, :] - coordinates[None, :, :]
    distances = np.sqrt((delta ** 2).sum(axis=-1))
    np.fill_diagonal(distances, np.inf)
    n = len(coordinates)
    adjacency = np.zeros((n, n))
    neighbours = np.argsort(distances, axis=1)[:, :k]
    rows = np.repeat(np.arange(n), k)
    adjacency[rows, neighbours.reshape(-1)] = 1.0
    return np.maximum(adjacency, adjacency.T)


def correlation_graph(series: np.ndarray, threshold: float = 0.3) -> np.ndarray:
    """Pearson-correlation similarity graph from node histories.

    ``series`` has shape (time, nodes); edges keep |corr| above threshold.
    PVCGN uses such a "similarity" virtual graph.
    """
    corr = np.corrcoef(series.T)
    corr = np.nan_to_num(corr, nan=0.0)
    adjacency = np.abs(corr)
    adjacency[adjacency < threshold] = 0.0
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def line_graph(edges: list[tuple[int, int]], num_nodes: int) -> np.ndarray:
    """Physical topology graph from a station-connection edge list."""
    adjacency = np.zeros((num_nodes, num_nodes))
    for u, v in edges:
        adjacency[u, v] = 1.0
        adjacency[v, u] = 1.0
    return adjacency


def ring_line_edges(num_nodes: int, num_lines: int = 1, rng: np.random.Generator | None = None) -> list[tuple[int, int]]:
    """Synthesize metro-like line topology: chains over shuffled stations.

    Used by the data generator to give pre-defined-graph baselines a
    "physical" graph comparable to a real metro map.
    """
    rng = rng or np.random.default_rng(0)
    nodes = np.arange(num_nodes)
    edges: list[tuple[int, int]] = []
    splits = np.array_split(rng.permutation(nodes), num_lines)
    for line in splits:
        edges.extend((int(a), int(b)) for a, b in zip(line[:-1], line[1:]))
    # Connect consecutive lines so the graph is a single component.
    for first, second in zip(splits[:-1], splits[1:]):
        if len(first) and len(second):
            edges.append((int(first[-1]), int(second[0])))
    return edges


def graph_diameter(adjacency: np.ndarray) -> int:
    """Diameter of the binarized graph (sanity metric for builders)."""
    graph = nx.from_numpy_array((adjacency > 0).astype(int))
    if not nx.is_connected(graph):
        return -1
    return nx.diameter(graph)
