"""Named dataset configurations mirroring Table III.

Each entry reproduces a row of the paper's dataset table — interval,
steps-per-day calendar, series length, partitioning, and P/Q — on top of
the synthetic generator (see DESIGN.md for the substitution rationale).
``size="small"`` (default) scales node counts and calendar down to what a
single CPU trains in seconds; ``size="paper"`` matches Table III exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .loader import DataLoader
from .scalers import StandardScaler
from .synthetic import (
    ElectricityGenerator,
    SpatioTemporalGenerator,
    SyntheticConfig,
    SyntheticDataset,
)
from .windows import WindowSet, make_windows, split_series_by_steps


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table III row."""

    name: str
    generator_cls: type
    interval_minutes: int
    steps_per_day: int
    days_small: int
    days_paper: int
    nodes_small: int
    nodes_paper: int
    history: int
    horizon: int
    # (train_days, val_days) — remainder is test; fractions if < 1.
    split: tuple[float, float]
    base_flow: float
    feature_dim: int
    # Per-node multiplicative noise; higher values make single-node
    # histories less self-sufficient, so pooling correlated neighbours
    # (what graph models do) pays off — mirroring the sparser, noisier
    # demand data where the paper's graph methods shine.
    noise_scale: float = 0.15


SPECS: dict[str, DatasetSpec] = {
    # HZMetro: 80 stations, 15-min, 1825 steps (73 x 25 days); the paper
    # re-splits into Jan 1-19 train / Jan 20-21 val / Jan 22-25 test.
    "hzmetro": DatasetSpec(
        "hzmetro", SpatioTemporalGenerator, 15, 73, 25, 25, 20, 80, 4, 4,
        (19, 2), 100.0, 2, noise_scale=0.15,
    ),
    # SHMetro: 288 stations, 15-min, 92 days, 62d/9d/20d split.
    "shmetro": DatasetSpec(
        "shmetro", SpatioTemporalGenerator, 15, 73, 31, 92, 36, 288, 4, 4,
        (62 / 91, 9 / 91), 150.0, 2, noise_scale=0.15,
    ),
    # NYC-Bike: 250 docks, 30-min, Apr-Jun 2016 (91 days), 7/1.5/1.5 ratio.
    "nyc_bike": DatasetSpec(
        "nyc_bike", SpatioTemporalGenerator, 30, 48, 28, 91, 32, 250, 12, 12,
        (0.7, 0.15), 8.0, 2, noise_scale=0.45,
    ),
    # NYC-Taxi: 266 virtual stations, 30-min, same calendar and split.
    "nyc_taxi": DatasetSpec(
        "nyc_taxi", SpatioTemporalGenerator, 30, 48, 28, 91, 36, 266, 12, 12,
        (0.7, 0.15), 40.0, 2, noise_scale=0.40,
    ),
    # Electricity: 321 clients, hourly, 26304 steps (1096 days), 7/1/2.
    "electricity": DatasetSpec(
        "electricity", ElectricityGenerator, 60, 24, 90, 1096, 24, 321, 12, 12,
        (0.7, 0.1), 50.0, 1, noise_scale=0.20,
    ),
}


@dataclass
class ForecastingTask:
    """Everything a model/trainer needs for one dataset.

    Window tensors are standardized with a scaler fitted on the training
    portion only; metrics must be computed after ``inverse_targets``.
    """

    name: str
    spec: DatasetSpec
    train: WindowSet
    val: WindowSet
    test: WindowSet
    scaler: StandardScaler
    dataset: SyntheticDataset
    steps_per_day: int
    num_nodes: int
    history: int
    horizon: int

    @property
    def in_dim(self) -> int:
        return self.train.inputs.shape[-1]

    @property
    def out_dim(self) -> int:
        return self.train.targets.shape[-1]

    def loader(self, split: str, batch_size: int, shuffle: bool | None = None, seed: int = 0) -> DataLoader:
        windows = {"train": self.train, "val": self.val, "test": self.test}[split]
        if shuffle is None:
            shuffle = split == "train"
        return DataLoader(windows, batch_size, shuffle=shuffle, seed=seed)

    def inverse_targets(self, scaled: np.ndarray) -> np.ndarray:
        """Undo scaling on (..., out_dim) predictions/targets."""
        mean = self.scaler.mean[: scaled.shape[-1]]
        std = self.scaler.std[: scaled.shape[-1]]
        return scaled * std + mean

    def node_subset(self, nodes) -> "ForecastingTask":
        """The same task restricted to a subset of nodes (fleet sharding).

        Window tensors are sliced on the node axis; the scaler is shared
        unchanged (statistics pool over nodes, so per-feature mean/std
        are identical for every subset), as are the calendar and the
        underlying dataset.  Used by :mod:`repro.serve.fleet` to build
        one sub-task per shard of a node partition.
        """
        nodes = np.asarray(list(nodes), dtype=np.int64)
        if nodes.size == 0:
            raise ValueError("node subset must be non-empty")
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ValueError(
                f"node indices must be in [0, {self.num_nodes}), got "
                f"[{nodes.min()}, {nodes.max()}]"
            )
        if len(np.unique(nodes)) != len(nodes):
            raise ValueError("node subset contains duplicates")

        def slice_windows(windows: WindowSet) -> WindowSet:
            return WindowSet(
                inputs=windows.inputs[:, :, nodes, :],
                targets=windows.targets[:, :, nodes, :],
                time_indices=windows.time_indices,
            )

        return ForecastingTask(
            name=f"{self.name}[{len(nodes)} nodes]",
            spec=self.spec,
            train=slice_windows(self.train),
            val=slice_windows(self.val),
            test=slice_windows(self.test),
            scaler=self.scaler,
            dataset=self.dataset,
            steps_per_day=self.steps_per_day,
            num_nodes=int(len(nodes)),
            history=self.history,
            horizon=self.horizon,
        )


def load_task(
    name: str,
    size: str = "small",
    seed: int = 0,
    history: int | None = None,
    horizon: int | None = None,
    num_nodes: int | None = None,
    num_days: int | None = None,
) -> ForecastingTask:
    """Build a :class:`ForecastingTask` for a Table III dataset.

    Overrides (``num_nodes``, ``num_days``, ``history``, ``horizon``)
    support the parameter-sensitivity and quick-test configurations.
    """
    try:
        spec = SPECS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(SPECS)}") from None
    if size not in ("small", "paper"):
        raise ValueError(f"size must be 'small' or 'paper', got {size!r}")
    nodes = num_nodes or (spec.nodes_small if size == "small" else spec.nodes_paper)
    days = num_days or (spec.days_small if size == "small" else spec.days_paper)
    history = history or spec.history
    horizon = horizon or spec.horizon

    config = SyntheticConfig(
        num_nodes=nodes,
        steps_per_day=spec.steps_per_day,
        num_days=days,
        base_flow=spec.base_flow,
        noise_scale=spec.noise_scale,
        seed=seed,
    )
    dataset = spec.generator_cls(config).generate()

    train_frac, val_frac = _split_fractions(spec, days)
    first = int(round(dataset.num_steps * train_frac))
    second = int(round(dataset.num_steps * (train_frac + val_frac)))
    segments = split_series_by_steps(dataset.values, dataset.time_index, (first, second))

    scaler = StandardScaler().fit(segments[0][0])
    windows = []
    for values, times in segments:
        scaled = scaler.transform(values)
        windows.append(
            make_windows(scaled, times, history, horizon, target_dim=spec.feature_dim)
        )
    train, val, test = windows
    return ForecastingTask(
        name=name,
        spec=spec,
        train=train,
        val=val,
        test=test,
        scaler=scaler,
        dataset=dataset,
        steps_per_day=spec.steps_per_day,
        num_nodes=nodes,
        history=history,
        horizon=horizon,
    )


def _split_fractions(spec: DatasetSpec, days: int) -> tuple[float, float]:
    """Resolve the spec's split into fractions of the calendar."""
    train_part, val_part = spec.split
    if train_part > 1:  # day counts (HZMetro's exact re-split); scale
        # proportionally when the calendar was shrunk for CPU budgets.
        return train_part / spec.days_paper, val_part / spec.days_paper
    return float(train_part), float(val_part)
