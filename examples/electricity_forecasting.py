"""Electricity consumption forecasting (Table VI's scenario).

Run:  python examples/electricity_forecasting.py

Hourly consumption with latent-factor spatial correlation: clients in
the same functional area share demand shocks, so graph-based models can
exploit neighbours' recent usage.  Compares TGCRN with AGCRN and
Crossformer-lite on MSE/MAE (the Table VI metrics), and shows how to
swap the time encoder (Time2Vec) through the ablation machinery.
"""

import numpy as np

from repro import load_task
from repro.training import TrainingConfig, run_experiment


def main():
    # Hourly data: 24 slots/day, P = Q = 12 hours.
    task = load_task("electricity", num_nodes=10, num_days=24, seed=0)
    print(f"{task.name}: {task.num_nodes} clients, "
          f"{len(task.train)}/{len(task.val)}/{len(task.test)} windows")

    config = TrainingConfig(epochs=6, batch_size=16)
    rows = []
    for name in ("agcrn", "crossformer", "tgcrn"):
        kwargs = (
            dict(model_kwargs=dict(node_dim=8, time_dim=8, num_layers=1))
            if name == "tgcrn" else {}
        )
        result = run_experiment(name, task, config, hidden_dim=16, num_layers=1, **kwargs)
        rows.append((name, result.overall))

    # Ablation-style swap: TGCRN with Time2Vec instead of the learned
    # discrete embedding (a Table VII row, usable on any dataset).
    t2v = run_experiment(
        "time2vec", task, config, hidden_dim=16,
        model_kwargs=dict(node_dim=8, time_dim=8, num_layers=1),
    )
    rows.append(("tgcrn+t2v", t2v.overall))

    print(f"\n{'model':<12} {'MSE':>10} {'MAE':>8}")
    for name, overall in rows:
        print(f"{name:<12} {overall.mse:10.3f} {overall.mae:8.3f}")
    print("\n(Table VI reports MSE/MAE; lower is better.)")


if __name__ == "__main__":
    main()
