"""Evaluation metrics used across all experiment tables."""

from .errors import MetricReport, evaluate, horizon_report, mae, mape, mse, node_report, pcc, rmse

__all__ = ["MetricReport", "evaluate", "horizon_report", "mae", "mape", "mse", "node_report", "pcc", "rmse"]
