"""Ablation walkthrough: reproduce Table VII's analysis on one dataset.

Run:  python examples/ablation_walkthrough.py

Trains the full TGCRN plus three key Table VII variants and explains
what each switch removes, then demonstrates the two model extensions —
lazy graph updates and top-k sparsification — with their cost/accuracy
trade-off.
"""

import time

import numpy as np

from repro import load_task, run_experiment
from repro.core import VARIANTS
from repro.training import TrainingConfig


def main():
    task = load_task("hzmetro", num_nodes=10, num_days=10, seed=0)
    config = TrainingConfig(epochs=8, batch_size=16)
    base_kwargs = dict(node_dim=8, time_dim=8, num_layers=1)

    print("Table VII variants (what each removes):")
    for name in ("tgcrn", "wo_tagsl", "wo_pdf", "time2vec"):
        spec = VARIANTS[name]
        result = run_experiment(name, task, config, hidden_dim=16, model_kwargs=base_kwargs)
        print(f"  {name:<10} MAE {result.overall.mae:6.2f}  — {spec.description}")

    print("\nExtensions (DESIGN.md §6):")
    for label, extra in (
        ("dense, every-step graphs (paper)", {}),
        ("graph_update_interval=2 (paper's future work)", {"graph_update_interval": 2}),
        ("top_k=5 sparsified graph", {"top_k": 5}),
    ):
        start = time.perf_counter()
        result = run_experiment(
            "tgcrn", task, config, hidden_dim=16, model_kwargs={**base_kwargs, **extra}
        )
        elapsed = time.perf_counter() - start
        print(f"  {label:<46} MAE {result.overall.mae:6.2f}  "
              f"({result.seconds_per_epoch:.2f}s/epoch, total {elapsed:.0f}s)")


if __name__ == "__main__":
    main()
