"""Structured run logging: per-epoch JSONL records + a console line.

:class:`RunLogger` replaces the trainer's bare ``print``: every epoch
becomes one machine-readable record (event ``"epoch"``) in a JSONL file,
while the human-readable console line of the old ``verbose`` mode is kept
for backwards compatibility.  A run starts with an ``"start"`` record
(metadata) and ends with an ``"end"`` record (best epoch, totals).

:class:`Console` is the chatter valve for the CLI: a print-compatible
writer that a ``--quiet`` flag can silence wholesale.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from .spans import current_span


class Console:
    """``print``-compatible writer that can be muted (``--quiet``)."""

    def __init__(self, enabled: bool = True, stream=None):
        self.enabled = enabled
        self._stream = stream

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stdout

    def print(self, *args, **kwargs) -> None:
        if self.enabled:
            kwargs.setdefault("file", self.stream)
            print(*args, **kwargs)


class RunLogger:
    """Write structured run records to JSONL and/or the console.

    When a causal span is active (:mod:`repro.obs.spans`), every record
    automatically carries its ``trace_id``/``span_id`` — so an epoch
    record, a ``plan_invalidated`` event, and the span tree it happened
    inside all join on one id in post-processing.

    Parameters
    ----------
    path:
        JSONL destination; ``None`` disables file output (console-only,
        or a silent sink when ``console`` is also false).
    console:
        Echo a human-readable line per epoch/summary to ``stream``.
    metadata:
        Arbitrary JSON-ready fields recorded in the ``"start"`` record.
    mode:
        ``"w"`` starts a fresh file; ``"a"`` appends — used when a
        checkpointed run resumes so the log keeps the full run history
        across interruptions.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        console: bool = False,
        metadata: dict | None = None,
        stream=None,
        mode: str = "w",
    ):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path) if path is not None else None
        self.console = Console(enabled=console, stream=stream)
        self._fh = None
        self._epochs = 0
        self._started = time.monotonic()  # duration anchor, never wall clock
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open(mode)
        self.log("start", **(metadata or {}))

    # -- low-level ------------------------------------------------------ #

    def log(self, event: str, **fields) -> dict:
        """Append one ``{"event": ..., "ts": ..., **fields}`` record."""
        record = {"event": event, "ts": time.time(), **fields}  # analyze: allow[RL009] wall timestamp for correlation
        active = current_span()
        if active is not None:
            record.setdefault("trace_id", active.trace_id)
            record.setdefault("span_id", active.span_id)
        if self._fh is not None:
            self._fh.write(json.dumps(record, allow_nan=True, default=_jsonify) + "\n")
            self._fh.flush()
        return record

    # -- structured events ---------------------------------------------- #

    def log_epoch(self, epoch: int, **fields) -> dict:
        """Record one training epoch; echoes the classic verbose line."""
        self._epochs += 1
        record = self.log("epoch", epoch=epoch, **fields)
        self.console.print(self._epoch_line(epoch, fields))
        return record

    def log_summary(self, **fields) -> dict:
        """Record the end-of-run summary (best epoch, totals, ...)."""
        record = self.log("end", epochs=self._epochs,
                          seconds=time.monotonic() - self._started, **fields)
        if fields:
            parts = " ".join(f"{k} {_fmt(v)}" for k, v in fields.items())
            self.console.print(f"run end: {parts}")
        return record

    @staticmethod
    def _epoch_line(epoch: int, fields: dict) -> str:
        # Same prefix as the pre-obs ``cfg.verbose`` print, extras appended.
        parts = [f"epoch {epoch:3d}"]
        if "train_loss" in fields:
            parts.append(f"loss {fields['train_loss']:.4f}")
        if "val_mae" in fields:
            parts.append(f"val MAE {fields['val_mae']:.4f}")
        if "lr" in fields:
            parts.append(f"lr {fields['lr']:.2e}")
        if "grad_norm" in fields:
            parts.append(f"grad {fields['grad_norm']:.3f}")
        if "epoch_seconds" in fields:
            parts.append(f"({fields['epoch_seconds']:.2f}s)")
        return " ".join(parts)

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _jsonify(value):
    """Fallback serializer: numpy scalars/arrays -> python."""
    if hasattr(value, "item") and getattr(value, "size", 2) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
