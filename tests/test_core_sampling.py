"""Tests (incl. hypothesis properties) for Algorithm 1 time-distance sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sample_time_distances


def _windows(batch, length, start=100):
    base = np.arange(length)[None, :] + np.arange(batch)[:, None] * 1000 + start
    return base


class TestBasics:
    def test_output_shapes(self, rng):
        windows = _windows(6, 8)
        s = sample_time_distances(windows, rng)
        for arr in (s.anchor_values, s.adjacent_values, s.mid_values, s.distant_values):
            assert arr.shape == (6,)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            sample_time_distances(np.arange(5), rng)

    def test_rejects_short_windows(self, rng):
        with pytest.raises(ValueError):
            sample_time_distances(np.zeros((3, 1), dtype=int), rng)

    def test_deterministic_given_seed(self):
        windows = _windows(4, 8)
        a = sample_time_distances(windows, np.random.default_rng(5))
        b = sample_time_distances(windows, np.random.default_rng(5))
        np.testing.assert_array_equal(a.anchor_values, b.anchor_values)
        np.testing.assert_array_equal(a.distant_values, b.distant_values)

    def test_single_row_fallback(self, rng):
        windows = _windows(1, 8)
        s = sample_time_distances(windows, rng)
        assert s.distant_rows[0] == 0  # falls back to the same row


class TestEdgeCases:
    def test_minimal_two_step_window(self, rng):
        """T=2: the band is a single column, mid falls back to the farthest."""
        windows = _windows(3, 2)
        s = sample_time_distances(windows, rng)
        # the only non-anchor column is adjacent; mid must use the fallback
        assert (np.abs(s.adjacent_positions - s.anchor_positions) == 1).all()
        assert (s.mid_positions != s.anchor_positions).all()
        assert (s.mid_positions < 2).all() and (s.mid_positions >= 0).all()

    def test_single_row_distant_fallback_values(self, rng):
        """B=1: distant values must still come from the (only) row so the
        Eq. 3 loss stays defined."""
        windows = _windows(1, 8)
        for _ in range(10):
            s = sample_time_distances(windows, rng)
            assert s.distant_rows[0] == 0
            assert s.distant_values[0] in windows[0]

    def test_mid_range_auto_widens_past_adjacent(self):
        """γ_◇ ≤ γ_Δ would empty the mid band; it must widen to γ_Δ + 1."""
        windows = _windows(40, 10)
        s = sample_time_distances(
            windows, np.random.default_rng(0), adjacent_range=3, mid_range=2
        )
        mid_dist = np.abs(s.mid_positions - s.anchor_positions)
        max_possible = np.maximum(s.anchor_positions, 10 - 1 - s.anchor_positions)
        # widened band: strictly outside γ_Δ, at most γ_Δ + 1 away — except
        # for anchors whose only reachable column is the documented fallback
        assert ((mid_dist == 4) | (mid_dist == max_possible)).all()
        assert (np.abs(s.adjacent_positions - s.anchor_positions) <= 3).all()

    def test_fully_deterministic_under_fixed_generator(self):
        """Every output field is a pure function of (windows, seed)."""
        windows = _windows(6, 12)
        a = sample_time_distances(windows, np.random.default_rng(99))
        b = sample_time_distances(windows, np.random.default_rng(99))
        for name in (
            "anchor_values", "adjacent_values", "mid_values", "distant_values",
            "anchor_positions", "adjacent_positions", "mid_positions",
            "distant_positions", "distant_rows",
        ):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name))

    def test_different_seeds_differ(self):
        windows = _windows(8, 12)
        a = sample_time_distances(windows, np.random.default_rng(1))
        b = sample_time_distances(windows, np.random.default_rng(2))
        assert not np.array_equal(a.anchor_positions, b.anchor_positions)


@given(
    batch=st.integers(min_value=2, max_value=10),
    length=st.integers(min_value=3, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_algorithm1_invariants(batch, length, seed):
    """Paper constraints: adjacent within ±γ_Δ of anchor, mid outside the
    adjacent band, distant drawn from a different row."""
    windows = _windows(batch, length)
    rng = np.random.default_rng(seed)
    gamma = max(1, length // 2)
    s = sample_time_distances(windows, rng)
    rows = np.arange(batch)
    # values actually come from the right rows/cells
    np.testing.assert_array_equal(s.anchor_values, windows[rows, s.anchor_positions])
    np.testing.assert_array_equal(s.adjacent_values, windows[rows, s.adjacent_positions])
    np.testing.assert_array_equal(s.mid_values, windows[rows, s.mid_positions])
    np.testing.assert_array_equal(s.distant_values, windows[s.distant_rows, s.distant_positions])
    # adjacency band
    adj_dist = np.abs(s.adjacent_positions - s.anchor_positions)
    assert (adj_dist >= 1).all()
    assert (adj_dist <= min(gamma, length - 1)).all()
    # mid outside band, or at the farthest reachable column when no
    # outside column exists for that anchor (the documented fallback)
    mid_dist = np.abs(s.mid_positions - s.anchor_positions)
    max_possible = np.maximum(s.anchor_positions, length - 1 - s.anchor_positions)
    assert ((mid_dist > gamma) | (mid_dist == max_possible)).all()
    # distant from another row
    assert (s.distant_rows != rows).all()


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_custom_adjacent_range(seed):
    rng = np.random.default_rng(seed)
    windows = _windows(5, 12)
    s = sample_time_distances(windows, rng, adjacent_range=2)
    adj_dist = np.abs(s.adjacent_positions - s.anchor_positions)
    assert (adj_dist <= 2).all()
    mid_dist = np.abs(s.mid_positions - s.anchor_positions)
    assert (mid_dist > 2).all()


def test_distant_values_are_far_in_absolute_time(rng):
    """Rows are separated by 1000 steps, so |distant - anchor| >> P+Q."""
    windows = _windows(6, 8)
    s = sample_time_distances(windows, rng)
    assert (np.abs(s.distant_values - s.anchor_values) > 100).all()
