"""Hyper-parameter search (generalizing the paper's Fig. 9/10 sweeps)."""

from .search import SearchReport, TrialResult, grid_candidates, random_candidates, search

__all__ = ["SearchReport", "TrialResult", "grid_candidates", "random_candidates", "search"]
