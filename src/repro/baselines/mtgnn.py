"""MTGNN-lite (Wu et al., KDD 2020 — the paper's reference [28]).

"Connecting the dots": a *directed* self-learning graph built from two
node-embedding banks through the tanh-difference construction
``A = ReLU(tanh(α(M₁M₂ᵀ − M₂M₁ᵀ)))`` with top-k row pruning, combined
with mix-hop graph propagation and dilated temporal convolutions.  The
paper's Table II groups it with the self-learning methods; we include it
as an extra baseline beyond the published tables.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax
from ..nn import GatedTCNBlock, Linear, Module, ModuleList, Parameter, init


class MixHopPropagation(Module):
    """Mix-hop: h^{(k)} = β·x + (1-β)·Ã h^{(k-1)}, outputs concatenated."""

    def __init__(self, channels: int, depth: int = 2, beta: float = 0.05, *, rng: np.random.Generator):
        super().__init__()
        self.depth = depth
        self.beta = beta
        self.out_proj = Linear((depth + 1) * channels, channels, rng=rng)

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        """x: (B, T, N, C); adjacency: (N, N) row-normalized."""
        from ..autodiff import concat

        hops = [x]
        h = x
        for _ in range(self.depth):
            h = self.beta * x + (1.0 - self.beta) * (adjacency @ h)
            hops.append(h)
        return self.out_proj(concat(hops, axis=-1))


class MTGNN(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        channels: int = 32,
        num_blocks: int = 2,
        embed_dim: int = 10,
        top_k: int | None = None,
        alpha: float = 3.0,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.channels = channels
        self.top_k = top_k if top_k is not None else max(2, num_nodes // 2)
        self.alpha = alpha
        self.source_bank = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.3))
        self.target_bank = Parameter(init.normal((num_nodes, embed_dim), rng, std=0.3))
        self.input_proj = Linear(in_dim, channels, rng=rng)
        self.tcn_blocks = ModuleList(
            [GatedTCNBlock(channels, kernel_size=2, dilation=2 ** i, rng=rng) for i in range(num_blocks)]
        )
        self.mixhops = ModuleList(
            [MixHopPropagation(channels, depth=2, rng=rng) for _ in range(num_blocks)]
        )
        self.skip_proj = Linear(channels, channels, rng=rng)
        self.head = Linear(channels, horizon * out_dim, rng=rng)

    def learned_adjacency(self) -> Tensor:
        """Directed self-learning graph with top-k pruning, row-normalized."""
        m1, m2 = self.source_bank, self.target_bank
        asym = m1 @ m2.T - m2 @ m1.T
        raw = (self.alpha * asym).tanh().relu()
        if self.top_k < self.num_nodes:
            threshold = np.partition(raw.data, -self.top_k, axis=-1)[:, -self.top_k : -self.top_k + 1]
            mask = Tensor(np.where(raw.data >= threshold, 0.0, -1e9))
            return softmax(raw + mask, axis=-1)
        return softmax(raw, axis=-1)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, num_nodes, _ = x.shape
        adjacency = self.learned_adjacency()
        h = self.input_proj(x)  # (B, P, N, C)
        skip = None
        for tcn, mixhop in zip(self.tcn_blocks, self.mixhops):
            residual = h
            temporal = h.transpose(0, 2, 1, 3).reshape(batch * num_nodes, history, self.channels)
            temporal = tcn(temporal)
            h = temporal.reshape(batch, num_nodes, history, self.channels).transpose(0, 2, 1, 3)
            h = mixhop(h, adjacency) + residual
            contribution = self.skip_proj(h[:, -1])  # (B, N, C)
            skip = contribution if skip is None else skip + contribution
        flat = self.head(skip.relu())
        out = flat.reshape(batch, num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
