"""The retry-delay seam: Backoff schedules and the retry_call loop."""

import numpy as np
import pytest

from repro.resilience import Backoff, retry_call


class TestBackoff:
    def test_deterministic_exponential_schedule(self):
        backoff = Backoff(base=0.1, factor=2.0, max_delay=1.0, jitter=0.0)
        assert list(backoff.delays(5)) == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0])

    def test_jitter_stays_inside_the_equal_jitter_window(self):
        backoff = Backoff(base=1.0, factor=1.0, jitter=0.5,
                          rng=np.random.default_rng(0))
        draws = [backoff.delay(0) for _ in range(200)]
        assert all(0.5 <= d < 1.0 for d in draws)
        assert len(set(draws)) > 1  # actually randomized

    def test_wait_goes_through_the_injected_sleep(self):
        slept = []
        backoff = Backoff(base=0.25, jitter=0.0, sleep=slept.append)
        assert backoff.wait(0) == pytest.approx(0.25)
        assert slept == [0.25]
        zero = Backoff(base=0.0, jitter=0.0, sleep=slept.append)
        assert zero.wait(0) == 0.0
        assert slept == [0.25]  # zero delays never call sleep

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Backoff(base=-1.0)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)
        with pytest.raises(ValueError):
            Backoff(jitter=1.5)
        with pytest.raises(ValueError):
            Backoff().delay(-1)


class TestRetryCall:
    def _flaky(self, failures, exc=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc(f"boom {calls['n']}")
            return "done"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(2)
        slept = []
        backoff = Backoff(base=0.1, factor=2.0, jitter=0.0, sleep=slept.append)
        assert retry_call(fn, retries=3, backoff=backoff) == "done"
        assert calls["n"] == 3
        assert slept == [0.1, 0.2]

    def test_budget_exhausted_reraises_last_error(self):
        fn, calls = self._flaky(10)
        backoff = Backoff(base=0.0, jitter=0.0, sleep=lambda _s: None)
        with pytest.raises(OSError, match="boom 3"):
            retry_call(fn, retries=2, backoff=backoff)
        assert calls["n"] == 3

    def test_no_retry_types_win_over_retryable(self):
        fn, calls = self._flaky(5, exc=FileNotFoundError)
        with pytest.raises(FileNotFoundError):
            retry_call(fn, retries=5, retryable=(OSError,),
                       no_retry=(FileNotFoundError,),
                       backoff=Backoff(base=0.0, jitter=0.0, sleep=lambda _s: None))
        assert calls["n"] == 1

    def test_unlisted_exceptions_propagate_immediately(self):
        fn, calls = self._flaky(5, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(fn, retries=5,
                       backoff=Backoff(base=0.0, jitter=0.0, sleep=lambda _s: None))
        assert calls["n"] == 1

    def test_on_retry_observes_every_attempt(self):
        fn, _calls = self._flaky(2)
        seen = []
        backoff = Backoff(base=0.1, factor=2.0, jitter=0.0, sleep=lambda _s: None)
        retry_call(fn, retries=3, backoff=backoff,
                   on_retry=lambda attempt, exc, delay: seen.append(
                       (attempt, type(exc).__name__, delay)))
        assert seen == [(0, "OSError", pytest.approx(0.1)),
                        (1, "OSError", pytest.approx(0.2))]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_call(lambda: None, retries=-1)
