"""Weight initializers (numpy Generators keep everything reproducible).

Every initializer returns ``DEFAULT_DTYPE`` (float64) explicitly rather
than relying on numpy's sampling defaults, so parameter precision is a
stated contract — the ``SH005`` rule in :mod:`repro.analyze.shapes`
flags any model whose parameters drift from it.
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff.tensor import DEFAULT_DTYPE


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a), a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE, copy=False)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE, copy=False)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE, copy=False)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE, copy=False)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE, copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out following the PyTorch convention."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
