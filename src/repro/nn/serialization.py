"""Checkpoint save/load for modules and full training state.

State dicts serialize to ``.npz`` (no pickle of code objects — safe to
share).  Optimizer state captures Adam's moments so training resumes
exactly.  Every checkpoint embeds a :func:`state_hash` digest that is
re-verified on load, so a corrupted or hand-edited file fails loudly
(:class:`CheckpointCorruptionError`) instead of silently skewing
benchmark numbers.  All writes are atomic (temp file + ``os.replace``
via :mod:`repro.ioutil`), so an interrupt can never leave a half-written
artifact behind.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from ..ioutil import atomic_savez
from .module import Module
from .optim import Adam

_META_KEY = "__checkpoint_meta__"
_HASH_KEY = "__state_hash__"


class CheckpointCorruptionError(ValueError):
    """A checkpoint failed its integrity check (or cannot be read at all).

    Carries the ``expected`` (embedded) and ``actual`` (recomputed)
    :func:`state_hash` digests when the payload was readable but did not
    match; both are ``None`` when the archive itself is truncated or
    otherwise unreadable.
    """

    def __init__(self, path, reason: str, expected: str | None = None, actual: str | None = None):
        self.path = Path(path)
        self.reason = reason
        self.expected = expected
        self.actual = actual
        detail = f"checkpoint {self.path} is corrupted: {reason}"
        if expected is not None and actual is not None:
            detail += f" (expected state hash {expected}, got {actual})"
        super().__init__(detail)


def state_hash(module_or_state: Module | dict) -> str:
    """SHA-256 over parameter names, shapes, dtypes, and raw bytes.

    Accepts a :class:`Module` or a ``state_dict``-style mapping.  Identical
    hash ⇔ bitwise-identical parameters in identical order — the bit-level
    fingerprint used by checkpoint integrity checks and the
    ``repro.verify`` determinism harness.
    """
    state = (
        module_or_state.state_dict()
        if isinstance(module_or_state, Module)
        else module_or_state
    )
    digest = hashlib.sha256()
    for name, value in state.items():
        arr = np.ascontiguousarray(value)
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(str(arr.dtype).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def read_archive(path: str | Path) -> dict:
    """Load every array of an ``.npz``, mapping low-level read failures
    (truncation, bit rot in the zip structure) to
    :class:`CheckpointCorruptionError`."""
    path = Path(path)
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
        raise CheckpointCorruptionError(path, f"unreadable archive ({exc})") from exc


def verify_checkpoint(path: str | Path) -> dict:
    """Integrity-check a checkpoint *without* a model; returns its metadata.

    Recomputes the parameter :func:`state_hash` and compares it to the
    embedded digest — the same check :func:`load_checkpoint` performs,
    but usable before a model instance exists (e.g. the serving layer
    probing a candidate checkpoint ahead of a warm reload).  Raises
    :class:`CheckpointCorruptionError` on mismatch or unreadable archive.
    """
    path = Path(path)
    arrays = read_archive(path)
    meta_blob = arrays.pop(_META_KEY, None)
    hash_blob = arrays.pop(_HASH_KEY, None)
    if hash_blob is not None:
        expected = bytes(hash_blob.tobytes()).decode()
        actual = state_hash(arrays)
        if actual != expected:
            raise CheckpointCorruptionError(
                path,
                f"state hash {actual[:16]}… does not match the embedded {expected[:16]}…",
                expected=expected,
                actual=actual,
            )
    if meta_blob is None:
        return {}
    return json.loads(bytes(meta_blob.tobytes()).decode())


def save_checkpoint(path: str | Path, model: Module, metadata: dict | None = None) -> None:
    """Write a model's parameters (and JSON-safe metadata) to ``.npz``.

    The write is atomic: an interrupt leaves any existing checkpoint at
    ``path`` intact.
    """
    arrays = dict(model.state_dict())
    for reserved in (_META_KEY, _HASH_KEY):
        if any(name == reserved for name in arrays):
            raise ValueError(f"parameter name {reserved!r} collides with a reserved slot")
    meta = json.dumps(metadata or {})
    arrays[_META_KEY] = np.frombuffer(meta.encode(), dtype=np.uint8)
    arrays[_HASH_KEY] = np.frombuffer(state_hash(model).encode(), dtype=np.uint8)
    atomic_savez(path, arrays)


def load_checkpoint(path: str | Path, model: Module) -> dict:
    """Load parameters into ``model`` in place; returns the metadata.

    Verifies the embedded :func:`state_hash` (when present — older
    checkpoints without one still load) and raises
    :class:`CheckpointCorruptionError` if the parameter payload does not
    match what was saved, or if the archive itself is unreadable.
    """
    path = Path(path)
    arrays = read_archive(path)
    meta_blob = arrays.pop(_META_KEY, None)
    hash_blob = arrays.pop(_HASH_KEY, None)
    if hash_blob is not None:
        expected = bytes(hash_blob.tobytes()).decode()
        actual = state_hash(arrays)
        if actual != expected:
            raise CheckpointCorruptionError(
                path,
                f"state hash {actual[:16]}… does not match the embedded {expected[:16]}…",
                expected=expected,
                actual=actual,
            )
    model.load_state_dict(arrays)
    if meta_blob is None:
        return {}
    return json.loads(bytes(meta_blob.tobytes()).decode())


def save_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Persist Adam moments + step count for exact training resumption.

    Atomic like :func:`save_checkpoint`.
    """
    state = optimizer.state_dict()
    arrays = {"step_count": np.array(state["step_count"]), "lr": np.array(state["lr"])}
    for i, (m, v) in enumerate(zip(state["m"], state["v"])):
        arrays[f"m_{i}"] = m
        arrays[f"v_{i}"] = v
    atomic_savez(path, arrays)


def load_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Restore Adam moments saved by :func:`save_optimizer`."""
    arrays = read_archive(path)
    optimizer.load_state_dict(
        {
            "step_count": int(arrays["step_count"]),
            "lr": float(arrays["lr"]),
            "m": [arrays[f"m_{i}"] for i in range(len(optimizer._m))],
            "v": [arrays[f"v_{i}"] for i in range(len(optimizer._v))],
        }
    )
