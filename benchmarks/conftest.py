"""Benchmark-suite plumbing.

* Makes ``bench_utils`` importable when pytest runs from the repo root.
* Disables output capture for every bench so the rendered paper tables
  stream to the terminal (and into ``tee bench_output.txt``) even without
  ``-s`` — they are the point of the harness, not debug noise.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def _stream_tables(capfd):
    with capfd.disabled():
        yield
