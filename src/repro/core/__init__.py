"""The paper's primary contribution: TagSL + GCGRU + TGCRN."""

from .time_encoding import (
    ContinuousTimeRepresentation,
    DiscreteTimeEmbedding,
    Time2Vec,
    TimeEncoder,
    make_time_encoder,
)
from .sampling import TimeDistanceSamples, sample_time_distances
from .discrepancy import TimeDiscrepancyLearner, discrepancy_loss
from .tagsl import TagSL
from .gcgru import GCGRUCell, NodeAdaptiveGraphConv
from .tgcrn import TGCRN
from .variants import VARIANTS, VariantSpec, build_variant

__all__ = [
    "VARIANTS",
    "ContinuousTimeRepresentation",
    "DiscreteTimeEmbedding",
    "GCGRUCell",
    "NodeAdaptiveGraphConv",
    "TGCRN",
    "TagSL",
    "Time2Vec",
    "TimeDiscrepancyLearner",
    "TimeDistanceSamples",
    "TimeEncoder",
    "VariantSpec",
    "build_variant",
    "discrepancy_loss",
    "make_time_encoder",
    "sample_time_distances",
]
