"""Final coverage tranche: small behaviors across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DataLoader, make_windows
from repro.metrics import evaluate
from repro.viz import side_by_side


class TestCliExperiments:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "fig8" in out

    def test_unknown_experiment_raises(self):
        from repro.cli import main

        with pytest.raises(ValueError):
            main(["experiments", "table42"])


class TestMetricsOptions:
    def test_mape_threshold_passthrough(self):
        pred = np.array([2.0, 200.0])
        target = np.array([1.0, 100.0])
        # threshold 50 masks the first pair (|target| < 50)
        strict = evaluate(pred, target, mape_threshold=50.0)
        loose = evaluate(pred, target, mape_threshold=0.5)
        assert strict.mape == pytest.approx(100.0)
        assert loose.mape == pytest.approx(100.0)  # both pairs are 100% off
        mixed = evaluate(np.array([1.1, 200.0]), target, mape_threshold=50.0)
        assert mixed.mape == pytest.approx(100.0)


class TestHeatmapLayout:
    def test_side_by_side_uneven_heights(self):
        left = "a\nb\nc"
        right = "x"
        out = side_by_side(left, right, gap=2)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].endswith("x")
        assert lines[2].startswith("c")


@given(
    total=st.integers(min_value=15, max_value=60),
    batch_size=st.integers(min_value=1, max_value=16),
    drop_last=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_loader_len_matches_iteration(total, batch_size, drop_last):
    rng = np.random.default_rng(0)
    values = rng.normal(size=(total, 2, 1))
    ws = make_windows(values, np.arange(total), 4, 2)
    loader = DataLoader(ws, batch_size, drop_last=drop_last)
    batches = list(loader)
    assert len(batches) == len(loader)
    if drop_last:
        assert all(b[0].shape[0] == batch_size for b in batches)


class TestVariantSpecs:
    def test_tdl_flags_match_paper_semantics(self):
        """TDL only applies where the learnable discrete table exists and
        the variant doesn't remove it."""
        from repro.core import VARIANTS

        assert VARIANTS["tgcrn"].use_tdl
        assert not VARIANTS["wo_tdl"].use_tdl
        assert not VARIANTS["time2vec"].use_tdl  # no discrete table
        assert not VARIANTS["ctr"].use_tdl
        assert not VARIANTS["wo_tagsl"].use_tdl  # graph learning removed
        assert VARIANTS["wo_pdf"].use_tdl
        assert VARIANTS["wo_encdec"].use_tdl

    def test_every_variant_has_description(self):
        from repro.core import VARIANTS

        assert all(spec.description for spec in VARIANTS.values())


class TestDatasetSpecsMatchTableIII:
    def test_paper_scale_dimensions(self):
        """The 'paper' size must match Table III exactly."""
        from repro.data import SPECS

        assert SPECS["hzmetro"].nodes_paper == 80
        assert SPECS["shmetro"].nodes_paper == 288
        assert SPECS["nyc_bike"].nodes_paper == 250
        assert SPECS["nyc_taxi"].nodes_paper == 266
        assert SPECS["electricity"].nodes_paper == 321
        # series lengths: steps_per_day * days_paper
        assert SPECS["hzmetro"].steps_per_day * SPECS["hzmetro"].days_paper == 1825
        assert SPECS["shmetro"].steps_per_day * SPECS["shmetro"].days_paper == 6716
        assert SPECS["nyc_bike"].steps_per_day * SPECS["nyc_bike"].days_paper == 4368
        assert SPECS["electricity"].steps_per_day * SPECS["electricity"].days_paper == 26304

    def test_history_horizon_match_paper(self):
        from repro.data import SPECS

        assert (SPECS["hzmetro"].history, SPECS["hzmetro"].horizon) == (4, 4)
        assert (SPECS["nyc_bike"].history, SPECS["nyc_bike"].horizon) == (12, 12)
        assert (SPECS["electricity"].history, SPECS["electricity"].horizon) == (12, 12)
