"""Tests for TagSL (Eq. 6-9) and its ablation switches."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, randn
from repro.core import DiscreteTimeEmbedding, TagSL


def _tagsl(rng, **kwargs):
    enc = DiscreteTimeEmbedding(24, 4, rng=rng)
    defaults = dict(num_nodes=5, node_dim=6, time_encoder=enc, alpha=0.3)
    defaults.update(kwargs)
    return TagSL(**defaults, rng=rng)


class TestStaticTerm:
    def test_symmetric(self, rng):
        tagsl = _tagsl(rng)
        a_v = tagsl.static_adjacency().data
        np.testing.assert_allclose(a_v, a_v.T, atol=1e-12)

    def test_matches_inner_product(self, rng):
        tagsl = _tagsl(rng)
        e = tagsl.node_embedding.data
        np.testing.assert_allclose(tagsl.static_adjacency().data, e @ e.T)


class TestTrendFactor:
    def test_scalar_shape(self, rng):
        tagsl = _tagsl(rng)
        eta = tagsl.trend_factor(np.array([3, 7, 11]))
        assert eta.shape == (3, 1, 1)

    def test_matches_consecutive_inner_product(self, rng):
        tagsl = _tagsl(rng)
        table = tagsl.time_encoder.weight.data
        eta = tagsl.trend_factor(np.array([5])).data[0, 0, 0]
        assert eta == pytest.approx(float(table[5] @ table[4]))

    def test_wraps_at_day_boundary(self, rng):
        tagsl = _tagsl(rng)
        table = tagsl.time_encoder.weight.data
        eta = tagsl.trend_factor(np.array([0])).data[0, 0, 0]
        assert eta == pytest.approx(float(table[0] @ table[23]))

    def test_vector_mode_shape(self, rng):
        tagsl = _tagsl(rng, trend_mode="vector")
        eta = tagsl.trend_factor(np.array([3, 7]))
        assert eta.shape == (2, 5, 5)

    def test_unknown_trend_mode(self, rng):
        with pytest.raises(ValueError):
            _tagsl(rng, trend_mode="quadratic")


class TestPeriodicDiscriminant:
    def test_bounded_by_tanh(self, rng):
        tagsl = _tagsl(rng)
        state = randn(2, 5, 3, rng=rng)
        a_p = tagsl.periodic_discriminant(state).data
        assert (np.abs(a_p) <= 1.0).all()

    def test_gate_range(self, rng):
        """(1 + α σ(A_p)) must lie in (1, 1+α)."""
        tagsl = _tagsl(rng, alpha=0.3)
        state = randn(2, 5, 3, rng=rng)
        gate = 1.0 + 0.3 / (1.0 + np.exp(-tagsl.periodic_discriminant(state).data))
        assert (gate > 1.0).all() and (gate < 1.3).all()

    def test_distinguishes_period_states(self, rng):
        """Different node states (weekday vs weekend patterns) must yield
        different adjacencies — the PDF's purpose."""
        tagsl = _tagsl(rng)
        t = np.array([5])
        weekday_state = Tensor(np.full((1, 5, 3), 0.5))
        weekend_state = Tensor(np.full((1, 5, 3), 0.1))
        a1 = tagsl(weekday_state, t).data
        a2 = tagsl(weekend_state, t).data
        assert not np.allclose(a1, a2)


class TestEquation9:
    def test_full_forward_matches_manual_composition(self, rng):
        tagsl = _tagsl(rng, alpha=0.3)
        state = randn(2, 5, 3, rng=rng)
        t = np.array([4, 9])
        a = tagsl(state, t).data
        a_v = tagsl.static_adjacency().data
        eta = tagsl.trend_factor(t).data
        a_p = tagsl.periodic_discriminant(state).data
        gate = 1.0 + 0.3 / (1.0 + np.exp(-a_p))
        np.testing.assert_allclose(a, gate * (a_v[None] + eta), rtol=1e-10)

    def test_batch_shape(self, rng):
        tagsl = _tagsl(rng)
        a = tagsl(randn(3, 5, 2, rng=rng), np.array([1, 2, 3]))
        assert a.shape == (3, 5, 5)

    def test_normalized_rows_sum_to_one(self, rng):
        tagsl = _tagsl(rng)
        a = tagsl.normalized(randn(2, 5, 2, rng=rng), np.array([1, 2]), mode="softmax")
        np.testing.assert_allclose(a.data.sum(axis=-1), 1.0)

    def test_gradients_reach_all_inputs(self, rng):
        tagsl = _tagsl(rng)
        state = randn(1, 5, 2, rng=rng, requires_grad=True)
        params = [tagsl.node_embedding, tagsl.time_encoder.weight, state]
        check_gradients(
            lambda: tagsl(state, np.array([3])).tanh().sum() * 0.1, params, rtol=1e-3
        )


class TestAblationSwitches:
    def test_static_only_ignores_time_and_state(self, rng):
        tagsl = _tagsl(rng, static_only=True)
        a1 = tagsl(None, np.array([1])).data
        a2 = tagsl(None, np.array([17])).data
        np.testing.assert_allclose(a1, a2)

    def test_no_trend_removes_time_dependence(self, rng):
        tagsl = _tagsl(rng, use_trend=False, use_pdf=False)
        a1 = tagsl(None, np.array([1])).data
        a2 = tagsl(None, np.array([17])).data
        np.testing.assert_allclose(a1, a2)

    def test_with_trend_time_dependent(self, rng):
        tagsl = _tagsl(rng, use_pdf=False)
        a1 = tagsl(None, np.array([1])).data
        a2 = tagsl(None, np.array([17])).data
        assert not np.allclose(a1, a2)

    def test_pdf_requires_state(self, rng):
        tagsl = _tagsl(rng)
        with pytest.raises(ValueError):
            tagsl(None, np.array([1]))
