"""Tests for the abstract shape/dtype interpreter (repro.analyze.shapes).

Planted-bug fixtures must be caught with the *right* rule id; the whole
shipped model catalog must come back clean; and the flagship acceptance
case — a mis-shaped GCGRU gate buried two modules deep in TGCRN — must
be pinpointed symbolically, fast, with no real forward pass.
"""

import time

import numpy as np
import pytest

from repro.analyze import check_forecast_model, check_served_model, sym_window
from repro.analyze.shapes import SymTensor
from repro.core import TGCRN, NodeAdaptiveGraphConv
from repro.nn import Linear, Module, Parameter

DIMS = dict(history=4, horizon=3, num_nodes=5, in_dim=2, out_dim=2)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _tiny_tgcrn(seed=0):
    return TGCRN(
        num_nodes=DIMS["num_nodes"], in_dim=DIMS["in_dim"], out_dim=DIMS["out_dim"],
        horizon=DIMS["horizon"], hidden_dim=6, num_layers=2, node_dim=4, time_dim=4,
        steps_per_day=24, rng=np.random.default_rng(seed),
    )


class _GoodModel(Module):
    """Minimal contract-conforming forecaster used as the clean control."""

    def __init__(self, rng):
        super().__init__()
        self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)

    def forward(self, x, t):
        frame = self.proj(x[:, -1])  # (B, N, out_dim)
        return concat_horizon(frame)


def concat_horizon(frame):
    from repro.autodiff import stack

    return stack([frame] * DIMS["horizon"], axis=1)


class TestPlantedBugs:
    def test_broadcast_mismatch_is_sh001(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)
                self.bias = Parameter(np.zeros(DIMS["out_dim"] + 1))

            def forward(self, x, t):
                return concat_horizon(self.proj(x[:, -1]) + self.bias)

        findings = check_forecast_model(Bad(), **DIMS)
        assert "SH001" in _rule_ids(findings)
        assert any(f.severity == "error" for f in findings)

    def test_matmul_inner_dim_is_sh002(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(rng.normal(size=(DIMS["in_dim"] + 1, DIMS["out_dim"])))

            def forward(self, x, t):
                return concat_horizon(x[:, -1] @ self.weight)

        findings = check_forecast_model(Bad(), **DIMS)
        assert "SH002" in _rule_ids(findings)

    def test_bad_reshape_is_sh003(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"], rng=rng)

            def forward(self, x, t):
                frame = self.proj(x[:, -1])
                return concat_horizon(frame.reshape(frame.shape[0], -1, 3))

        findings = check_forecast_model(Bad(), **DIMS)
        assert "SH003" in _rule_ids(findings)

    def test_float32_parameter_is_sh005(self, rng):
        model = _GoodModel(rng)
        model.proj.weight.data = model.proj.weight.data.astype(np.float32)
        findings = check_forecast_model(model, **DIMS)
        assert "SH005" in _rule_ids(findings)
        sh005 = [f for f in findings if f.rule_id == "SH005"]
        assert all(f.severity == "error" for f in sh005)
        assert any("proj.weight" in f.location for f in sh005)

    def test_wrong_output_contract_is_sh006(self, rng):
        class Bad(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(DIMS["in_dim"], DIMS["out_dim"] + 1, rng=rng)

            def forward(self, x, t):
                return concat_horizon(self.proj(x[:, -1]))

        findings = check_forecast_model(Bad(), **DIMS)
        assert "SH006" in _rule_ids(findings)

    def test_model_crash_on_abstract_input_is_sh007_warning(self, rng):
        class Weird(Module):
            def forward(self, x, t):
                raise RuntimeError("no symbolic story for this op")

        findings = check_forecast_model(Weird(), **DIMS)
        assert _rule_ids(findings) == {"SH007"}
        assert all(f.severity == "warning" for f in findings)


class TestMisShapedGCGRUGate:
    """The acceptance scenario: a wrong gate conv inside TGCRN is found
    symbolically, located to the owning cell, in well under a second."""

    def test_detects_and_locates(self):
        model = _tiny_tgcrn()
        cell = model.encoder_cells[0]
        rng = np.random.default_rng(1)
        # Gate output width off by one: hidden mismatch at the GRU update.
        model.encoder_cells[0].gate_conv = NodeAdaptiveGraphConv(
            cell.in_dim + cell.hidden_dim, 2 * cell.hidden_dim + 1,
            embed_dim=8, rng=rng,
        )
        start = time.perf_counter()
        findings = check_forecast_model(model, model_name="tgcrn", **DIMS)
        elapsed = time.perf_counter() - start
        errors = [f for f in findings if f.severity == "error"]
        assert errors, findings
        assert any(f.rule_id.startswith("SH") for f in errors)
        assert any("encoder_cells.0" in f.location for f in errors)
        assert elapsed < 1.0, f"symbolic check took {elapsed:.3f}s"


class TestCleanCatalog:
    def test_tiny_tgcrn_is_clean(self):
        findings = check_forecast_model(_tiny_tgcrn(), model_name="tgcrn", **DIMS)
        assert findings == [], [str(f.to_dict()) for f in findings]

    def test_full_registry_is_shape_clean(self):
        from repro.analyze import analyze_models

        findings = [f for f in analyze_models(rules=["SH"]) if f.severity != "info"]
        assert findings == [], [str(f.to_dict()) for f in findings]

    def test_served_model_checked_against_task(self, tiny_task):
        from repro.training import default_tgcrn_kwargs

        model = TGCRN(**default_tgcrn_kwargs(
            tiny_task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
            rng=np.random.default_rng(3))
        assert check_served_model(model, tiny_task) == []


class TestMicroBatchShapes:
    """Regression for the serve/engine follow-up: every merge size the
    ``MicroBatcher`` can emit must verify statically, because the
    execution engine caches one plan per input signature — a model that
    bakes a concrete batch size serves one bucket and breaks the rest."""

    def test_clean_model_verifies_at_every_merge_size(self, tiny_task):
        from repro.analyze import check_micro_batch_shapes
        from repro.training import default_tgcrn_kwargs

        model = TGCRN(**default_tgcrn_kwargs(
            tiny_task, hidden_dim=4, node_dim=3, time_dim=3, num_layers=1),
            rng=np.random.default_rng(3))
        assert check_micro_batch_shapes(model, tiny_task, max_batch=4) == []

    def test_batch_baked_reshape_is_sh008_with_failing_sizes(self, tiny_task, rng):
        from repro.analyze import check_micro_batch_shapes
        from repro.autodiff import stack

        task = tiny_task

        class BatchBaked(Module):
            """Round-trips through a reshape with the batch dim baked to 2."""

            def __init__(self):
                super().__init__()
                self.proj = Linear(task.in_dim, task.out_dim, rng=rng)

            def forward(self, x, t):
                frame = self.proj(x[:, -1])  # (B, N, out_dim)
                flat = frame.reshape(2 * task.num_nodes, task.out_dim)
                frame = flat.reshape(2, task.num_nodes, task.out_dim)
                return stack([frame] * task.horizon, axis=1)

        findings = check_micro_batch_shapes(BatchBaked(), task, max_batch=4)
        sh008 = [f for f in findings if f.rule_id == "SH008"]
        assert sh008, [str(f.to_dict()) for f in findings]
        assert all(f.severity == "error" for f in sh008)
        # The finding names exactly the merge sizes that break (everything
        # except the baked-in batch of 2).
        assert any("[1, 3, 4]" in f.message for f in sh008), \
            [f.message for f in sh008]

    def test_batch_independent_bug_not_misfiled_as_sh008(self, tiny_task, rng):
        from repro.analyze import check_micro_batch_shapes
        from repro.autodiff import stack

        task = tiny_task

        class WrongWidth(Module):
            """Broken the same way at every batch size (SH006 territory)."""

            def __init__(self):
                super().__init__()
                self.proj = Linear(task.in_dim, task.out_dim + 1, rng=rng)

            def forward(self, x, t):
                return stack([self.proj(x[:, -1])] * task.horizon, axis=1)

        findings = check_micro_batch_shapes(WrongWidth(), task, max_batch=4)
        assert findings, "expected the contract violation to surface"
        assert "SH008" not in _rule_ids(findings), \
            [str(f.to_dict()) for f in findings]


class TestEngineSupportLint:
    """EN001: a registry model that can't capture/replay is a warning —
    the trainer silently loses ``--compile`` for it."""

    def test_clean_model_is_engine_compilable(self):
        from repro.analyze import check_engine_support

        findings = check_engine_support(_tiny_tgcrn(), model_name="tgcrn", **DIMS)
        assert findings == [], [str(f.to_dict()) for f in findings]

    def test_capture_hostile_model_is_en001(self, rng):
        from repro.analyze import check_engine_support

        class DataDependent(_GoodModel):
            """Branches on tensor *values*: two steps, two op sequences."""

            def __init__(self, rng):
                super().__init__(rng)
                self.calls = 0

            def forward(self, x, t):
                self.calls += 1
                out = super().forward(x, t)
                return out * 2.0 if self.calls % 2 == 0 else out

        findings = check_engine_support(
            DataDependent(rng), model_name="datadep", **DIMS)
        assert _rule_ids(findings) == {"EN001"}
        assert all(f.severity == "warning" for f in findings)


class TestSymTensor:
    def test_sym_window_shape_and_no_real_data(self):
        x = sym_window(2, 4, 5, 3)
        assert isinstance(x, SymTensor)
        assert tuple(int(d) for d in x.shape) == (2, 4, 5, 3)
        # The escape-hatch array is zero-stride: O(1) memory however big.
        assert x.data.strides == (0, 0, 0, 0)

    def test_backward_is_refused(self):
        from repro.analyze.shapes import SymbolicUnsupportedError

        with pytest.raises(SymbolicUnsupportedError):
            sym_window(2, 4, 5, 3).sum().backward()
