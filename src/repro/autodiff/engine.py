"""Compile-and-replay execution engine for the numpy autodiff stack.

The eager autodiff in :mod:`repro.autodiff.tensor` re-dispatches every op
through Python overloads and rebuilds the tape on every training step,
even though the op graph of a (model, task) pair is static per shape
bucket (``repro.analyze.shapes`` proves this symbolically).  This module
removes that per-step overhead with a two-phase scheme:

**Capture** — :meth:`ExecutionEngine.run` executes the step function once
in an instrumented mode: every ``Tensor`` primitive is wrapped so the op,
its operands, its static metadata (axes, shapes, keys) and its retained
backward closure are recorded in execution order, and the backward pass
is observed through the backward-op hook so the exact closure firing
order is known.  The recorded tensors *are* the plan's buffer arena —
their ``.data`` arrays are reused as preallocated outputs on every
subsequent step.

**Replay** — for later calls with the same signature (shapes, dtypes,
grad mode, caller key), the same step function runs again, but every
primitive is routed to a per-node *kernel*: a prebuilt sequence of
``out=``-style ufunc calls that writes the new values into the retained
buffers with no tensor allocation, no tape construction, and no graph
walk.  The backward pass replays the recorded closures in the captured
firing order against preset zero gradient buffers.  Every kernel mirrors
the eager ufunc sequence exactly, so replayed losses, outputs and
gradients are **bitwise identical** to eager (enforced by
``tests/test_engine_differential.py``).

Guard conditions make replay safe rather than fast-but-wrong: each node
checks operand identity (intermediates), parameter ``data`` identity
(catches rebinding), leaf value/shape/dtype compatibility, and static
metadata equality.  Any violation raises :class:`ReplayMismatch`, the
engine restores the RNG streams it snapshotted before the attempt,
resets the plan's gradient state, logs a structured ``plan_invalidated``
record, and re-runs the step eagerly — callers never see wrong numbers.
Graphs the engine cannot mirror bitwise (e.g. ``max(axis=None)`` under
grad) raise :class:`PlanUnsupported` at capture and leave the signature
permanently eager.

See ``docs/engine.md`` for the lifecycle, guard catalogue and the
``plan_invalidated`` record format.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .tensor import (
    DEFAULT_DTYPE,
    Tensor,
    get_symbolic_handler,
    is_grad_enabled,
    set_backward_op_hook,
    set_make_hook,
    set_symbolic_handler,
)

__all__ = [
    "CompiledModel",
    "ExecutionEngine",
    "PlanUnsupported",
    "ReplayMismatch",
    "discover_rngs",
]


class PlanUnsupported(RuntimeError):
    """The captured graph uses an op the engine cannot replay bitwise."""


class ReplayMismatch(RuntimeError):
    """A guard condition failed during replay; the step falls back to eager."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


# Ops whose results may be CSE'd: pure functions of tensor operands and
# hashable static metadata.  Ops with raw-leaf inputs are excluded (two
# call sites could feed different leaf values through the same slots).
_CSE_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "matmul", "exp", "log",
    "sqrt", "tanh", "sigmoid", "sum", "relu", "abs", "sin", "cos",
})

# Elementwise ops, used to report fused-chain statistics.
_ELEMENTWISE_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt",
    "tanh", "sigmoid", "relu", "leaky_relu", "abs", "clip", "sin",
    "cos", "where",
})

# Tensor class attributes patched during capture and replay.  Module-level
# functions (concat/stack/where/gather_rows) and the functional
# softmax/log_softmax are intercepted through the symbolic-handler seam
# instead — consumer modules bind those names at import time, so patching
# the tensor module attribute would not reach them, but every one of them
# consults ``get_symbolic_handler()`` live on each call.
_PATCHED_ATTRS = (
    "__add__", "__radd__", "__sub__", "__mul__", "__rmul__",
    "__truediv__", "__neg__", "__pow__", "__matmul__",
    "exp", "log", "sqrt", "sin", "cos", "tanh", "sigmoid",
    "relu", "leaky_relu", "abs", "clip", "sum", "max",
    "reshape", "transpose", "broadcast_to", "__getitem__", "backward",
)

# True while a capture or replay session holds the Tensor patches.  A
# nested ExecutionEngine.run (e.g. a CompiledModel called inside an
# already-instrumented trainer step) must run plain eager so the outer
# session records its ops.
_BUSY = False


def _closure_cells(backward_fn) -> dict:
    """Free variables of a backward closure, by name.

    The eager op bodies close over exactly the state the engine needs —
    operand tensors plus derived arrays (masks, signs, softmax caches) —
    so the closure doubles as the op's capture record.
    """
    if backward_fn is None or backward_fn.__closure__ is None:
        return {}
    return dict(
        zip(backward_fn.__code__.co_freevars,
            (c.cell_contents for c in backward_fn.__closure__))
    )


def _norm_shape(shape) -> tuple:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        return tuple(shape[0])
    return tuple(shape)


def _norm_axes(axes, ndim: int) -> tuple:
    if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes = tuple(axes[0])
    if not axes:
        return tuple(reversed(range(ndim)))
    return tuple(axes)


def _norm_axis(axis):
    return tuple(axis) if isinstance(axis, list) else axis


def discover_rngs(*roots) -> tuple:
    """Collect every ``np.random.Generator`` reachable from ``roots``.

    Walks module trees duck-typed (``obj.modules()``) and scans instance
    attributes, deduplicating by identity.  The engine snapshots these
    streams before each replay attempt so a failed replay can rewind any
    draws the step function already consumed before falling back to eager.
    """
    found: dict[int, np.random.Generator] = {}

    def scan(value):
        if isinstance(value, np.random.Generator):
            found[id(value)] = value

    for root in roots:
        if root is None:
            continue
        scan(root)
        modules = getattr(root, "modules", None)
        owners = list(modules()) if callable(modules) else [root]
        for owner in owners:
            for value in vars(owner).values() if hasattr(owner, "__dict__") else ():
                scan(value)
    return tuple(found.values())


def _copy_result(value):
    """Detached copies of returned tensors/arrays.

    Plan buffers are overwritten on the next step, so anything handed back
    to the caller (e.g. predictions accumulated across batches by
    ``Trainer.predict``) must not alias the arena.
    """
    if isinstance(value, Tensor):
        return Tensor(np.array(value.data, copy=True))
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, tuple):
        return tuple(_copy_result(v) for v in value)
    if isinstance(value, list):
        return [_copy_result(v) for v in value]
    return value


class _Rec:
    """One recorded op: its output tensor, closure, operands and metadata."""

    __slots__ = ("op", "out", "bfn", "operands", "meta", "cells",
                 "guards", "guards_slots", "meta_guard", "kernel", "aux_copies")

    def __init__(self, op, out, bfn, operands, meta, cells):
        self.op = op
        self.out = out
        self.bfn = bfn
        self.operands = operands
        self.meta = meta
        self.cells = cells
        self.guards = ()
        self.guards_slots = ()
        self.meta_guard = None
        self.kernel = None
        self.aux_copies = ()


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #


class _CaptureSession:
    """Record one eager execution of the step function as a linear plan."""

    def __init__(self):
        self.records: list[_Rec] = []
        self.unsupported: list[str] = []
        self.stash = None          # backward closure of the op in flight
        self.backward_calls = 0
        self.fired = None          # backward closures in firing order
        self._saved = None
        self._prev_make = None
        self._prev_handler = None

    # -- recording ---------------------------------------------------- #

    def add(self, op, out, meta=(), names=("self",), operands=None):
        bfn, self.stash = self.stash, None
        if bfn is None:
            self.unsupported.append(f"{op}: op produced no closure")
            return
        cells = _closure_cells(bfn)
        if operands is None:
            try:
                operands = tuple(cells[n] for n in names)
            except KeyError as exc:
                self.unsupported.append(f"{op}: closure missing cell {exc}")
                return
        self.records.append(_Rec(op, out, bfn, operands, meta, cells))

    # -- Tensor method wrappers ---------------------------------------- #

    def install(self):
        global _BUSY
        _BUSY = True
        cap = self
        saved = {name: getattr(Tensor, name) for name in _PATCHED_ATTRS}
        self._saved = saved

        def binary(attr, op):
            orig = saved[attr]

            def wrapped(self, other):
                cap.stash = None
                out = orig(self, other)
                cap.add(op, out, names=("self", "other"))
                return out
            return wrapped

        def unary(attr, op):
            orig = saved[attr]

            def wrapped(self):
                cap.stash = None
                out = orig(self)
                cap.add(op, out)
                return out
            return wrapped

        for attr, op in (("__add__", "add"), ("__radd__", "add"),
                         ("__sub__", "sub"), ("__mul__", "mul"),
                         ("__rmul__", "mul"), ("__truediv__", "div"),
                         ("__matmul__", "matmul")):
            setattr(Tensor, attr, binary(attr, op))
        for attr, op in (("__neg__", "neg"), ("exp", "exp"), ("log", "log"),
                         ("sqrt", "sqrt"), ("sin", "sin"), ("cos", "cos"),
                         ("tanh", "tanh"), ("sigmoid", "sigmoid"),
                         ("relu", "relu"), ("abs", "abs")):
            setattr(Tensor, attr, unary(attr, op))

        orig_pow = saved["__pow__"]

        def w_pow(self, exponent):
            cap.stash = None
            out = orig_pow(self, exponent)
            cap.add("pow", out, meta=(exponent,))
            return out

        orig_leaky = saved["leaky_relu"]

        def w_leaky(self, negative_slope=0.01):
            cap.stash = None
            out = orig_leaky(self, negative_slope)
            cap.add("leaky_relu", out, meta=(float(negative_slope),))
            return out

        orig_clip = saved["clip"]

        def w_clip(self, low, high):
            cap.stash = None
            out = orig_clip(self, low, high)
            cap.add("clip", out, meta=(low, high))
            return out

        orig_sum = saved["sum"]

        def w_sum(self, axis=None, keepdims=False):
            cap.stash = None
            out = orig_sum(self, axis=axis, keepdims=keepdims)
            cap.add("sum", out, meta=(_norm_axis(axis), bool(keepdims)))
            return out

        orig_max = saved["max"]

        def w_max(self, axis=None, keepdims=False):
            cap.stash = None
            out = orig_max(self, axis=axis, keepdims=keepdims)
            cap.add("max", out, meta=(_norm_axis(axis), bool(keepdims)))
            return out

        orig_reshape = saved["reshape"]

        def w_reshape(self, *shape):
            cap.stash = None
            out = orig_reshape(self, *shape)
            cap.add("reshape", out, meta=(_norm_shape(shape),))
            return out

        orig_transpose = saved["transpose"]

        def w_transpose(self, *axes):
            norm = _norm_axes(axes, self.data.ndim)
            cap.stash = None
            out = orig_transpose(self, *axes)
            cap.add("transpose", out, meta=(norm,))
            return out

        orig_bcast = saved["broadcast_to"]

        def w_bcast(self, shape):
            cap.stash = None
            out = orig_bcast(self, shape)
            cap.add("broadcast_to", out, meta=(tuple(shape),))
            return out

        orig_getitem = saved["__getitem__"]

        def w_getitem(self, key):
            cap.stash = None
            # Privatize ndarray index parts: the backward closure retains
            # the key object and replay refreshes it in place, which must
            # never write into an array the caller still owns.
            if isinstance(key, np.ndarray):
                key = key.copy()
            elif isinstance(key, tuple) and any(
                    isinstance(p, np.ndarray) for p in key):
                key = tuple(p.copy() if isinstance(p, np.ndarray) else p
                            for p in key)
            out = orig_getitem(self, key)
            cap.add("getitem", out, meta=(key,))
            return out

        orig_backward = saved["backward"]

        def w_backward(self, grad=None):
            if grad is not None or cap.backward_calls:
                cap.unsupported.append(
                    "backward: seeded or repeated backward in one step")
                return orig_backward(self, grad)
            cap.backward_calls = 1
            fired = []
            prev_hook = set_backward_op_hook(None)
            if prev_hook is None:
                def hook(bfn, started, seconds):
                    fired.append(bfn)
            else:
                def hook(bfn, started, seconds):
                    fired.append(bfn)
                    prev_hook(bfn, started, seconds)
            set_backward_op_hook(hook)
            try:
                orig_backward(self, grad)
            finally:
                set_backward_op_hook(prev_hook)
            cap.fired = fired
            cap.records.append(_Rec("backward", self, None, (), (), {}))

        setattr(Tensor, "__pow__", w_pow)
        setattr(Tensor, "leaky_relu", w_leaky)
        setattr(Tensor, "clip", w_clip)
        setattr(Tensor, "sum", w_sum)
        setattr(Tensor, "max", w_max)
        setattr(Tensor, "reshape", w_reshape)
        setattr(Tensor, "transpose", w_transpose)
        setattr(Tensor, "broadcast_to", w_bcast)
        setattr(Tensor, "__getitem__", w_getitem)
        setattr(Tensor, "backward", w_backward)

        def make_hook(data, bfn):
            cap.stash = bfn
            prev = cap._prev_make
            if prev is not None:
                prev(data, bfn)

        self._prev_make = set_make_hook(make_hook)
        self._prev_handler = set_symbolic_handler(_CaptureHandler(self))

    def uninstall(self):
        global _BUSY
        for name, fn in self._saved.items():
            setattr(Tensor, name, fn)
        set_make_hook(self._prev_make)
        set_symbolic_handler(self._prev_handler)
        _BUSY = False


class _CaptureHandler:
    """Symbolic-handler shim recording the module-level ops.

    ``concat``/``stack``/``where``/``gather_rows`` and the functional
    ``softmax``/``log_softmax`` consult this handler live; the shim
    re-enters the original function with ``busy`` set (so the inner call
    computes eagerly) and records the produced node.  ``maximum`` and
    ``minimum`` probe ``where(True, a, b)`` before computing their mask;
    returning ``None`` for the literal-True probe keeps them on their
    composite eager path, whose ``where`` call is then recorded normally.
    """

    def __init__(self, cap: _CaptureSession):
        self.cap = cap
        self.busy = False

    def concat(self, tensors, axis):
        if self.busy:
            return None
        from .tensor import concat as _concat
        self.busy = True
        try:
            self.cap.stash = None
            out = _concat(tensors, axis=axis)
            cells = _closure_cells(self.cap.stash)
            self.cap.add("concat", out, meta=(axis, len(tensors)),
                         operands=tuple(cells.get("tensors", ())))
        finally:
            self.busy = False
        return out

    def stack(self, tensors, axis):
        if self.busy:
            return None
        from .tensor import stack as _stack
        self.busy = True
        try:
            self.cap.stash = None
            out = _stack(tensors, axis=axis)
            cells = _closure_cells(self.cap.stash)
            self.cap.add("stack", out, meta=(axis, len(tensors)),
                         operands=tuple(cells.get("tensors", ())))
        finally:
            self.busy = False
        return out

    def where(self, condition, a, b):
        if self.busy or condition is True:
            return None
        from .tensor import where as _where
        self.busy = True
        try:
            self.cap.stash = None
            # Privatize the retained condition buffer (refreshed in place
            # on replay — must not alias a caller-owned array).
            if isinstance(condition, Tensor):
                condition = Tensor(np.array(condition.data, copy=True))
            elif isinstance(condition, np.ndarray):
                condition = condition.copy()
            out = _where(condition, a, b)
            self.cap.add("where", out, names=("a", "b"))
        finally:
            self.busy = False
        return out

    def gather_rows(self, table, indices):
        if self.busy:
            return None
        from .tensor import gather_rows as _gather_rows
        self.busy = True
        try:
            self.cap.stash = None
            # Privatize the retained index buffer (refreshed in place on
            # replay — must not alias a caller-owned array).
            if isinstance(indices, Tensor):
                indices = Tensor(np.array(indices.data, copy=True))
            elif isinstance(indices, np.ndarray):
                indices = indices.copy()
            out = _gather_rows(table, indices)
            self.cap.add("gather_rows", out, names=("table",))
        finally:
            self.busy = False
        return out

    def softmax(self, x, axis):
        if self.busy:
            return None
        from .functional import softmax as _softmax
        self.busy = True
        try:
            self.cap.stash = None
            out = _softmax(x, axis)
            self.cap.add("softmax", out, meta=(axis,), names=("x",))
        finally:
            self.busy = False
        return out

    def log_softmax(self, x, axis):
        if self.busy:
            return None
        from .functional import log_softmax as _log_softmax
        self.busy = True
        try:
            self.cap.stash = None
            out = _log_softmax(x, axis)
            self.cap.add("log_softmax", out, meta=(axis,), names=("x",))
        finally:
            self.busy = False
        return out


# --------------------------------------------------------------------- #
# finalize: guards, kernels, CSE, backward schedule
# --------------------------------------------------------------------- #


def _leaf_guard(tensor, arr):
    """Check/refresh a non-grad leaf operand (fresh object every step).

    Mirrors ``Tensor.__init__`` coercion: bool arrays pass through, all
    other dtypes become float64 — so the refreshed buffer holds exactly
    the bytes eager mode would have wrapped.
    """
    shape = arr.shape
    is_bool = arr.dtype == np.bool_

    def check(actual):
        if isinstance(actual, Tensor):
            if actual.requires_grad:
                raise ReplayMismatch("operand_mismatch",
                                     "leaf operand became grad-requiring")
            src = actual.data
        else:
            src = np.asarray(actual)
        if src.dtype != arr.dtype:
            if is_bool or src.dtype == np.bool_:
                raise ReplayMismatch("dtype", f"leaf {src.dtype} != {arr.dtype}")
            src = src.astype(DEFAULT_DTYPE, copy=False)
            if src.dtype != arr.dtype:
                raise ReplayMismatch("dtype", f"leaf {src.dtype} != {arr.dtype}")
        if src.shape != shape:
            raise ReplayMismatch("shape", f"leaf {src.shape} != {shape}")
        if src is not arr:
            np.copyto(arr, src)
    return check


def _slot_guard(slot):
    kind = slot[0]
    if kind == "n":
        t = slot[1]

        def check(actual):
            if actual is not t:
                raise ReplayMismatch("operand_mismatch",
                                     "intermediate tensor identity changed")
        return check
    if kind == "p":
        t = slot[1]
        d = slot[2]

        def check(actual):
            if actual is not t or t.data is not d:
                raise ReplayMismatch("operand_mismatch",
                                     "parameter rebound or replaced")
        return check
    return _leaf_guard(slot[1], slot[2])


def _meta_guard(op, recorded):
    def check(meta):
        if meta != recorded:
            raise ReplayMismatch("meta_mismatch",
                                 f"{op}: {meta!r} != {recorded!r}")
    return check


def _getitem_guard(recorded_key):
    """Equality guard for index keys; ndarray parts refresh in place.

    The backward closure captured the key object itself, so copying new
    index values into the recorded arrays keeps forward and backward
    coherent for data-dependent fancy indexing.
    """
    parts0 = recorded_key if isinstance(recorded_key, tuple) else (recorded_key,)
    specs = []
    for part in parts0:
        if isinstance(part, np.ndarray):
            specs.append(("a", part))
        else:
            specs.append(("v", part))

    def check(meta):
        key = meta[0]
        parts = key if isinstance(key, tuple) else (key,)
        if len(parts) != len(specs):
            raise ReplayMismatch("meta_mismatch", "getitem key arity changed")
        for (kind, ref), part in zip(specs, parts):
            if kind == "a":
                src = np.asarray(part)
                if src.shape != ref.shape or src.dtype != ref.dtype:
                    raise ReplayMismatch("meta_mismatch",
                                         "getitem index array shape/dtype changed")
                if src is not ref:
                    np.copyto(ref, src)
            else:
                if isinstance(part, np.ndarray) or not (part is ref or part == ref):
                    raise ReplayMismatch("meta_mismatch", "getitem key changed")
    return check


def _require_retained(rec, name):
    """A closure cell the backward pass reads must be an in-place
    refreshable ndarray; numpy collapses 0-d results to scalars, which
    would go stale — those graphs stay eager."""
    value = rec.cells.get(name)
    if not isinstance(value, np.ndarray):
        raise PlanUnsupported(
            f"{rec.op}: backward state {name!r} is not a refreshable array "
            "(0-d result?)")
    return value


def _scratch_or_cell(rec, name, shape, dtype):
    value = rec.cells.get(name)
    if isinstance(value, np.ndarray):
        return value
    return np.empty(shape, dtype=dtype)


def _require_out_identity(rec):
    if rec.out.requires_grad and rec.cells.get("out_data") is not rec.out.data:
        raise PlanUnsupported(
            f"{rec.op}: closure output cache detached from tensor buffer "
            "(0-d result?)")


def _matmul_writer(a, b, out):
    """Build ``np.matmul(a, b, out=out)`` as a zero-arg kernel.

    When ``b`` is a single matrix and ``a``/``out`` expose contiguous 2-d
    views, the batched gufunc loop (one BLAS call per batch slice) is
    collapsed into a single call on the flattened views.  BLAS
    accumulation order along the contraction axis depends on shapes and
    strides, never on values, so a one-time random probe at build time
    proves the collapse is bitwise-identical for this configuration; any
    difference keeps the batched loop.
    """
    if b.ndim == 2 and a.ndim > 2 and out.ndim == a.ndim:
        k = a.shape[-1]
        av = a.reshape(-1, k)
        ov = out.reshape(-1, b.shape[-1])
        if np.shares_memory(av, a) and np.shares_memory(ov, out):
            probe = np.random.default_rng(0).standard_normal(a.shape)
            ref = np.matmul(probe, b)
            if np.array_equal(ref, np.matmul(probe.reshape(-1, k), b).reshape(ref.shape)):
                def kernel():
                    np.matmul(av, b, out=ov)
                return kernel

    def kernel():
        np.matmul(a, b, out=out)
    return kernel


_BINARY_UFUNCS = {"add": np.add, "sub": np.subtract,
                  "mul": np.multiply, "div": np.divide}


def _build_kernel(rec):
    """Compile one recorded op into an allocation-free kernel closure.

    Every kernel repeats the exact ufunc sequence of the eager op body
    (same ufuncs, same operand order, same dtypes) so results are bitwise
    identical; ``out=`` only redirects the destination.
    """
    op = rec.op
    out = rec.out.data
    data = tuple(t.data for t in rec.operands)

    if op in _BINARY_UFUNCS:
        ufunc = _BINARY_UFUNCS[op]
        a, b = data

        def kernel():
            ufunc(a, b, out=out)
        return kernel

    if op == "neg":
        (a,) = data
        return lambda: np.negative(a, out=out)

    if op == "pow":
        # ndarray.__pow__ takes fast paths (square/sqrt/reciprocal) that
        # are not np.power; re-evaluating the original expression is the
        # only form guaranteed bitwise across numpy versions.
        (a,) = data
        exponent = rec.meta[0]
        return lambda: np.copyto(out, a ** exponent)

    if op == "matmul":
        a, b = data
        if a.ndim >= 2 and b.ndim >= 2 and out.ndim >= 2:
            return _matmul_writer(a, b, out)
        return lambda: np.copyto(out, np.matmul(a, b))

    if op in ("exp", "log", "sqrt", "tanh"):
        (a,) = data
        if op != "log":
            _require_out_identity(rec)
        ufunc = {"exp": np.exp, "log": np.log,
                 "sqrt": np.sqrt, "tanh": np.tanh}[op]

        def kernel():
            ufunc(a, out=out)
        return kernel

    if op == "sigmoid":
        (a,) = data
        _require_out_identity(rec)

        def kernel():
            np.negative(a, out=out)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.divide(1.0, out, out=out)
        return kernel

    if op == "sin":
        (a,) = data
        cos_buf = (_require_retained(rec, "cos_data") if rec.out.requires_grad
                   else _scratch_or_cell(rec, "cos_data", a.shape, a.dtype))

        def kernel():
            np.cos(a, out=cos_buf)
            np.sin(a, out=out)
        return kernel

    if op == "cos":
        (a,) = data
        sin_buf = (_require_retained(rec, "sin_data") if rec.out.requires_grad
                   else _scratch_or_cell(rec, "sin_data", a.shape, a.dtype))

        def kernel():
            np.sin(a, out=sin_buf)
            np.cos(a, out=out)
        return kernel

    if op == "relu":
        (a,) = data
        mask = (_require_retained(rec, "mask") if rec.out.requires_grad
                else _scratch_or_cell(rec, "mask", a.shape, np.bool_))

        def kernel():
            np.greater(a, 0, out=mask)
            np.multiply(a, mask, out=out)
        return kernel

    if op == "leaky_relu":
        (a,) = data
        slope = rec.meta[0]
        scale = (_require_retained(rec, "scale") if rec.out.requires_grad
                 else _scratch_or_cell(rec, "scale", a.shape, DEFAULT_DTYPE))

        def kernel():
            mask = np.greater(a, 0)
            scale[...] = np.where(mask, 1.0, slope)
            np.multiply(a, scale, out=out)
        return kernel

    if op == "abs":
        (a,) = data
        sign = (_require_retained(rec, "sign") if rec.out.requires_grad
                else _scratch_or_cell(rec, "sign", a.shape, a.dtype))

        def kernel():
            np.sign(a, out=sign)
            np.absolute(a, out=out)
        return kernel

    if op == "clip":
        (a,) = data
        low, high = rec.meta
        mask = (_require_retained(rec, "mask") if rec.out.requires_grad
                else _scratch_or_cell(rec, "mask", a.shape, DEFAULT_DTYPE))

        def kernel():
            np.clip(a, low, high, out=out)
            mask.fill(1.0)
            if low is not None:
                np.multiply(mask, a >= low, out=mask)
            if high is not None:
                np.multiply(mask, a <= high, out=mask)
        return kernel

    if op == "sum":
        (a,) = data
        axis, keepdims = rec.meta
        return lambda: np.sum(a, axis=axis, out=out, keepdims=keepdims)

    if op == "max":
        (a,) = data
        axis, keepdims = rec.meta
        if rec.out.requires_grad and axis is None:
            # The eager backward for the full reduction reads the cached
            # scalar maximum, which cannot be refreshed in place.
            raise PlanUnsupported("max(axis=None) under grad")
        return lambda: np.max(a, axis=axis, out=out, keepdims=keepdims)

    if op == "reshape":
        (a,) = data
        if np.shares_memory(out, a):
            return None  # view of the live buffer: nothing to compute
        shape = out.shape
        return lambda: np.copyto(out, a.reshape(shape))

    if op == "transpose":
        (a,) = data
        if np.shares_memory(out, a):
            return None
        axes = rec.meta[0]
        return lambda: np.copyto(out, a.transpose(axes))

    if op == "broadcast_to":
        (a,) = data
        return lambda: np.copyto(out, a)

    if op == "getitem":
        (a,) = data
        key = rec.meta[0]
        shape = out.shape

        def kernel():
            src = a[key]
            if np.shape(src) != shape:
                raise ReplayMismatch("shape", "getitem result shape changed")
            np.copyto(out, src)
        return kernel

    if op == "concat":
        axis = rec.meta[0] % max(out.ndim, 1)
        views = []
        offset = 0
        for src in data:
            index = [slice(None)] * out.ndim
            index[axis] = slice(offset, offset + src.shape[axis])
            views.append(out[tuple(index)])
            offset += src.shape[axis]
        pairs = tuple(zip(views, data))

        def kernel():
            for view, src in pairs:
                np.copyto(view, src)
        return kernel

    if op == "stack":
        axis = rec.meta[0] % max(out.ndim, 1)
        pairs = tuple(zip(np.moveaxis(out, axis, 0), data))

        def kernel():
            for view, src in pairs:
                np.copyto(view, src)
        return kernel

    if op == "where":
        a, b = data
        cond = _require_retained(rec, "cond")

        def kernel():
            np.copyto(out, b)
            np.copyto(out, a, where=cond)
        return kernel

    if op == "gather_rows":
        (table,) = data
        idx = _require_retained(rec, "idx")
        return lambda: np.take(table, idx, axis=0, out=out)

    if op == "softmax":
        (a,) = data
        _require_out_identity(rec)
        axis = rec.meta[0]
        red_shape = list(out.shape)
        red_shape[axis % out.ndim] = 1
        mx = np.empty(red_shape, dtype=out.dtype)
        sm = np.empty(red_shape, dtype=out.dtype)

        def kernel():
            np.max(a, axis=axis, out=mx, keepdims=True)
            np.subtract(a, mx, out=out)
            np.exp(out, out=out)
            np.add.reduce(out, axis=axis, out=sm, keepdims=True)
            np.divide(out, sm, out=out)
        return kernel

    if op == "log_softmax":
        (a,) = data
        axis = rec.meta[0]
        soft = (_require_retained(rec, "soft") if rec.out.requires_grad
                else _scratch_or_cell(rec, "soft", out.shape, out.dtype))
        red_shape = list(out.shape)
        red_shape[axis % out.ndim] = 1
        mx = np.empty(red_shape, dtype=out.dtype)
        sm = np.empty(red_shape, dtype=out.dtype)

        def kernel():
            np.max(a, axis=axis, out=mx, keepdims=True)
            np.subtract(a, mx, out=out)
            np.exp(out, out=soft)
            np.add.reduce(soft, axis=axis, out=sm, keepdims=True)
            np.log(sm, out=sm)
            np.subtract(out, sm, out=out)
            np.exp(out, out=soft)
        return kernel

    raise PlanUnsupported(f"no replay kernel for op {op!r}")


def _build_unbroadcast(gshape, shape):
    """Precompiled mirror of :func:`tensor.unbroadcast` for static shapes.

    Returns ``None`` for the identity case, else a function mapping the
    upstream gradient to the reduced array, with the intermediate sums
    written into preallocated buffers (same ``np.add.reduce`` calls as
    eager, so values are bitwise identical).
    """
    gshape, shape = tuple(gshape), tuple(shape)
    if gshape == shape:
        return None
    steps = []
    cur = gshape
    extra = len(gshape) - len(shape)
    if extra > 0:
        ax = tuple(range(extra))
        cur = cur[extra:]
        steps.append((ax, False, np.empty(cur, dtype=DEFAULT_DTYPE)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and cur[i] != 1)
    if axes:
        cur = tuple(1 if i in axes else n for i, n in enumerate(cur))
        steps.append((axes, True, np.empty(cur, dtype=DEFAULT_DTYPE)))

    # np.sum delegates to np.add.reduce; calling the ufunc method directly
    # skips the _wrapreduction Python layer while producing the same bits.
    reduce = np.add.reduce

    def ub(g):
        for ax, keepdims, buf in steps:
            reduce(g, axis=ax, keepdims=keepdims, out=buf)
            g = buf
        return g.reshape(shape)

    return ub


def _acc_side(tensor, grad_view, gshape):
    """Build ``grad_buffer += unbroadcast(value, shape)`` for one operand.

    Returns ``None`` when the operand accumulates no gradient (mirroring
    the ``requires_grad`` gate in eager ``_accumulate``), else a function
    of the full-shaped gradient contribution.
    """
    buf = grad_view.get(id(tensor))
    if buf is None:
        return None
    ub = _build_unbroadcast(gshape, tensor.data.shape)
    if ub is None:
        def acc(value):
            np.add(buf, value, out=buf)
    else:
        def acc(value):
            np.add(buf, ub(value), out=buf)
    return acc


def _build_backward_kernel(rec, grad_view):
    """Compile one fired backward closure into preallocated ufunc calls.

    Every kernel reproduces the exact ufunc sequence of the eager closure
    it replaces (``+= (-g)`` becomes ``-= g``, which IEEE 754 defines as
    the same operation), reading upstream gradients from the plan's grad
    arena and writing temporaries into buffers allocated here once.
    Returns ``None`` for ops whose closures are cheap or too intricate to
    mirror — the caller falls back to firing the original closure.
    """
    op = rec.op
    out = rec.out
    g = grad_view.get(id(out))
    if g is None:
        return None
    cells = rec.cells
    gshape = out.data.shape
    ops_ = rec.operands

    def tmp():
        return np.empty(gshape, dtype=DEFAULT_DTYPE)

    if op in ("add", "sub"):
        acc_a = _acc_side(ops_[0], grad_view, gshape)
        acc_b = _acc_side(ops_[1], grad_view, gshape)
        if op == "add":
            if acc_a is not None and acc_b is not None:
                def kernel():
                    acc_a(g)
                    acc_b(g)
                return kernel
            acc = acc_a if acc_a is not None else acc_b
            return (lambda: acc(g)) if acc is not None else (lambda: None)
        gb = grad_view.get(id(ops_[1]))
        same_b = gb is not None and ops_[1].data.shape == gshape
        t_neg = None if (gb is None or same_b) else tmp()
        if gb is None:
            return (lambda: acc_a(g)) if acc_a is not None else (lambda: None)
        if same_b:
            if acc_a is not None:
                def kernel():
                    acc_a(g)
                    np.subtract(gb, g, out=gb)  # += (-g), IEEE-identical
                return kernel
            return lambda: np.subtract(gb, g, out=gb)

        def kernel():
            if acc_a is not None:
                acc_a(g)
            np.negative(g, out=t_neg)
            acc_b(t_neg)
        return kernel

    if op in ("mul", "div"):
        acc_a = _acc_side(ops_[0], grad_view, gshape)
        acc_b = _acc_side(ops_[1], grad_view, gshape)
        a_data, b_data = ops_[0].data, ops_[1].data
        t_a = tmp() if acc_a is not None else None
        t_b = tmp() if acc_b is not None else None
        if op == "mul":
            if acc_a is not None and acc_b is not None:
                def kernel():
                    np.multiply(g, b_data, out=t_a)
                    acc_a(t_a)
                    np.multiply(g, a_data, out=t_b)
                    acc_b(t_b)
            elif acc_a is not None:
                def kernel():
                    np.multiply(g, b_data, out=t_a)
                    acc_a(t_a)
            elif acc_b is not None:
                def kernel():
                    np.multiply(g, a_data, out=t_b)
                    acc_b(t_b)
            else:
                def kernel():
                    return None
        else:
            def kernel():
                if acc_a is not None:
                    np.divide(g, b_data, out=t_a)
                    acc_a(t_a)
                if acc_b is not None:
                    np.negative(g, out=t_b)
                    np.multiply(t_b, a_data, out=t_b)
                    np.divide(t_b, b_data ** 2, out=t_b)
                    acc_b(t_b)
        return kernel

    if op == "matmul":
        a_t, b_t = ops_
        a_data, b_data = a_t.data, b_t.data
        if a_data.ndim < 2 or b_data.ndim < 2:
            return None  # vector cases: fire the original closure
        ga = grad_view.get(id(a_t))
        gb = grad_view.get(id(b_t))
        bT = np.swapaxes(b_data, -1, -2)
        aT = np.swapaxes(a_data, -1, -2)
        # zeros (not empty): these probe matmuls only size the retained
        # temporaries, and garbage operands trip FP overflow warnings.
        t_ga = np.matmul(np.zeros(gshape, dtype=DEFAULT_DTYPE), bT) if ga is not None else None
        t_gb = np.matmul(aT, np.zeros(gshape, dtype=DEFAULT_DTYPE)) if gb is not None else None
        ub_a = _build_unbroadcast(t_ga.shape, a_data.shape) if ga is not None else None
        ub_b = _build_unbroadcast(t_gb.shape, b_data.shape) if gb is not None else None

        mm_a = _matmul_writer(g, bT, t_ga) if ga is not None else None
        mm_b = _matmul_writer(aT, g, t_gb) if gb is not None else None

        def side_a():
            mm_a()
            np.add(ga, t_ga if ub_a is None else ub_a(t_ga), out=ga)

        def side_b():
            mm_b()
            np.add(gb, t_gb if ub_b is None else ub_b(t_gb), out=gb)

        if ga is not None and gb is not None:
            def kernel():
                side_a()
                side_b()
            return kernel
        if ga is not None:
            return side_a
        if gb is not None:
            return side_b
        return lambda: None

    # Remaining compiled ops are unary in their gradient flow.
    ga = grad_view.get(id(ops_[0])) if ops_ else None
    if op in ("neg", "reshape", "transpose", "sum", "broadcast_to") and ga is None:
        return lambda: None
    if op == "neg":
        return lambda: np.subtract(ga, g, out=ga)  # += (-g)
    if op == "reshape":
        original = tuple(cells["original"])
        return lambda: np.add(ga, g.reshape(original), out=ga)
    if op == "transpose":
        inverse = cells["inverse"]
        return lambda: np.add(ga, g.transpose(inverse), out=ga)
    if op == "sum":
        axis, keepdims = rec.meta
        shape = ops_[0].data.shape
        if axis is None or keepdims:
            red = g
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = sorted(a % len(shape) for a in axes)
            exp_shape = list(g.shape)
            for a in axes:
                exp_shape.insert(a, 1)
            red = g.reshape(tuple(exp_shape))

        def kernel():
            np.add(ga, np.broadcast_to(red, shape), out=ga)
        return kernel
    if op == "broadcast_to":
        ub = _build_unbroadcast(gshape, ops_[0].data.shape)
        if ub is None:
            return lambda: np.add(ga, g, out=ga)
        return lambda: np.add(ga, ub(g), out=ga)
    if op == "getitem":
        if ga is None:
            return lambda: None
        key = cells["key"]
        a_data = ops_[0].data

        def kernel():
            # zeros_like (calloc) beats refilling a retained buffer: the
            # scatter-add touches few pages, fresh zero pages are lazy.
            full = np.zeros_like(a_data, dtype=DEFAULT_DTYPE)
            np.add.at(full, key, g)
            np.add(ga, full, out=ga)
        return kernel
    if op == "gather_rows":
        if ga is None:
            return lambda: None
        idx = cells["idx"]
        a_data = ops_[0].data

        def kernel():
            full = np.zeros_like(a_data, dtype=DEFAULT_DTYPE)
            np.add.at(full, idx, g)
            np.add(ga, full, out=ga)
        return kernel
    if op == "concat":
        axis = int(cells["axis"]) % out.data.ndim
        offsets = cells["offsets"]
        sides = []
        for t, start, stop in zip(ops_, offsets[:-1], offsets[1:]):
            gt = grad_view.get(id(t))
            if gt is None:
                continue
            index = [slice(None)] * out.data.ndim
            index[axis] = slice(int(start), int(stop))
            sides.append((gt, g[tuple(index)]))

        def kernel():
            for gt, view in sides:
                np.add(gt, view, out=gt)
        return kernel
    if op == "stack":
        axis = int(rec.meta[0]) % out.data.ndim
        mv = np.moveaxis(g, axis, 0)
        sides = [(grad_view[id(t)], mv[i]) for i, t in enumerate(ops_)
                 if id(t) in grad_view]

        def kernel():
            for gt, view in sides:
                np.add(gt, view, out=gt)
        return kernel
    if op == "where":
        cond = cells["cond"]
        acc_a = _acc_side(ops_[0], grad_view, gshape)
        acc_b = _acc_side(ops_[1], grad_view, gshape)
        t_a = tmp() if acc_a is not None else None
        t_b = tmp() if acc_b is not None else None
        notc = np.empty(cond.shape, dtype=bool) if acc_b is not None else None

        def kernel():
            if acc_a is not None:
                np.multiply(g, cond, out=t_a)
                acc_a(t_a)
            if acc_b is not None:
                np.logical_not(cond, out=notc)
                np.multiply(g, notc, out=t_b)
                acc_b(t_b)
        return kernel
    if ga is None:
        return None if op not in (
            "pow", "exp", "log", "sqrt", "sin", "cos", "tanh", "sigmoid",
            "relu", "leaky_relu", "abs", "clip") else (lambda: None)
    if op == "pow":
        exponent = cells["exponent"]
        a_data = ops_[0].data
        t = tmp()

        def kernel():
            np.multiply(g, exponent, out=t)
            np.multiply(t, a_data ** (exponent - 1), out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op in ("exp", "sin", "relu", "leaky_relu", "abs", "clip"):
        factor = cells[{"exp": "out_data", "sin": "cos_data", "relu": "mask",
                        "leaky_relu": "scale", "abs": "sign",
                        "clip": "mask"}[op]]
        t = tmp()

        def kernel():
            np.multiply(g, factor, out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op == "log":
        a_data = ops_[0].data
        t = tmp()

        def kernel():
            np.divide(g, a_data, out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op == "sqrt":
        out_data = cells["out_data"]
        t = tmp()
        t2 = tmp()

        def kernel():
            np.multiply(2.0, out_data, out=t2)
            np.divide(g, t2, out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op == "cos":
        sin_data = cells["sin_data"]
        t = tmp()

        def kernel():
            np.negative(g, out=t)
            np.multiply(t, sin_data, out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op == "tanh":
        out_data = cells["out_data"]
        t = tmp()

        def kernel():
            np.multiply(out_data, out_data, out=t)  # out ** 2 == np.square
            np.subtract(1.0, t, out=t)
            np.multiply(g, t, out=t)
            np.add(ga, t, out=ga)
        return kernel
    if op == "sigmoid":
        out_data = cells["out_data"]
        t = tmp()
        t2 = tmp()

        def kernel():
            np.multiply(g, out_data, out=t)
            np.subtract(1.0, out_data, out=t2)
            np.multiply(t, t2, out=t)
            np.add(ga, t, out=ga)
        return kernel
    return None


def _cse_key(rec):
    """Structural identity for CSE: op + operand identities + metadata.

    Only defined (returns non-None) for pure ops whose operands are all
    produced nodes or guarded parameters — leaf-fed nodes are excluded
    because two call sites may stream different leaf values through
    identical-looking slots.
    """
    if rec.op not in _CSE_OPS:
        return None
    ids = []
    for slot in rec.guards_slots:
        if slot[0] == "l":
            return None
        ids.append((slot[0], id(slot[1])))
    try:
        hash(rec.meta)
    except TypeError:
        return None
    return (rec.op, tuple(ids), rec.meta)


_CSE_AUX_CELLS = {"relu": ("mask",), "abs": ("sign",),
                  "sin": ("cos_data",), "cos": ("sin_data",)}


def _finalize(cap: _CaptureSession) -> "_Plan":
    """Turn a capture session into an executable plan (or refuse)."""
    if cap.unsupported:
        reasons = sorted(set(cap.unsupported))
        raise PlanUnsupported("; ".join(reasons[:3]))
    records = cap.records
    if not any(rec.op != "backward" for rec in records):
        raise PlanUnsupported("step recorded no tensor ops")

    produced = {}
    for rec in records:
        if rec.op != "backward":
            produced[id(rec.out)] = rec

    # Operand slots: node ('n'), guarded parameter ('p'), or leaf ('l').
    # Leaf buffers are privatized: ``Tensor(batch_array)`` shares memory
    # with the caller's array, so refreshing the captured buffer in place
    # on replay would corrupt the caller's data (e.g. the dataset batch
    # captured in step one).  The exception is a leaf that aliases a
    # produced node's buffer (``intermediate.detach()``) — that aliasing
    # is intentional, the replayed producer refreshes it for free.
    produced_data = {id(rec.out.data) for rec in records if rec.op != "backward"}
    privatized = set()
    for rec in records:
        slots = []
        for t in rec.operands:
            if id(t) in produced:
                slots.append(("n", t))
            elif t.requires_grad:
                slots.append(("p", t, t.data))
            else:
                if id(t) not in privatized and id(t.data) not in produced_data:
                    t.data = np.array(t.data, copy=True)
                privatized.add(id(t))
                slots.append(("l", t, t.data))
        rec.guards_slots = tuple(slots)
        rec.guards = tuple(_slot_guard(s) for s in slots)
        if rec.op == "getitem":
            rec.meta_guard = _getitem_guard(rec.meta[0])
        elif rec.op != "backward":
            rec.meta_guard = _meta_guard(rec.op, rec.meta)

    # Kernels + CSE: a structural duplicate's kernel becomes a buffer copy
    # from the original (plus copies of any backward-state arrays its own
    # retained closure reads).
    seen = {}
    cse_reused = 0
    fused_kernels = 0
    for rec in records:
        if rec.op == "backward":
            continue
        rec.kernel = _build_kernel(rec)
        if rec.op in ("sigmoid", "clip", "leaky_relu", "softmax", "log_softmax"):
            fused_kernels += 1
        key = _cse_key(rec)
        if key is None:
            continue
        original = seen.get(key)
        if original is None:
            seen[key] = rec
            continue
        copies = [(rec.out.data, original.out.data)]
        usable = True
        for cell in _CSE_AUX_CELLS.get(rec.op, ()):
            dup_aux = rec.cells.get(cell)
            orig_aux = original.cells.get(cell)
            if isinstance(dup_aux, np.ndarray) and isinstance(orig_aux, np.ndarray):
                copies.append((dup_aux, orig_aux))
            elif rec.out.requires_grad:
                usable = False
        if not usable:
            continue
        pairs = tuple(copies)

        def cse_kernel(pairs=pairs):
            for dst, src in pairs:
                np.copyto(dst, src)
        rec.kernel = cse_kernel
        cse_reused += 1

    # Backward schedule: the recorded closure firing order, plus zero-
    # preset gradient buffers for every tensor that accumulated a gradient
    # during capture (presetting a tensor eager mode would have left at
    # grad=None would change optimizer behaviour, so only observed
    # accumulation targets get buffers).
    fired_recs = []
    grad_pairs = []
    fired_fns = []
    compiled_backward = 0
    arena = None
    loss_tensor = None
    loss_view = None
    seed = None
    if cap.fired is not None:
        by_bfn = {id(rec.bfn): rec for rec in records
                  if rec.op != "backward" and rec.bfn is not None}
        for bfn in cap.fired:
            rec = by_bfn.get(id(bfn))
            if rec is None:
                raise PlanUnsupported(
                    "backward reached a closure outside the captured step "
                    "(graph built before capture?)")
            fired_recs.append((bfn, rec))
        grads = {}
        for rec in records:
            if rec.op == "backward":
                loss_tensor = rec.out
                continue
            for t in (rec.out, *rec.operands):
                if t.requires_grad and t.grad is not None:
                    grads[id(t)] = t
        if loss_tensor is None:
            raise PlanUnsupported("backward fired without a recorded seed node")
        # One flat arena for every gradient buffer: a single fill(0.0)
        # per step replaces hundreds of per-buffer zeroings.
        targets = list(grads.values())
        total = sum(t.data.size for t in targets)
        arena = np.zeros(total, dtype=DEFAULT_DTYPE)
        grad_view = {}
        offset = 0
        for t in targets:
            n = t.data.size
            grad_view[id(t)] = arena[offset:offset + n].reshape(t.data.shape)
            offset += n
        grad_pairs = [(t, grad_view[id(t)]) for t in targets]
        seed = np.ones_like(loss_tensor.data, dtype=DEFAULT_DTYPE)
        loss_view = grad_view.get(id(loss_tensor))
        if loss_view is None:
            raise PlanUnsupported("loss tensor accumulated no gradient")
        # Compile each fired closure into out=-style ufunc kernels where a
        # bitwise mirror exists; otherwise fire the retained closure
        # against its (stable) arena view.
        for bfn, rec in fired_recs:
            if id(rec.out) not in grad_view:
                raise PlanUnsupported(
                    f"fired {rec.op} closure whose output has no gradient")
            kernel = _build_backward_kernel(rec, grad_view)
            if kernel is None:
                kernel = (lambda bfn=bfn, gv=grad_view[id(rec.out)]: bfn(gv))
            else:
                compiled_backward += 1
            fired_fns.append(kernel)

    # Fused-chain stat: maximal runs of consecutive elementwise nodes that
    # execute back to back with no intervening allocation.
    chains = 0
    run = 0
    for rec in records:
        if rec.op in _ELEMENTWISE_OPS:
            run += 1
        else:
            if run > 1:
                chains += 1
            run = 0
    if run > 1:
        chains += 1

    arena_bytes = sum(rec.out.data.nbytes for rec in records
                      if rec.op != "backward")
    if arena is not None:
        arena_bytes += arena.nbytes

    plan = _Plan(records, fired_fns, grad_pairs, arena, loss_view, seed)
    plan.stats = {
        "nodes": sum(1 for rec in records if rec.op != "backward"),
        "backward_ops": len(fired_fns),
        "compiled_backward": compiled_backward,
        "grad_buffers": len(grad_pairs),
        "cse_reused": cse_reused,
        "fused_kernels": fused_kernels,
        "elementwise_chains": chains,
        "arena_bytes": int(arena_bytes),
    }
    return plan


# --------------------------------------------------------------------- #
# replay
# --------------------------------------------------------------------- #


class _Plan:
    """A finalized execution plan: dispatch cursor + kernels + backward."""

    def __init__(self, records, fired_fns, grad_pairs, arena, loss_view, seed):
        self._seq = tuple(records)
        self._n = len(self._seq)
        self._cursor = 0
        self._fired_fns = tuple(fired_fns)
        self._grad_pairs = tuple(grad_pairs)
        self._arena = arena
        self._loss_view = loss_view
        self._seed = seed
        self._saved = None
        self._prev_handler = None
        self.stats = {}

    # -- dispatch ------------------------------------------------------ #

    def _next(self, op):
        i = self._cursor
        if i >= self._n:
            raise ReplayMismatch("sequence_overrun", f"extra {op} after plan end")
        rec = self._seq[i]
        if rec.op != op:
            raise ReplayMismatch(
                "sequence_mismatch", f"step {i}: expected {rec.op}, got {op}")
        self._cursor = i + 1
        return rec

    # _dispatch1/2/meta are the replay hot path (hundreds of calls per
    # step); _next is inlined into each to save a Python frame per op.

    def _dispatch1(self, op, a):
        i = self._cursor
        if i >= self._n:
            raise ReplayMismatch("sequence_overrun", f"extra {op} after plan end")
        rec = self._seq[i]
        if rec.op != op:
            raise ReplayMismatch(
                "sequence_mismatch", f"step {i}: expected {rec.op}, got {op}")
        self._cursor = i + 1
        rec.guards[0](a)
        kernel = rec.kernel
        if kernel is not None:
            kernel()
        return rec.out

    def _dispatch2(self, op, a, b):
        i = self._cursor
        if i >= self._n:
            raise ReplayMismatch("sequence_overrun", f"extra {op} after plan end")
        rec = self._seq[i]
        if rec.op != op:
            raise ReplayMismatch(
                "sequence_mismatch", f"step {i}: expected {rec.op}, got {op}")
        self._cursor = i + 1
        guards = rec.guards
        guards[0](a)
        guards[1](b)
        kernel = rec.kernel
        if kernel is not None:
            kernel()
        return rec.out

    def _dispatch_meta(self, op, a, meta):
        i = self._cursor
        if i >= self._n:
            raise ReplayMismatch("sequence_overrun", f"extra {op} after plan end")
        rec = self._seq[i]
        if rec.op != op:
            raise ReplayMismatch(
                "sequence_mismatch", f"step {i}: expected {rec.op}, got {op}")
        self._cursor = i + 1
        rec.meta_guard(meta)
        rec.guards[0](a)
        kernel = rec.kernel
        if kernel is not None:
            kernel()
        return rec.out

    def _dispatch_multi(self, op, tensors, axis):
        rec = self._next(op)
        rec.meta_guard((axis, len(tensors)))
        for guard, t in zip(rec.guards, tensors):
            guard(t)
        rec.kernel()
        return rec.out

    def _dispatch_where(self, condition, a, b):
        rec = self._next("where")
        cond = rec.cells["cond"]
        src = condition.data if isinstance(condition, Tensor) else condition
        src = np.asarray(src, dtype=bool)
        if src.shape != cond.shape:
            raise ReplayMismatch("shape", "where condition shape changed")
        if src is not cond:
            np.copyto(cond, src)
        guards = rec.guards
        guards[0](a)
        guards[1](b)
        rec.kernel()
        return rec.out

    def _dispatch_gather(self, table, indices):
        rec = self._next("gather_rows")
        idx = rec.cells["idx"]
        src = np.asarray(indices.data if isinstance(indices, Tensor) else indices,
                         dtype=np.int64)
        if src.shape != idx.shape:
            raise ReplayMismatch("shape", "gather_rows index shape changed")
        if src is not idx:
            np.copyto(idx, src)
        rec.guards[0](table)
        rec.kernel()
        return rec.out

    # -- backward ------------------------------------------------------ #

    def run_backward(self):
        self._arena.fill(0.0)
        for t, buf in self._grad_pairs:
            t.grad = buf
        np.add(self._loss_view, self._seed, out=self._loss_view)
        for fn in self._fired_fns:
            fn()

    def reset_grads(self):
        """Restore pre-step gradient state after a failed replay attempt.

        The caller zeroes parameter grads *outside* the step function, so
        ``None`` is the correct pre-step state for every plan tensor; the
        eager fallback then re-accumulates from scratch (no double
        counting even when the mismatch fired after backward ran).
        """
        for t, _ in self._grad_pairs:
            t.grad = None

    # -- patching ------------------------------------------------------ #

    def _install(self):
        global _BUSY
        _BUSY = True
        self._cursor = 0
        self._saved = {name: getattr(Tensor, name) for name in _PATCHED_ATTRS}
        plan = self
        # The patched arithmetic methods inline the dispatch body (rather
        # than forwarding to _dispatch1/2) so each replayed op costs one
        # Python frame, not two — this path runs hundreds of times per
        # step and dominates replay time at small tensor sizes.
        seq, n = self._seq, self._n

        def bin2(op):
            def method(self, other):
                i = plan._cursor
                if i >= n:
                    raise ReplayMismatch("sequence_overrun",
                                         f"extra {op} after plan end")
                rec = seq[i]
                if rec.op != op:
                    raise ReplayMismatch(
                        "sequence_mismatch",
                        f"step {i}: expected {rec.op}, got {op}")
                plan._cursor = i + 1
                guards = rec.guards
                guards[0](self)
                guards[1](other)
                kernel = rec.kernel
                if kernel is not None:
                    kernel()
                return rec.out
            return method

        def un1(op):
            def method(self):
                i = plan._cursor
                if i >= n:
                    raise ReplayMismatch("sequence_overrun",
                                         f"extra {op} after plan end")
                rec = seq[i]
                if rec.op != op:
                    raise ReplayMismatch(
                        "sequence_mismatch",
                        f"step {i}: expected {rec.op}, got {op}")
                plan._cursor = i + 1
                rec.guards[0](self)
                kernel = rec.kernel
                if kernel is not None:
                    kernel()
                return rec.out
            return method

        Tensor.__add__ = bin2("add")
        Tensor.__radd__ = bin2("add")
        Tensor.__sub__ = bin2("sub")
        Tensor.__mul__ = bin2("mul")
        Tensor.__rmul__ = bin2("mul")
        Tensor.__truediv__ = bin2("div")
        Tensor.__matmul__ = bin2("matmul")
        for attr, op in (("__neg__", "neg"), ("exp", "exp"), ("log", "log"),
                         ("sqrt", "sqrt"), ("sin", "sin"), ("cos", "cos"),
                         ("tanh", "tanh"), ("sigmoid", "sigmoid"),
                         ("relu", "relu"), ("abs", "abs")):
            setattr(Tensor, attr, un1(op))

        def r_pow(self, exponent):
            return plan._dispatch_meta("pow", self, (exponent,))

        def r_leaky(self, negative_slope=0.01):
            return plan._dispatch_meta("leaky_relu", self,
                                       (float(negative_slope),))

        def r_clip(self, low, high):
            return plan._dispatch_meta("clip", self, (low, high))

        def r_sum(self, axis=None, keepdims=False):
            return plan._dispatch_meta("sum", self,
                                       (_norm_axis(axis), bool(keepdims)))

        def r_max(self, axis=None, keepdims=False):
            return plan._dispatch_meta("max", self,
                                       (_norm_axis(axis), bool(keepdims)))

        def r_reshape(self, *shape):
            return plan._dispatch_meta("reshape", self, (_norm_shape(shape),))

        def r_transpose(self, *axes):
            return plan._dispatch_meta(
                "transpose", self, (_norm_axes(axes, self.data.ndim),))

        def r_bcast(self, shape):
            return plan._dispatch_meta("broadcast_to", self, (tuple(shape),))

        def r_getitem(self, key):
            return plan._dispatch_meta("getitem", self, (key,))

        def r_backward(self, grad=None):
            rec = plan._next("backward")
            if self is not rec.out or grad is not None:
                raise ReplayMismatch("operand_mismatch",
                                     "backward target or seed changed")
            plan.run_backward()

        Tensor.__pow__ = r_pow
        Tensor.leaky_relu = r_leaky
        Tensor.clip = r_clip
        Tensor.sum = r_sum
        Tensor.max = r_max
        Tensor.reshape = r_reshape
        Tensor.transpose = r_transpose
        Tensor.broadcast_to = r_bcast
        Tensor.__getitem__ = r_getitem
        Tensor.backward = r_backward
        self._prev_handler = set_symbolic_handler(_ReplayHandler(self))

    def _uninstall(self):
        global _BUSY
        for name, fn in self._saved.items():
            setattr(Tensor, name, fn)
        set_symbolic_handler(self._prev_handler)
        _BUSY = False

    def replay(self, fn, args):
        self._install()
        try:
            result = fn(*args)
            if self._cursor != self._n:
                raise ReplayMismatch(
                    "sequence_underrun",
                    f"step ended after {self._cursor}/{self._n} plan ops")
        finally:
            self._uninstall()
        return result


class _ReplayHandler:
    """Routes the module-level ops into plan dispatch during replay."""

    def __init__(self, plan: _Plan):
        self.plan = plan

    def concat(self, tensors, axis):
        return self.plan._dispatch_multi("concat", tensors, axis)

    def stack(self, tensors, axis):
        return self.plan._dispatch_multi("stack", tensors, axis)

    def where(self, condition, a, b):
        if condition is True:  # maximum/minimum probe: stay on eager path
            return None
        return self.plan._dispatch_where(condition, a, b)

    def gather_rows(self, table, indices):
        return self.plan._dispatch_gather(table, indices)

    def softmax(self, x, axis):
        return self.plan._dispatch_meta("softmax", x, (axis,))

    def log_softmax(self, x, axis):
        return self.plan._dispatch_meta("log_softmax", x, (axis,))


# --------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------- #


def _signature(args, key):
    spec = []
    for a in args:
        if isinstance(a, Tensor):
            spec.append(("T", a.data.shape, str(a.data.dtype)))
        elif isinstance(a, np.ndarray):
            spec.append(("A", a.shape, str(a.dtype)))
        else:
            spec.append(("O", type(a).__name__))
    return (bool(is_grad_enabled()), tuple(spec), tuple(key))


class _PlanState:
    __slots__ = ("sig", "plan", "failures", "eager_only", "reason")

    def __init__(self, sig):
        self.sig = sig
        self.plan = None
        self.failures = 0
        self.eager_only = False
        self.reason = ""


class ExecutionEngine:
    """Capture-once / replay-many executor for a fixed step function.

    ``run(fn, *args)`` first executes ``fn`` eagerly under instrumentation
    to record a plan for the argument signature (shapes, dtypes, grad
    mode, caller key), then replays that plan on subsequent calls with
    the same signature.  Any guard violation falls back to eager for that
    call (and logs a ``plan_invalidated`` record); repeated violations
    demote the signature to eager-only.
    """

    def __init__(self, label="engine", logger=None, *, max_plans=8,
                 max_failures=3, rngs=()):
        self.label = label
        self.logger = logger
        self.max_plans = max_plans
        self.max_failures = max_failures
        self.rngs = tuple(rngs)
        self._states = {}
        self._budget_logged = set()
        self.stats = {"captures": 0, "replays": 0, "eager_steps": 0,
                      "invalidations": 0}

    # -- logging ------------------------------------------------------- #

    def _log(self, event, **fields):
        if self.logger is not None:
            self.logger.log(event, engine=self.label, **fields)

    @staticmethod
    def _sig_repr(sig):
        grad, spec, key = sig
        return {"grad": grad, "args": [list(map(str, s)) for s in spec],
                "key": list(map(str, key))}

    # -- rng snapshots -------------------------------------------------- #

    def _snapshot_rngs(self):
        return [rng.bit_generator.state for rng in self.rngs]

    def _restore_rngs(self, snapshot):
        for rng, state in zip(self.rngs, snapshot):
            rng.bit_generator.state = state

    # -- main entry ---------------------------------------------------- #

    def run(self, fn, *args, key=()):
        if _BUSY or get_symbolic_handler() is not None:
            return fn(*args)
        sig = _signature(args, key)
        state = self._states.get(sig)
        if state is None:
            if len(self._states) >= self.max_plans:
                if sig not in self._budget_logged:
                    self._budget_logged.add(sig)
                    self._log("plan_budget", signature=self._sig_repr(sig),
                              max_plans=self.max_plans)
                self.stats["eager_steps"] += 1
                return fn(*args)
            state = _PlanState(sig)
            self._states[sig] = state
            return self._capture(state, fn, args)
        if state.eager_only or state.plan is None:
            self.stats["eager_steps"] += 1
            return fn(*args)
        return self._replay(state, fn, args)

    def _capture(self, state, fn, args):
        # Lazy import (like _notify_trace): repro.obs pulls the op tracer,
        # which imports back into autodiff — a cycle at module-load time.
        from ..obs.spans import finish_span, start_span

        cap_span = start_span("engine_capture", attrs={"engine": self.label})
        cap = _CaptureSession()
        cap.install()
        try:
            result = fn(*args)
        except BaseException:
            self._states.pop(state.sig, None)
            finish_span(cap_span, status="error")
            raise
        finally:
            cap.uninstall()
        try:
            state.plan = _finalize(cap)
        except PlanUnsupported as exc:
            state.eager_only = True
            state.reason = str(exc)
            self.stats["invalidations"] += 1
            self._log("plan_invalidated", signature=self._sig_repr(state.sig),
                      phase="capture", reason=str(exc),
                      failures=state.failures)
            finish_span(cap_span, status="unsupported", reason=str(exc))
        else:
            self.stats["captures"] += 1
            self._log("plan_captured", signature=self._sig_repr(state.sig),
                      **state.plan.stats)
            finish_span(cap_span, nodes=state.plan.stats.get("nodes"))
        return _copy_result(result)

    def _replay(self, state, fn, args):
        from ..obs.spans import finish_span, start_span

        replay_span = start_span("engine_replay", attrs={"engine": self.label})
        snapshot = self._snapshot_rngs()
        started = perf_counter()
        try:
            result = state.plan.replay(fn, args)
        except ReplayMismatch as exc:
            self._restore_rngs(snapshot)
            state.plan.reset_grads()
            state.failures += 1
            self.stats["invalidations"] += 1
            self._log("plan_invalidated", signature=self._sig_repr(state.sig),
                      phase="replay", reason=exc.reason,
                      detail=str(exc), failures=state.failures)
            if state.failures >= self.max_failures:
                state.eager_only = True
                state.reason = exc.reason
                state.plan = None
                self._log("plan_demoted", signature=self._sig_repr(state.sig),
                          reason=exc.reason)
            self.stats["eager_steps"] += 1
            # The span covers the whole call, eager fallback included —
            # the "invalidated" status is what makes it visible.
            try:
                return fn(*args)
            finally:
                finish_span(replay_span, status="invalidated", reason=exc.reason)
        self.stats["replays"] += 1
        self._notify_trace(perf_counter() - started)
        finish_span(replay_span)
        return _copy_result(result)

    def _notify_trace(self, seconds):
        try:
            from ..obs.trace import record_replay
        except Exception:  # pragma: no cover - obs is optional at runtime
            return
        record_replay(self.label, seconds)

    # -- introspection -------------------------------------------------- #

    def describe(self):
        plans = []
        for state in self._states.values():
            entry = {"signature": self._sig_repr(state.sig),
                     "eager_only": state.eager_only,
                     "failures": state.failures}
            if state.reason:
                entry["reason"] = state.reason
            if state.plan is not None:
                entry["stats"] = dict(state.plan.stats)
            plans.append(entry)
        return {"label": self.label, "stats": dict(self.stats),
                "plans": plans}


# --------------------------------------------------------------------- #
# model wrapper
# --------------------------------------------------------------------- #


from ..nn.module import Module  # noqa: E402  (Module only needs Tensor)


class CompiledModel(Module):
    """Wrap a forecaster so no-grad ``model(x, t)`` calls replay a plan.

    Training goes through :class:`ExecutionEngine` inside the trainer;
    this wrapper covers inference surfaces (``ForecastServer``,
    ``Trainer.predict``) where the call shape repeats across requests.
    State-dict and parameter naming delegate to the wrapped model
    *without* an ``inner.`` prefix so checkpoints and server warm reloads
    stay key-compatible with the uncompiled model.
    """

    def __init__(self, model, *, label="compiled_model", logger=None,
                 max_plans=8, max_failures=3):
        super().__init__()
        self.inner = model
        self._engine = ExecutionEngine(
            label, logger, max_plans=max_plans, max_failures=max_failures,
            rngs=discover_rngs(model))

    def _step(self, x, t):
        return self.inner(x, t)

    def forward(self, x, t=None, **kwargs):
        if kwargs or is_grad_enabled() or get_symbolic_handler() is not None:
            return self.inner(x, t, **kwargs) if kwargs else self.inner(x, t)
        return self._engine.run(self._step, x, t,
                                key=(bool(self.inner.training),))

    # -- transparent delegation (checkpoint key compatibility) ---------- #

    def named_parameters(self, prefix=""):
        return self.inner.named_parameters(prefix)

    def state_dict(self):
        return self.inner.state_dict()

    def load_state_dict(self, state):
        return self.inner.load_state_dict(state)

    def train(self, mode=True):
        self.training = mode
        self.inner.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def __deepcopy__(self, memo):
        import copy

        clone = CompiledModel(
            copy.deepcopy(self.inner, memo),
            label=self._engine.label,
            logger=self._engine.logger,
            max_plans=self._engine.max_plans,
            max_failures=self._engine.max_failures,
        )
        clone.training = self.training
        memo[id(self)] = clone
        return clone

    @property
    def engine(self):
        return self._engine
