"""Composite differentiable functions built on top of the primitives.

These mirror ``torch.nn.functional``: stateless operations used by both the
core TGCRN modules and the baselines.
"""

from __future__ import annotations

import numpy as np

from .tensor import DEFAULT_DTYPE, Tensor, ensure_tensor, get_symbolic_handler, is_grad_enabled


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = ensure_tensor(x)
    handler = get_symbolic_handler()
    if handler is not None:
        symbolic = handler.softmax(x, axis)
        if symbolic is not None:
            return symbolic
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward_fn(grad):
        # d softmax: s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    x = ensure_tensor(x)
    handler = get_symbolic_handler()
    if handler is not None:
        symbolic = handler.log_softmax(x, axis)
        if symbolic is not None:
            return symbolic
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward_fn(grad):
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward_fn)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at eval, scaled mask during training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(DEFAULT_DTYPE) / keep
    return x * Tensor(mask)


def mae_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error — the paper's L_error (Eq. 18)."""
    target = ensure_tensor(target)
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = ensure_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss, useful for heavy-tailed traffic flows."""
    target = ensure_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = (diff * diff) * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    from .tensor import where

    return where(abs_diff.data <= delta, quadratic, linear).mean()


def gumbel_softmax(
    logits: Tensor,
    temperature: float,
    rng: np.random.Generator,
    hard: bool = False,
    axis: int = -1,
) -> Tensor:
    """Gumbel-softmax relaxation used by the GTS baseline's discrete graphs.

    During forward with ``hard=True`` the output is one-hot, but gradients
    flow through the soft sample (straight-through estimator).
    """
    uniform = rng.random(logits.shape)
    gumbel_noise = -np.log(-np.log(uniform + 1e-20) + 1e-20)
    noisy = logits + Tensor(gumbel_noise)
    soft = softmax(noisy * (1.0 / temperature), axis=axis)
    if not hard:
        return soft
    hard_data = (soft.data == soft.data.max(axis=axis, keepdims=True)).astype(DEFAULT_DTYPE)
    # Straight-through: hard output, soft gradient.
    return soft + Tensor(hard_data - soft.data)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain (non-differentiable) one-hot encoder for integer indices."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=DEFAULT_DTYPE)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def l2_norm(x: Tensor, axis: int = -1, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` with a numerical floor."""
    return ((x * x).sum(axis=axis, keepdims=keepdims) + eps).sqrt()


def pairwise_euclidean(a: Tensor, b: Tensor) -> Tensor:
    """Distance between two batches of vectors, shape (..., d) -> (...,)."""
    diff = a - b
    return l2_norm(diff, axis=-1)
