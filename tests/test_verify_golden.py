"""Determinism & golden-trace harness tests (repro.verify.determinism)."""

from pathlib import Path

import numpy as np
import pytest

from repro.nn import Linear
from repro.verify import (
    GoldenTrace,
    compare_traces,
    load_trace,
    named_rng,
    run_golden_trace,
    save_trace,
    state_hash,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestStateHash:
    def test_identical_inits_share_hash(self):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        b = Linear(3, 2, rng=np.random.default_rng(0))
        assert state_hash(a) == state_hash(b)

    def test_single_bit_flip_changes_hash(self):
        model = Linear(3, 2, rng=np.random.default_rng(0))
        before = state_hash(model)
        model.weight.data[0, 0] = np.nextafter(model.weight.data[0, 0], np.inf)
        assert state_hash(model) != before

    def test_accepts_state_dict(self):
        model = Linear(3, 2, rng=np.random.default_rng(0))
        assert state_hash(model) == state_hash(model.state_dict())

    def test_hash_covers_names(self):
        payload = np.ones((2, 2))
        assert state_hash({"a": payload}) != state_hash({"b": payload})


class TestNamedRng:
    def test_same_name_same_stream(self):
        a = named_rng(7, "shuffle").random(5)
        b = named_rng(7, "shuffle").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent_streams(self):
        a = named_rng(7, "shuffle").random(5)
        b = named_rng(7, "init").random(5)
        assert not np.array_equal(a, b)

    def test_seed_still_matters(self):
        a = named_rng(7, "shuffle").random(5)
        b = named_rng(8, "shuffle").random(5)
        assert not np.array_equal(a, b)


class TestGoldenTrace:
    def test_run_is_bitwise_reproducible(self):
        first = run_golden_trace()
        second = run_golden_trace()
        assert compare_traces(first, second, rtol=0.0, atol=0.0, strict_hash=True) == []

    def test_matches_committed_fixture(self):
        """The regression gate for trainer/optimizer refactors.

        Regenerate after an *intentional* change with::

            PYTHONPATH=src python -m repro.cli verify --update-golden
        """
        golden = load_trace(GOLDEN_DIR / "tiny_tgcrn_loss.json")
        actual = run_golden_trace(**{
            k: golden.config[k] for k in ("epochs", "seed", "num_nodes", "num_days")
        })
        problems = compare_traces(actual, golden, rtol=1e-6)
        assert problems == [], "\n".join(problems)

    def test_save_load_roundtrip(self, tmp_path):
        trace = GoldenTrace(
            config={"epochs": 1},
            train_losses=[0.5, 0.25],
            val_maes=[1.0],
            final_state_hash="abc123",
        )
        save_trace(tmp_path / "t.json", trace)
        assert load_trace(tmp_path / "t.json") == trace

    def test_compare_flags_curve_drift(self):
        golden = GoldenTrace(config={}, train_losses=[1.0, 0.5], val_maes=[2.0])
        drifted = GoldenTrace(config={}, train_losses=[1.0, 0.6], val_maes=[2.0])
        problems = compare_traces(drifted, golden, rtol=1e-6)
        assert len(problems) == 1 and "train_losses[1]" in problems[0]

    def test_compare_flags_length_and_config_mismatch(self):
        golden = GoldenTrace(config={"epochs": 2}, train_losses=[1.0, 0.5], val_maes=[2.0])
        other = GoldenTrace(config={"epochs": 3}, train_losses=[1.0], val_maes=[2.0])
        problems = compare_traces(other, golden)
        assert any("config" in p for p in problems)
        assert any("length" in p for p in problems)

    def test_strict_hash_mode(self):
        golden = GoldenTrace(config={}, train_losses=[1.0], val_maes=[], final_state_hash="x")
        other = GoldenTrace(config={}, train_losses=[1.0], val_maes=[], final_state_hash="y")
        assert compare_traces(other, golden) == []
        assert compare_traces(other, golden, strict_hash=True) != []

    @pytest.mark.slow
    def test_longer_trace_reproducible(self):
        first = run_golden_trace(epochs=5, num_days=5)
        second = run_golden_trace(epochs=5, num_days=5)
        assert compare_traces(first, second, rtol=0.0, atol=0.0, strict_hash=True) == []


class TestCompiledGolden:
    """The ``compile=True`` twin of the loss-curve determinism gate.

    The capture/replay engine (docs/engine.md) promises the *same
    arithmetic* as eager mode, so the golden-trace machinery needs no
    relaxation: a compiled run must match an eager run — and the
    committed fixture — bitwise, including the final state hash.
    """

    def test_compiled_run_bitwise_matches_eager(self):
        eager = run_golden_trace()
        compiled = run_golden_trace(compile=True)
        assert compare_traces(compiled, eager, rtol=0.0, atol=0.0,
                              strict_hash=True) == []

    def test_compiled_run_matches_committed_fixture(self):
        golden = load_trace(GOLDEN_DIR / "tiny_tgcrn_loss.json")
        actual = run_golden_trace(compile=True, **{
            k: golden.config[k] for k in ("epochs", "seed", "num_nodes", "num_days")
        })
        problems = compare_traces(actual, golden, rtol=1e-6)
        assert problems == [], "\n".join(problems)

    def test_compiled_kill_and_resume_matches_eager_straight_run(self, tmp_path):
        """Crash mid-run under the engine, resume under the engine, and
        the result must still be hash-identical to an *eager*
        uninterrupted run: checkpointing never sees the engine (plans
        wrap the step function, not the model), and replayed arithmetic
        is bitwise-eager."""
        from repro.core import TGCRN
        from repro.data import load_task
        from repro.nn import state_hash
        from repro.resilience import AbortInjector, GuardedTrainer, SimulatedCrash
        from repro.training import Trainer, TrainingConfig

        seed, epochs = 17, 3
        task = load_task("hzmetro", num_nodes=4, num_days=4, seed=seed)

        def model():
            return TGCRN(
                num_nodes=task.num_nodes, in_dim=task.in_dim,
                out_dim=task.out_dim, horizon=task.horizon, hidden_dim=4,
                num_layers=1, node_dim=3, time_dim=3,
                steps_per_day=task.steps_per_day,
                rng=named_rng(seed, "compiled-golden-model"),
            )

        def config(**overrides):
            base = dict(epochs=epochs, batch_size=8, seed=seed)
            base.update(overrides)
            return TrainingConfig(**base)

        straight = model()
        straight_history = Trainer(config()).fit(straight, task)

        ckpt = str(tmp_path / "state.npz")
        killed = model()
        with pytest.raises(SimulatedCrash):
            GuardedTrainer(Trainer(config(compile=True, checkpoint_path=ckpt))).fit(
                killed, task, fault_hook=AbortInjector(epoch=1))

        resumed = model()
        resumed_history = GuardedTrainer(
            Trainer(config(compile=True, checkpoint_path=ckpt))
        ).fit(resumed, task, resume=True)

        assert state_hash(resumed) == state_hash(straight)
        assert resumed_history.train_losses == straight_history.train_losses
        assert resumed_history.val_maes == straight_history.val_maes
