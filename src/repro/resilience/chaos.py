"""Deterministic fault injectors: prove the recovery paths actually fire.

Resilience code that is never exercised is decoration.  Every injector
here is seedable/deterministic so tests (and the ``repro.cli chaos``
smoke harness) can stage a precise failure — NaN gradients at a chosen
step, a SIGTERM-style abort between epochs, checkpoint truncation or
bit-flips, transient dataset-read failures — and assert the matching
recovery path (sentinel → rollback, checkpoint → resume, integrity hash
→ :class:`~repro.nn.CheckpointCorruptionError`, IO retry) engages.

Injector catalog (docs/resilience.md):

==========================  ===============================================
:class:`NaNGradientInjector`  poisons a gradient at (epoch, batch)
:class:`AbortInjector`        raises :class:`SimulatedCrash` after an epoch
:func:`corrupt_checkpoint`    truncates or bit-flips a checkpoint on disk
:class:`FlakyReader`          fails the first N dataset reads transiently
:class:`ChaosSchedule`        composes injectors into one ``fault_hook``
==========================  ===============================================
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


class SimulatedCrash(RuntimeError):
    """A SIGTERM/SIGKILL stand-in raised between epochs by :class:`AbortInjector`.

    Deliberately *not* an ``Exception`` subclass the trainer handles:
    like a real kill it unwinds straight through ``Trainer.fit``, leaving
    only the atomic checkpoint behind.
    """


class TransientIOError(OSError):
    """An injected transient read failure (flaky NFS, network blip)."""


class ChaosSchedule:
    """Compose injectors into a single ``fault_hook`` callable.

    ``Trainer.fit`` invokes the hook as ``hook(point, **context)`` at
    ``"after_backward"`` (model, epoch, batch) and ``"epoch_end"``
    (model, epoch); every member injector sees every call.
    """

    def __init__(self, *injectors):
        self.injectors = list(injectors)

    def __call__(self, point: str, **context) -> None:
        # Lock-order sanitizer seam: a fault injected while the caller
        # holds a lock can deadlock recovery, so sanitized runs record
        # it.  No-op (getattr miss) outside sanitized runs.
        import threading

        hook = getattr(threading, "_repro_lockorder_checkpoint", None)
        if hook is not None:
            hook(f"fault_hook:{point}")
        for injector in self.injectors:
            injector(point, **context)


class NaNGradientInjector:
    """Overwrite one parameter's gradient with NaN at (epoch, batch).

    Fires at the ``"after_backward"`` hook point — after autodiff, before
    gradient clipping — exactly where a numerically diverged backward
    pass would surface.  ``once=True`` (default) arms it for a single
    shot so a rolled-back retry passes clean; ``once=False`` re-fires
    every attempt (for testing bounded-retry exhaustion).
    """

    def __init__(self, epoch: int, batch: int = 0, once: bool = True):
        self.epoch = epoch
        self.batch = batch
        self.once = once
        self.fired = 0

    def __call__(self, point: str, **context) -> None:
        if point != "after_backward":
            return
        if context["epoch"] != self.epoch or context["batch"] != self.batch:
            return
        if self.once and self.fired:
            return
        for param in context["model"].parameters():
            if param.grad is not None:
                # analyze: allow[RL007] fault injection mutates gradients on purpose
                param.grad[...] = np.nan
                self.fired += 1
                return


class AbortInjector:
    """Raise :class:`SimulatedCrash` at the end of a chosen epoch.

    The hook point runs *after* the checkpoint write, mimicking a process
    killed between epochs: the checkpoint survives, the process state is
    gone, and ``resume=True`` must reconstruct the run bit-compatibly.
    """

    def __init__(self, epoch: int, once: bool = True):
        self.epoch = epoch
        self.once = once
        self.fired = 0

    def __call__(self, point: str, **context) -> None:
        if point != "epoch_end" or context["epoch"] != self.epoch:
            return
        if self.once and self.fired:
            return
        self.fired += 1
        raise SimulatedCrash(f"injected abort after epoch {self.epoch}")


def corrupt_checkpoint(path: str | Path, mode: str = "truncate", seed: int = 0, flips: int = 16) -> None:
    """Deterministically damage a checkpoint file on disk.

    ``mode="truncate"`` keeps only the first half of the file (a crash
    mid-copy / full disk); ``mode="bitflip"`` XOR-flips one bit at
    ``flips`` seeded positions (bit rot).  Used by tests to prove the
    integrity hash rejects damaged state instead of resuming from it.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if mode == "truncate":
        # analyze: allow[RL003] corrupting the file is the whole point here
        path.write_bytes(bytes(data[: len(data) // 2]))
    elif mode == "bitflip":
        rng = np.random.default_rng(seed)
        for position in rng.integers(0, len(data), size=flips):
            data[int(position)] ^= 1 << int(rng.integers(0, 8))
        # analyze: allow[RL003] corrupting the file is the whole point here
        path.write_bytes(bytes(data))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; use 'truncate' or 'bitflip'")


class FlakyReader:
    """Archive opener that fails the first ``failures`` calls transiently.

    Drop-in for the ``reader`` seam of
    :func:`repro.data.io.load_dataset`: raises :class:`TransientIOError`
    deterministically until its budget is spent, then delegates to
    ``np.load``.  ``attempts`` counts every call for assertions.
    """

    def __init__(self, failures: int = 1):
        if failures < 0:
            raise ValueError("failures must be >= 0")
        self.remaining = failures
        self.attempts = 0

    def __call__(self, path):
        self.attempts += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientIOError(f"injected transient read failure for {path}")
        return np.load(path)
