"""Loaders for the *real* datasets' public file formats.

The evaluation data itself cannot ship with this reproduction (see
DESIGN.md §2), but users who obtain it can plug it straight in:

* **Metro (HZMetro / SHMetro)** — the PVCGN release distributes
  ``train/val/test.pkl`` dictionaries with ``x``/``y`` arrays of shape
  (S, P, N, 2) and ``xtime``/``ytime`` timestamp arrays.  We also accept
  the simpler "raw series" layout: a single array (T, N, 2).
* **UCI Electricity (LD2011_2014.txt)** — semicolon-separated, one row
  per 15-minute step, first column a timestamp, decimal commas.

Each loader returns a :class:`~repro.data.synthetic.SyntheticDataset`
-compatible container (values + calendar fields), so everything
downstream — windowing, scalers, Trainer, benches — works unchanged.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from .datasets import ForecastingTask
from .scalers import StandardScaler
from .synthetic import SyntheticDataset
from .windows import WindowSet, make_windows


def load_raw_series(
    values: np.ndarray,
    steps_per_day: int,
    start_weekday: int = 0,
) -> SyntheticDataset:
    """Wrap a (T, N, d) array in the dataset container used everywhere."""
    values = np.asarray(values, dtype=float)
    if values.ndim == 2:
        values = values[:, :, None]
    if values.ndim != 3:
        raise ValueError(f"expected (T, N, d) or (T, N), got shape {values.shape}")
    total, num_nodes = values.shape[:2]
    time_index = np.arange(total)
    return SyntheticDataset(
        values=values,
        time_index=time_index,
        slot_of_day=time_index % steps_per_day,
        day_of_week=(start_weekday + time_index // steps_per_day) % 7,
        coordinates=np.zeros((num_nodes, 2)),
        areas=np.zeros(num_nodes, dtype=int),
        line_edges=[],
        config=None,
        generator=None,
    )


def load_metro_pickles(
    directory: str | Path,
    steps_per_day: int = 73,
    start_weekday: int = 0,
) -> dict[str, WindowSet]:
    """Load the PVCGN-style ``{train,val,test}.pkl`` window dictionaries.

    Each pickle holds ``x`` (S, P, N, d), ``y`` (S, Q, N, d) and
    ``xtime``/``ytime`` (S, P) / (S, Q) arrays of absolute step indices
    (or datetime64 values, which are converted to step indices using the
    per-day slot count).
    """
    directory = Path(directory)
    splits: dict[str, WindowSet] = {}
    for split in ("train", "val", "test"):
        path = directory / f"{split}.pkl"
        if not path.exists():
            raise FileNotFoundError(f"missing {path}")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        for key in ("x", "y", "xtime", "ytime"):
            if key not in payload:
                raise KeyError(f"{path} lacks key {key!r}")
        x = np.asarray(payload["x"], dtype=float)
        y = np.asarray(payload["y"], dtype=float)
        times = np.concatenate(
            [_as_step_index(payload["xtime"], steps_per_day),
             _as_step_index(payload["ytime"], steps_per_day)],
            axis=1,
        )
        splits[split] = WindowSet(inputs=x, targets=y, time_indices=times)
    return splits


def load_electricity_txt(
    path: str | Path,
    aggregate_hours: bool = True,
    max_clients: int | None = None,
) -> SyntheticDataset:
    """Parse the UCI ``LD2011_2014.txt`` dump (semicolons, decimal commas).

    ``aggregate_hours`` sums the four 15-minute readings into hourly
    consumption, matching the paper's 1-hour interval.
    """
    path = Path(path)
    rows: list[list[float]] = []
    with open(path) as handle:
        header = handle.readline()
        num_clients = len(header.rstrip("\n").split(";")) - 1
        keep = num_clients if max_clients is None else min(max_clients, num_clients)
        for line in handle:
            parts = line.rstrip("\n").split(";")
            if len(parts) < 2:
                continue
            cells = [p.strip().strip('"') for p in parts[1 : keep + 1]]
            rows.append([float(c.replace(",", ".")) if c else 0.0 for c in cells])
    values = np.asarray(rows, dtype=float)
    if aggregate_hours:
        usable = (values.shape[0] // 4) * 4
        values = values[:usable].reshape(-1, 4, values.shape[1]).sum(axis=1)
    return load_raw_series(values, steps_per_day=24 if aggregate_hours else 96)


def task_from_series(
    dataset: SyntheticDataset,
    name: str,
    history: int,
    horizon: int,
    train_fraction: float = 0.7,
    val_fraction: float = 0.1,
    steps_per_day: int | None = None,
) -> ForecastingTask:
    """Build a ForecastingTask from any raw-series dataset container.

    The same chronological split + train-only scaling protocol as
    :func:`~repro.data.datasets.load_task`.
    """
    from .windows import split_series_by_steps

    total = dataset.num_steps
    first = int(total * train_fraction)
    second = int(total * (train_fraction + val_fraction))
    segments = split_series_by_steps(dataset.values, dataset.time_index, (first, second))
    scaler = StandardScaler().fit(segments[0][0])
    windows = [
        make_windows(scaler.transform(values), times, history, horizon)
        for values, times in segments
    ]
    spd = steps_per_day or (
        dataset.config.steps_per_day if dataset.config else int(dataset.slot_of_day.max()) + 1
    )
    return ForecastingTask(
        name=name,
        spec=None,
        train=windows[0],
        val=windows[1],
        test=windows[2],
        scaler=scaler,
        dataset=dataset,
        steps_per_day=spd,
        num_nodes=dataset.num_nodes,
        history=history,
        horizon=horizon,
    )


def _as_step_index(times, steps_per_day: int) -> np.ndarray:
    """Convert timestamp arrays to integer absolute step indices."""
    arr = np.asarray(times)
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.int64)
    if np.issubdtype(arr.dtype, np.datetime64):
        minutes = arr.astype("datetime64[m]").astype(np.int64)
        day_minutes = 24 * 60
        slot_minutes = day_minutes // steps_per_day if steps_per_day <= day_minutes else 1
        return (minutes // max(slot_minutes, 1)).astype(np.int64)
    raise TypeError(f"unsupported time dtype {arr.dtype}")
