"""Visualization utilities: text heat maps and from-scratch t-SNE."""

from .heatmap import matrix_correlation, render_heatmap, side_by_side
from .tsne import joint_probabilities, ordering_score, tsne
from .plots import line_plot, sparkline, training_curve

__all__ = [
    "joint_probabilities",
    "line_plot",
    "matrix_correlation",
    "ordering_score",
    "render_heatmap",
    "side_by_side",
    "sparkline",
    "training_curve",
    "tsne",
]
