"""Gradient-flow linter: dead parameters, detached subgraphs, aliasing.

One symbolic forward (see :mod:`repro.analyze.shapes`) computes, for the
model output, the set of parameters whose values can influence it — both
through purely symbolic paths and through real-valued subpaths (time
encoders, node embeddings) whose autodiff ancestry is walked when they
mix into the symbolic graph.  Comparing that set against
``named_parameters()`` yields:

* **GF001** (error) — *dead parameter*: registered but no path from it to
  the forward output, so its gradient is identically zero and the
  optimizer burns memory stepping noise.
* **GF002** (error) — *detached-only parameter*: every path from the
  parameter to the output crosses ``detach()``, so it silently stops
  training even though it shapes predictions.
* **GF003** (info) — *aliased registration*: the same ``Parameter`` object
  is reachable under several module paths.  ``named_parameters`` dedups it
  (one optimizer step, one gradient accumulation), but state-dict naming
  and per-module statistics see only the first path — a double-use hazard
  worth knowing about.
* **GF004** (warning) — the linter could not complete (forward failed or
  output was not symbolic); absence of findings proves nothing.

Real-side ``detach()`` is tracked through *chains*: the symbolic
harness records which parameters fed every real ``detach()`` and
carries that severed set across subsequent real ops (which otherwise
drop their ancestry the moment no operand requires grad), so a
parameter whose value reaches the output only via
``param.detach() * scale + shift`` still reports as GF002 (detached,
actionable) rather than GF001 (dead).
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from .findings import Finding
from .shapes import SymTensor, sym_window, symbolic_execution


def _registration_paths(model: Module) -> dict[int, list[str]]:
    """Every (possibly shared) path under which each parameter is registered."""
    paths: dict[int, list[str]] = {}
    stack: list[tuple[Module, str, tuple[int, ...]]] = [(model, "", (id(model),))]
    while stack:
        module, prefix, lineage = stack.pop()
        for name, param in module._parameters.items():
            paths.setdefault(id(param), []).append(f"{prefix}{name}")
        for child_name, child in module._modules.items():
            if id(child) in lineage:  # cycle guard for pathological graphs
                continue
            stack.append((child, f"{prefix}{child_name}.", lineage + (id(child),)))
    return paths


def lint_gradient_flow(
    model: Module,
    *,
    history: int,
    horizon: int,
    num_nodes: int,
    in_dim: int,
    out_dim: int,
    batch: int = 2,
    model_name: str | None = None,
    training: bool = True,
    time_offset: int = 3,
) -> list[Finding]:
    """Lint one model's parameter set against a symbolic forward.

    Defaults to train mode so stochastic paths (dropout, gumbel sampling)
    keep their parameters live, matching what the optimizer actually sees.
    """
    name = model_name or type(model).__name__
    anchor = f"model:{name}"
    findings: list[Finding] = []
    named = list(model.named_parameters())

    was_training = model.training
    model.train(training)
    x = sym_window(batch, history, num_nodes, in_dim)
    time_indices = np.arange(history + horizon)[None, :] + np.arange(batch)[:, None] + time_offset
    out = None
    failure: str | None = None
    try:
        with symbolic_execution(model, name):
            try:
                out = model(x, time_indices)
            except Exception as exc:
                failure = f"{type(exc).__name__}: {exc}"
    finally:
        model.train(was_training)

    if failure is not None or not isinstance(out, SymTensor):
        reason = failure or f"forward returned {type(out).__name__}, not a symbolic tensor"
        findings.append(
            Finding(
                rule_id="GF004",
                severity="warning",
                location=anchor,
                anchor=anchor,
                message=f"gradient-flow lint incomplete: {reason}",
                fix_hint="fix the shape-checker findings first; gradflow reuses the same forward",
            )
        )
        return findings

    live, detached = out._params, out._detached
    for param_name, param in named:
        if id(param) in live:
            continue
        if id(param) in detached:
            findings.append(
                Finding(
                    rule_id="GF002",
                    severity="error",
                    location=f"{anchor}/{param_name}",
                    anchor=anchor,
                    message=(
                        f"parameter {param_name} reaches the output only through detach(); "
                        "it influences predictions but receives no gradient"
                    ),
                    fix_hint="drop the detach() or stop registering the tensor as a Parameter",
                )
            )
        else:
            findings.append(
                Finding(
                    rule_id="GF001",
                    severity="error",
                    location=f"{anchor}/{param_name}",
                    anchor=anchor,
                    message=(
                        f"dead parameter {param_name}: no path from it to the forward output, "
                        "its gradient is identically zero"
                    ),
                    fix_hint="use the parameter in forward() or remove the registration",
                )
            )

    by_path = _registration_paths(model)
    first_path = {id(p): n for n, p in named}
    for param_id, paths in sorted(by_path.items(), key=lambda kv: first_path.get(kv[0], "")):
        if len(paths) > 1:
            shown = first_path.get(param_id, paths[0])
            findings.append(
                Finding(
                    rule_id="GF003",
                    severity="info",
                    location=f"{anchor}/{shown}",
                    anchor=anchor,
                    message=(
                        f"parameter {shown} is registered under {len(paths)} paths "
                        f"({', '.join(sorted(paths))}); named_parameters dedups it but "
                        "state dicts and summaries only see the first"
                    ),
                    fix_hint="intentional sharing is fine — baseline this; otherwise register once",
                )
            )
    return findings
