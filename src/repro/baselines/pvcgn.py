"""PVCGN-lite (Liu et al. 2020): physical-virtual collaboration graphs.

Three *pre-defined* graphs — the physical line topology, a similarity
(correlation) graph, and a proximity (distance) graph standing in for the
OD-correlation virtual graph — are fused inside multi-graph GC-GRU cells.
This is the heavyweight multi-graph baseline of Table VIII.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, stack, zeros
from ..graph.adjacency import sym_laplacian_np
from ..nn import Linear, Module, ModuleList
from .cells import MultiGraphGRUCell


class PVCGN(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        graphs: list[np.ndarray],
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        if not graphs:
            raise ValueError("PVCGN needs at least one pre-defined graph")
        self.num_nodes = graphs[0].shape[0]
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        supports = [[sym_laplacian_np(g)] for g in graphs]
        enc_dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        dec_dims = [out_dim] + [hidden_dim] * (num_layers - 1)
        self.encoder_cells = ModuleList(
            [MultiGraphGRUCell(supports, d, hidden_dim, rng=rng) for d in enc_dims]
        )
        self.decoder_cells = ModuleList(
            [MultiGraphGRUCell(supports, d, hidden_dim, rng=rng) for d in dec_dims]
        )
        self.head = Linear(hidden_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            layer_input = x[:, t]
            new_hiddens = []
            for cell, hidden in zip(self.encoder_cells, hiddens):
                layer_input = cell(layer_input, hidden)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
        decoder_input = x[:, history - 1, :, : self.out_dim]
        outputs = []
        for _ in range(self.horizon):
            layer_input = decoder_input
            new_hiddens = []
            for cell, hidden in zip(self.decoder_cells, hiddens):
                layer_input = cell(layer_input, hidden)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
            prediction = self.head(hiddens[-1])
            outputs.append(prediction)
            decoder_input = prediction
        return stack(outputs, axis=1)
