"""Named TGCRN variants for the ablation study (Table VII).

Each factory returns a configured :class:`~repro.core.tgcrn.TGCRN` plus a
flag telling the trainer whether to apply time-discrepancy learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .tgcrn import TGCRN


@dataclass(frozen=True)
class VariantSpec:
    """A Table VII row: model kwargs overrides + whether TDL is active."""

    name: str
    overrides: dict[str, Any]
    use_tdl: bool
    description: str


#: The seven rows of Table VII, keyed by the paper's names.
VARIANTS: dict[str, VariantSpec] = {
    "tgcrn": VariantSpec(
        "tgcrn", {}, True, "full model (TagSL + TDL + PDF, encoder-decoder)"
    ),
    "wo_tagsl": VariantSpec(
        "wo_tagsl", {"static_graph": True}, False,
        "time-aware graph replaced by AGCRN-style static self-learning graph",
    ),
    "w_te": VariantSpec(
        "w_te", {"use_pdf": False}, False,
        "time embedding only (no TDL regularization, no periodic discriminant)",
    ),
    "wo_tdl": VariantSpec(
        "wo_tdl", {}, False, "time discrepancy learning removed",
    ),
    "wo_pdf": VariantSpec(
        "wo_pdf", {"use_pdf": False}, True, "periodic discriminant function removed",
    ),
    "time2vec": VariantSpec(
        "time2vec", {"time_encoder_kind": "time2vec"}, False,
        "Φ replaced by Time2Vec (Kazemi et al. 2019)",
    ),
    "ctr": VariantSpec(
        "ctr", {"time_encoder_kind": "ctr"}, False,
        "Φ replaced by the TGAT continuous-time representation",
    ),
    "wo_encdec": VariantSpec(
        "wo_encdec", {"use_encoder_decoder": False}, True,
        "decoder replaced by a direct fully-connected multi-step head",
    ),
}


def build_variant(
    name: str, base_kwargs: dict[str, Any], *, rng: np.random.Generator
) -> tuple[TGCRN, VariantSpec]:
    """Instantiate a named Table VII variant on top of shared base kwargs."""
    try:
        spec = VARIANTS[name]
    except KeyError:
        raise ValueError(f"unknown variant {name!r}; choose from {sorted(VARIANTS)}") from None
    kwargs = dict(base_kwargs)
    kwargs.update(spec.overrides)
    return TGCRN(**kwargs, rng=rng), spec
