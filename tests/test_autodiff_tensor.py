"""Unit tests for the autodiff engine's primitives.

Every op gets a numerical gradient check; graph mechanics (accumulation,
topological order, detach, no_grad) are exercised separately.
"""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    check_gradients,
    concat,
    gather_rows,
    maximum,
    minimum,
    no_grad,
    randn,
    stack,
    tensor,
    unbroadcast,
    where,
    zeros,
)


def _param(rng, *shape):
    return randn(*shape, rng=rng, requires_grad=True)


class TestBasics:
    def test_tensor_coerces_floats(self):
        t = tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_bool_arrays_stay_bool(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.bool_

    def test_shape_properties(self):
        t = zeros(2, 3)
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_item_requires_scalar(self):
        assert tensor(3.5).item() == 3.5

    def test_backward_requires_scalar_without_seed(self):
        t = _param(np.random.default_rng(0), 2, 2)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_seed_shape_checked(self):
        t = _param(np.random.default_rng(0), 2, 2)
        with pytest.raises(ValueError):
            (t * 2).backward(np.ones(3))

    def test_detach_cuts_graph(self):
        t = _param(np.random.default_rng(0), 3)
        d = t.detach()
        (d * 2).sum()  # no backward fn; nothing to check beyond no crash
        assert not d.requires_grad
        assert d.data is t.data

    def test_no_grad_blocks_graph(self):
        t = _param(np.random.default_rng(0), 3)
        with no_grad():
            out = (t * t).sum()
        assert not out.requires_grad

    def test_grad_accumulates_across_uses(self):
        t = tensor([2.0], requires_grad=True)
        loss = (t * 3.0 + t * 4.0).sum()
        loss.backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_zero_grad(self):
        t = tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestArithmeticGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a, b: (a + b).sum(),
            lambda a, b: (a - b).sum(),
            lambda a, b: (a * b).sum(),
            lambda a, b: (a / (b + 3.0)).sum(),
            lambda a, b: (-a + 2.0 * b).sum(),
            lambda a, b: (a ** 3).sum() + (b ** 2).mean(),
        ],
        ids=["add", "sub", "mul", "div", "neg_scalar", "pow"],
    )
    def test_binary_ops(self, rng, fn):
        a = _param(rng, 3, 4)
        b = _param(rng, 3, 4)
        check_gradients(lambda: fn(a, b), [a, b])

    def test_scalar_broadcasting(self, rng):
        a = _param(rng, 3, 4)
        check_gradients(lambda: (2.0 + a * 3.0 - 1.0).sum(), [a])

    def test_broadcast_shapes(self, rng):
        a = _param(rng, 3, 1)
        b = _param(rng, 1, 4)
        check_gradients(lambda: (a * b + a - b).sum(), [a, b])

    def test_radd_rsub_rdiv(self, rng):
        a = _param(rng, 4)
        check_gradients(lambda: (1.0 / (a + 4.0) + (5.0 - a)).sum(), [a])

    def test_tensor_exponent_rejected(self, rng):
        a = _param(rng, 2)
        with pytest.raises(TypeError):
            a ** a


class TestMatmulGradients:
    def test_2d(self, rng):
        a = _param(rng, 3, 4)
        b = _param(rng, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched(self, rng):
        a = _param(rng, 2, 3, 4)
        b = _param(rng, 2, 4, 5)
        check_gradients(lambda: (a @ b).tanh().sum(), [a, b])

    def test_broadcast_batch(self, rng):
        a = _param(rng, 2, 3, 4)
        b = _param(rng, 4, 5)  # broadcast over batch
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_matrix(self, rng):
        v = _param(rng, 4)
        m = _param(rng, 4, 5)
        check_gradients(lambda: (v @ m).sum(), [v, m])

    def test_matrix_vector(self, rng):
        m = _param(rng, 3, 4)
        v = _param(rng, 4)
        check_gradients(lambda: (m @ v).sum(), [m, v])

    def test_vector_vector(self, rng):
        a = _param(rng, 4)
        b = _param(rng, 4)
        check_gradients(lambda: (a @ b) * 2.0, [a, b])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a: a.exp().sum(),
            lambda a: (a + 5.0).log().sum(),
            lambda a: (a + 5.0).sqrt().sum(),
            lambda a: a.tanh().sum(),
            lambda a: a.sigmoid().sum(),
            lambda a: a.relu().sum(),
            lambda a: a.leaky_relu(0.1).sum(),
            lambda a: a.abs().sum(),
            lambda a: a.clip(-0.5, 0.5).sum(),
        ],
        ids=["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "leaky_relu", "abs", "clip"],
    )
    def test_unary(self, rng, fn):
        a = _param(rng, 3, 4)
        # Nudge away from kinks of relu/abs/clip for finite differences.
        a.data += np.sign(a.data) * 0.05
        check_gradients(lambda: fn(a), [a])

    def test_clip_one_sided(self, rng):
        a = _param(rng, 5)
        check_gradients(lambda: a.clip(None, 0.4).sum() + a.clip(-0.4, None).sum(), [a])


class TestReductions:
    def test_sum_axes(self, rng):
        a = _param(rng, 2, 3, 4)
        check_gradients(lambda: a.sum(axis=1).tanh().sum(), [a])
        check_gradients(lambda: a.sum(axis=(0, 2)).tanh().sum(), [a])
        check_gradients(lambda: a.sum(axis=-1, keepdims=True).tanh().sum(), [a])

    def test_mean(self, rng):
        a = _param(rng, 2, 3)
        check_gradients(lambda: a.mean(), [a])
        check_gradients(lambda: a.mean(axis=0).sum(), [a])

    def test_max_min(self, rng):
        a = _param(rng, 3, 4)
        check_gradients(lambda: a.max(), [a])
        check_gradients(lambda: a.max(axis=1).sum(), [a])
        check_gradients(lambda: a.min(axis=0, keepdims=True).sum(), [a])

    def test_max_values_match_numpy(self, rng):
        a = _param(rng, 3, 4)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))


class TestShapeOps:
    def test_reshape(self, rng):
        a = _param(rng, 2, 6)
        check_gradients(lambda: a.reshape(3, 4).tanh().sum(), [a])
        check_gradients(lambda: a.reshape((12,)).sum(), [a])

    def test_transpose(self, rng):
        a = _param(rng, 2, 3, 4)
        check_gradients(lambda: a.transpose(2, 0, 1).tanh().sum(), [a])
        check_gradients(lambda: a.T.sum(), [a])

    def test_swapaxes(self, rng):
        a = _param(rng, 2, 3, 4)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        check_gradients(lambda: a.swapaxes(1, 2).tanh().sum(), [a])

    def test_unsqueeze_squeeze(self, rng):
        a = _param(rng, 3, 4)
        assert a.unsqueeze(1).shape == (3, 1, 4)
        assert a.unsqueeze(-1).shape == (3, 4, 1)
        assert a.unsqueeze(0).squeeze(0).shape == (3, 4)
        with pytest.raises(ValueError):
            a.squeeze(0)

    def test_broadcast_to(self, rng):
        a = _param(rng, 1, 4)
        check_gradients(lambda: a.broadcast_to((3, 4)).tanh().sum(), [a])

    def test_getitem_slices(self, rng):
        a = _param(rng, 4, 5)
        check_gradients(lambda: a[1:3, ::2].tanh().sum(), [a])
        check_gradients(lambda: a[:, 0].sum(), [a])

    def test_getitem_fancy(self, rng):
        a = _param(rng, 6, 3)
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda: a[idx].sum(), [a])


class TestCombinators:
    def test_concat(self, rng):
        a = _param(rng, 2, 3)
        b = _param(rng, 2, 2)
        check_gradients(lambda: concat([a, b], axis=1).tanh().sum(), [a, b])

    def test_stack(self, rng):
        a = _param(rng, 2, 3)
        b = _param(rng, 2, 3)
        check_gradients(lambda: stack([a, b], axis=1).tanh().sum(), [a, b])
        assert stack([a, b], axis=0).shape == (2, 2, 3)

    def test_where(self, rng):
        a = _param(rng, 3, 4)
        b = _param(rng, 3, 4)
        cond = a.data > 0
        check_gradients(lambda: where(cond, a * 2.0, b * 3.0).sum(), [a, b])

    def test_maximum_minimum(self, rng):
        a = _param(rng, 4)
        b = _param(rng, 4)
        a.data += 0.1  # avoid exact ties at finite-difference points
        np.testing.assert_allclose(maximum(a, b).data, np.maximum(a.data, b.data))
        np.testing.assert_allclose(minimum(a, b).data, np.minimum(a.data, b.data))
        check_gradients(lambda: maximum(a, b).sum() + minimum(a, b).sum(), [a, b])

    def test_gather_rows(self, rng):
        table = _param(rng, 5, 3)
        idx = np.array([[0, 1], [4, 4]])
        out = gather_rows(table, idx)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda: gather_rows(table, idx).tanh().sum(), [table])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_kept_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 2.0))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, ()), 6.0)


class TestGraphMechanics:
    def test_diamond_graph(self, rng):
        """Shared subexpression must backprop through both paths once."""
        a = _param(rng, 3)
        check_gradients(lambda: ((a * 2.0) * (a * 2.0)).sum(), [a])

    def test_deep_chain(self, rng):
        a = _param(rng, 3)

        def f():
            out = a
            for _ in range(30):
                out = out * 0.9 + 0.01
            return out.sum()

        check_gradients(f, [a])

    def test_unused_parameter_gets_no_grad(self, rng):
        a = _param(rng, 3)
        b = _param(rng, 3)
        (a * 2.0).sum().backward()
        assert b.grad is None
