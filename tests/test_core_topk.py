"""Tests for TagSL's top-k sparsification extension."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.core import DiscreteTimeEmbedding, TGCRN, TagSL


def _tagsl(rng, top_k=None, num_nodes=6):
    enc = DiscreteTimeEmbedding(24, 4, rng=rng)
    return TagSL(num_nodes, 5, enc, top_k=top_k, rng=rng)


class TestTopK:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            _tagsl(rng, top_k=0)
        with pytest.raises(ValueError):
            _tagsl(rng, top_k=7)

    def test_softmax_rows_have_k_active_entries(self, rng):
        tagsl = _tagsl(rng, top_k=2)
        state = randn(3, 6, 2, rng=rng)
        adjacency = tagsl.normalized(state, np.array([1, 2, 3])).data
        active = (adjacency > 1e-6).sum(axis=-1)
        np.testing.assert_array_equal(active, 2)
        np.testing.assert_allclose(adjacency.sum(axis=-1), 1.0)

    def test_kept_entries_are_the_largest(self, rng):
        tagsl = _tagsl(rng, top_k=3)
        state = randn(1, 6, 2, rng=rng)
        dense = TagSL(6, 5, tagsl.time_encoder, rng=np.random.default_rng(0))
        dense.node_embedding.data[...] = tagsl.node_embedding.data
        raw = dense(state, np.array([4])).data[0]
        sparse = tagsl.normalized(state, np.array([4])).data[0]
        for row in range(6):
            expected_kept = set(np.argsort(raw[row])[-3:])
            actual_kept = set(np.nonzero(sparse[row] > 1e-6)[0])
            assert actual_kept == expected_kept

    def test_full_k_equals_dense(self, rng):
        dense = _tagsl(np.random.default_rng(1))
        sparse = _tagsl(np.random.default_rng(1), top_k=6)
        state = randn(2, 6, 2, rng=rng)
        t = np.array([1, 2])
        np.testing.assert_allclose(
            dense.normalized(state, t).data, sparse.normalized(state, t).data
        )

    def test_gradients_flow_through_kept_entries(self, rng):
        tagsl = _tagsl(rng, top_k=2)
        state = randn(1, 6, 2, rng=rng)
        tagsl.normalized(state, np.array([3])).sum().backward()
        assert tagsl.node_embedding.grad is not None
        assert np.abs(tagsl.node_embedding.grad).sum() > 0

    def test_tgcrn_accepts_top_k(self, rng):
        model = TGCRN(
            num_nodes=5, in_dim=2, out_dim=2, horizon=2, hidden_dim=6,
            num_layers=1, node_dim=4, time_dim=4, steps_per_day=24,
            top_k=2, rng=rng,
        )
        x = randn(2, 3, 5, 2, rng=rng)
        t = np.arange(5)[None, :].repeat(2, axis=0)
        assert model(x, t).shape == (2, 2, 5, 2)


class TestNodeReport:
    def test_per_node_metrics(self, rng):
        from repro.metrics import node_report

        pred = rng.normal(size=(8, 4, 3, 2))
        target = rng.normal(size=(8, 4, 3, 2))
        reports = node_report(pred, target)
        assert len(reports) == 3
        from repro.metrics import mae

        np.testing.assert_allclose(reports[1].mae, mae(pred[:, :, 1], target[:, :, 1]))

    def test_requires_node_axis(self):
        from repro.metrics import node_report

        with pytest.raises(ValueError):
            node_report(np.zeros((4, 2)), np.zeros((4, 2)))
