"""End-to-end integration tests: train on synthetic tasks and verify the
paper's qualitative claims at miniature scale."""

import numpy as np
import pytest

from repro import TGCRN, Trainer, TrainingConfig, load_task, run_experiment
from repro.core import build_variant
from repro.training import default_tgcrn_kwargs
from repro.viz import matrix_correlation, ordering_score, tsne


@pytest.fixture(scope="module")
def trained_tgcrn(tiny_task):
    model = TGCRN(
        **default_tgcrn_kwargs(tiny_task, hidden_dim=16, node_dim=8, time_dim=8, num_layers=1),
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(TrainingConfig(epochs=15, batch_size=32, seed=0))
    history = trainer.fit(model, tiny_task)
    return model, trainer, history


class TestEndToEnd:
    def test_training_converges(self, trained_tgcrn):
        _, _, history = trained_tgcrn
        assert history.train_losses[-1] < 0.6 * history.train_losses[0]

    def test_beats_historical_average(self, tiny_task, trained_tgcrn):
        model, trainer, _ = trained_tgcrn
        tgcrn_mae = trainer.test_report(model, tiny_task)[0].mae
        ha_mae = run_experiment("ha", tiny_task).overall.mae
        assert tgcrn_mae < ha_mae

    def test_per_horizon_reports(self, tiny_task, trained_tgcrn):
        model, trainer, _ = trained_tgcrn
        _, horizon = trainer.test_report(model, tiny_task)
        assert len(horizon) == tiny_task.horizon

    def test_learned_graph_tracks_ground_truth_od(self, tiny_task, trained_tgcrn):
        """Fig. 11 mechanism: the learned A^t should correlate positively
        with the ground-truth OD matrix at the same timestamp."""
        model, trainer, _ = trained_tgcrn
        from repro.autodiff import Tensor, no_grad

        x, _, t = next(iter(tiny_task.loader("test", 1)))
        step = int(t[0, 0])
        with no_grad():
            adjacency = model.tagsl.normalized(Tensor(x[:, 0]), t[:, 0]).data[0]
        truth = tiny_task.dataset.od_matrix(step)
        assert matrix_correlation(adjacency, truth) > -0.5  # not anti-correlated
        # Graph must be time-varying (the central claim of the paper):
        with no_grad():
            later = model.tagsl.normalized(Tensor(x[:, 0]), t[:, 0] + 30).data[0]
        assert not np.allclose(adjacency, later)

    def test_tdl_weighted_training_lowers_discrepancy_loss(self, tiny_task):
        """Fig. 12 mechanism: joint training with λ·L_time must leave the
        time table with a lower discrepancy loss than the identical model
        trained with λ = 0 (the full t-SNE ordering effect needs the long
        TDL-only runs exercised in bench_fig12)."""
        from repro.core import TimeDiscrepancyLearner

        windows = tiny_task.train.time_indices[:64]

        def train(lambda_time):
            model = TGCRN(
                **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
                rng=np.random.default_rng(0),
            )
            config = TrainingConfig(epochs=3, batch_size=32, seed=0, lambda_time=lambda_time)
            Trainer(config).fit(model, tiny_task, use_tdl=lambda_time > 0)
            learner = TimeDiscrepancyLearner(model.time_encoder, np.random.default_rng(11), adjacent_range=2)
            return float(np.mean([learner(windows).item() for _ in range(20)]))

        assert train(1.0) < train(0.0)


class TestVariantsTrainEndToEnd:
    @pytest.mark.parametrize("name", ["wo_tagsl", "w_te", "wo_pdf", "wo_encdec"])
    def test_variant_trains(self, tiny_task, name):
        base = default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1)
        model, spec = build_variant(name, base, rng=np.random.default_rng(0))
        trainer = Trainer(TrainingConfig(epochs=2, batch_size=64))
        history = trainer.fit(model, tiny_task, use_tdl=spec.use_tdl)
        assert history.train_losses[-1] <= history.train_losses[0]


class TestMultiDataset:
    def test_demand_task_trains(self, tiny_demand_task):
        cfg = TrainingConfig(epochs=2, batch_size=32)
        result = run_experiment(
            "tgcrn", tiny_demand_task, cfg, hidden_dim=8,
            model_kwargs=dict(node_dim=4, time_dim=4, num_layers=1),
        )
        assert np.isfinite(result.overall.mae)

    def test_electricity_task_trains(self):
        task = load_task("electricity", num_nodes=6, num_days=16, history=6, horizon=6)
        cfg = TrainingConfig(epochs=2, batch_size=32)
        result = run_experiment(
            "tgcrn", task, cfg, hidden_dim=8,
            model_kwargs=dict(node_dim=4, time_dim=4, num_layers=1),
        )
        assert np.isfinite(result.overall.mae)
