"""Time Discrepancy Learning — the contrastive proportion loss of Eq. 3–5.

The regularizer pushes the *ratio* of embedding-space distance to
time-domain distance to be equal across adjacent, mid-distance, and
distant sample pairs, which makes embedding similarity proportional to
temporal proximity (the property visualized in Fig. 12).

Any optimization of this path must keep
``repro.verify.crosscheck.check_discrepancy_loss`` green — the loss is
diffed against a naive loop-based rendition of Eq. 3–5.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, pairwise_euclidean
from .sampling import TimeDistanceSamples, sample_time_distances
from .time_encoding import TimeEncoder


def discrepancy_loss(encoder: TimeEncoder, samples: TimeDistanceSamples) -> Tensor:
    """L_time (Eq. 3) for one batch of Algorithm-1 samples.

    ζ = F_sim = Euclidean distance between time representations;
    d = F_dist = L1 distance between time steps, floored at 1.

    Because the paper discretizes time *within a day* ("considering a
    minimum periodicity such as a day"), the embedding table is
    day-periodic and F_dist must be measured on the within-day slot
    positions — two samples a whole day apart share a representation, so
    an absolute-index distance would make the proportionality objective
    unsatisfiable.  Slot distances keep it coherent: distant samples from
    other windows land at whatever slot they fall on, and same-slot
    samples of different days are correctly treated as similar (that is
    the daily periodicity).
    """
    anchor = encoder(samples.anchor_values)
    period = getattr(encoder, "num_slots", None)
    anchor_pos = samples.anchor_values.astype(float)
    ratios = []
    for values in (samples.adjacent_values, samples.mid_values, samples.distant_values):
        zeta = pairwise_euclidean(encoder(values), anchor)
        delta = np.abs(values.astype(float) - anchor_pos)
        if period:
            delta = np.abs((values % period).astype(float) - anchor_pos % period)
        dist = np.maximum(delta, 1.0)
        ratios.append(zeta * (1.0 / dist))
    loss = (
        (ratios[0] - ratios[1]).abs()
        + (ratios[0] - ratios[2]).abs()
        + (ratios[1] - ratios[2]).abs()
    )
    return loss.mean()


class TimeDiscrepancyLearner:
    """Bundles Algorithm 1 with the Eq. 3 loss for use inside the trainer.

    Parameters mirror the paper: ``adjacent_range`` defaults to half the
    window (set when calling from the trainer, which knows P+Q).
    """

    def __init__(
        self,
        encoder: TimeEncoder,
        rng: np.random.Generator,
        adjacent_range: int | None = None,
        mid_range: int | None = None,
    ):
        self.encoder = encoder
        self.rng = rng
        self.adjacent_range = adjacent_range
        self.mid_range = mid_range

    def __call__(self, time_windows: np.ndarray) -> Tensor:
        samples = sample_time_distances(
            time_windows,
            self.rng,
            adjacent_range=self.adjacent_range,
            mid_range=self.mid_range,
        )
        return discrepancy_loss(self.encoder, samples)
