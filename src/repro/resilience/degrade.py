"""Graceful inference degradation: never serve NaN to a caller.

A production forecaster that returns NaN/Inf (diverged weights, a
corrupted checkpoint that slipped past older formats, an input
distribution shift that saturates the TagSL gate) is worse than a dumb
baseline that returns plausible numbers.  :func:`safe_predict` validates
model output — every value finite and within a sanity envelope derived
from the training data — and, when validation fails, falls back to the
:class:`~repro.baselines.historical.HistoricalAverage` baseline with a
``warnings.warn`` plus a structured ``degraded_inference`` record in the
run log.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..baselines.historical import HistoricalAverage


@dataclass
class SafePrediction:
    """Outcome of :func:`safe_predict`: arrays plus degradation provenance."""

    prediction: np.ndarray
    target: np.ndarray
    degraded: bool = False
    reason: str | None = None
    source: str = "model"


def output_bound(task, factor: float = 10.0) -> float:
    """Sanity envelope for unscaled predictions on ``task``.

    ``factor`` × the largest magnitude seen in the (unscaled) training
    targets — generous enough for genuine peaks, tight enough to catch a
    model emitting 1e30 after numeric blow-up.

    The reference magnitude (a full pass over the unscaled training
    targets) is cached on the task, so per-request callers — the serving
    layer, repeated ``cli evaluate`` paths — pay for it once.
    """
    reference_max = getattr(task, "_output_bound_ref", None)
    if reference_max is None:
        reference = np.abs(task.inverse_targets(task.train.targets))
        reference_max = max(float(reference.max()), 1.0)
        try:
            task._output_bound_ref = reference_max
        except (AttributeError, TypeError):  # analyze: allow[RL006] frozen/slotted task: skip caching
            pass
    return float(factor * reference_max)


def validate_input(window: np.ndarray, num_nodes: int | None = None) -> str | None:
    """Return a failure reason (or None) for a batch of model *inputs*.

    Garbage in should degrade gracefully, not raise deep inside
    :mod:`repro.autodiff`: non-finite windows and a node axis that does
    not match the model's ``num_nodes`` are caught here, before any
    forward pass.  Expects the trailing axes to be ``(..., nodes, dim)``.
    """
    window = np.asarray(window)
    if window.size == 0:
        return "empty input"
    if window.dtype == object or window.dtype.kind in "USV":
        return f"non-numeric input dtype {window.dtype}"
    if not np.all(np.isfinite(window)):
        bad = int(window.size - np.count_nonzero(np.isfinite(window)))
        return f"{bad} non-finite input value(s)"
    if num_nodes is not None:
        if window.ndim < 2 or window.shape[-2] != num_nodes:
            return (f"input node axis {window.shape[-2] if window.ndim >= 2 else 'missing'} "
                    f"does not match the model's num_nodes={num_nodes}")
    return None


def validate_output(prediction: np.ndarray, bound: float | None = None) -> str | None:
    """Return a failure reason (or None) for a batch of predictions."""
    prediction = np.asarray(prediction)
    if prediction.size == 0:
        return "empty output"
    if not np.all(np.isfinite(prediction)):
        bad = int(prediction.size - np.count_nonzero(np.isfinite(prediction)))
        return f"{bad} non-finite value(s)"
    if bound is not None:
        worst = float(np.abs(prediction).max())
        if worst > bound:
            return f"magnitude {worst:.3g} exceeds sanity bound {bound:.3g}"
    return None


def safe_predict(
    trainer,
    model,
    task,
    split: str = "test",
    bound_factor: float = 10.0,
    logger=None,
) -> SafePrediction:
    """``trainer.predict`` with validation and historical-average fallback.

    Returns a :class:`SafePrediction`; ``degraded=True`` means validation
    failed on either side of the model — the *input* windows
    (:func:`validate_input`: non-finite values, node count mismatching
    the model's ``num_nodes``) or the *output*
    (:func:`validate_output`: non-finite, or outside
    ``bound_factor`` × the training-data magnitude envelope) — and the
    arrays come from the :class:`HistoricalAverage` baseline instead.
    The degradation is surfaced as a ``UserWarning`` and — when
    ``logger`` (a :class:`~repro.obs.RunLogger`) is given — as a
    ``degraded_inference`` JSONL record.
    """
    bound = output_bound(task, factor=bound_factor)
    split_windows = {"train": task.train, "val": task.val, "test": task.test}[split]
    reason = validate_input(split_windows.inputs,
                            num_nodes=getattr(model, "num_nodes", None))
    if reason is not None:
        prediction = target = None
        reason = f"invalid input: {reason}"
    else:
        try:
            prediction, target = trainer.predict(model, task, split)
            reason = validate_output(prediction, bound=bound)
        except (FloatingPointError, ValueError) as exc:
            prediction = target = None
            reason = f"prediction failed: {exc}"
    if reason is None:
        return SafePrediction(prediction=prediction, target=target)

    warnings.warn(
        f"model output on split {split!r} is invalid ({reason}); "
        "falling back to the historical-average baseline",
        UserWarning,
        stacklevel=2,
    )
    if logger is not None:
        logger.log("degraded_inference", split=split, reason=reason,
                   fallback="historical_average", bound=bound)
    fallback = HistoricalAverage.for_task(task)
    prediction, target = fallback.evaluate(task, split)
    return SafePrediction(
        prediction=prediction,
        target=target,
        degraded=True,
        reason=reason,
        source="historical_average",
    )
