"""Training loop reproducing the paper's optimization protocol (§IV-A-4).

Adam (lr 1e-3, L2 penalty 1e-4), learning rate decayed by 0.3 at epochs
[5, 20, 40, 70, 90], batch size 16, early stopping on validation MAE with
patience 15, joint objective L = L_error + λ·L_time (Eq. 17) where the
time-discrepancy term only applies to models exposing a trainable
discrete time embedding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, huber_loss, mae_loss, mse_loss, no_grad
from ..core.discrepancy import TimeDiscrepancyLearner
from ..core.time_encoding import DiscreteTimeEmbedding
from ..data.datasets import ForecastingTask
from ..metrics.errors import MetricReport, evaluate, horizon_report
from ..nn import Adam, Module, MultiStepLR, clip_grad_norm
from ..obs import GraphWatch, RunLogger


@dataclass
class TrainingConfig:
    """Hyper-parameters of the optimization protocol."""

    epochs: int = 30
    batch_size: int = 16
    lr: float = 1e-3
    weight_decay: float = 1e-4
    lr_milestones: tuple[int, ...] = (5, 20, 40, 70, 90)
    lr_gamma: float = 0.3
    patience: int = 15
    grad_clip: float = 5.0
    lambda_time: float = 0.1
    seed: int = 0
    verbose: bool = False
    # Structured run log (repro.obs.RunLogger): JSONL destination, or None.
    log_path: str | None = None
    # Error term of Eq. 17: "mae" (the paper), "mse", or "huber".
    loss: str = "mae"
    # Inverse-sigmoid decay constant for scheduled sampling (DCRNN's
    # curriculum): p(epoch) = k / (k + exp(epoch / k)).  None keeps the
    # model's fixed probability.
    scheduled_sampling_decay: float | None = None

    def sampling_probability(self, epoch: int) -> float | None:
        """Teacher-forcing probability for ``epoch`` (None = unchanged)."""
        k = self.scheduled_sampling_decay
        if k is None:
            return None
        return k / (k + float(np.exp(epoch / k)))

    def error_loss(self, prediction: Tensor, target: Tensor) -> Tensor:
        """L_error of Eq. 17/18 under the configured criterion."""
        criteria = {"mae": mae_loss, "mse": mse_loss, "huber": huber_loss}
        try:
            return criteria[self.loss](prediction, target)
        except KeyError:
            raise ValueError(f"unknown loss {self.loss!r}; choose from {sorted(criteria)}") from None


@dataclass
class TrainingHistory:
    """Per-epoch records plus bookkeeping of the best epoch."""

    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    # Eq. 17 split: train_losses = error_losses + λ·time_losses.
    error_losses: list[float] = field(default_factory=list)
    time_losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)  # mean pre-clip L2
    best_epoch: int = -1
    best_val_mae: float = float("inf")
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)


class Trainer:
    """Fit a forecaster on a :class:`ForecastingTask`.

    Any model whose ``forward(x, time_indices)`` maps a scaled
    (B, P, N, d) tensor plus (B, P+Q) absolute time indices to a scaled
    (B, Q, N, d_out) tensor can be trained.  If the model carries a
    :class:`DiscreteTimeEmbedding` time encoder and ``use_tdl`` is true,
    the Eq. 3 regularizer is added with weight ``lambda_time``.
    """

    def __init__(self, config: TrainingConfig | None = None):
        self.config = config or TrainingConfig()

    def fit(
        self,
        model: Module,
        task: ForecastingTask,
        use_tdl: bool | None = None,
        augmenter=None,
        logger: RunLogger | None = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``task``.

        ``augmenter`` is an optional callable (e.g.
        :class:`~repro.data.augmentation.WindowAugmenter`) applied to each
        training input batch; validation/test batches are never augmented.
        ``logger`` is an optional :class:`~repro.obs.RunLogger`; when
        omitted, one is built from the config (``log_path`` for the JSONL
        file, ``verbose`` for the console echo) and closed at exit.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        scheduler = MultiStepLR(optimizer, cfg.lr_milestones, gamma=cfg.lr_gamma)
        discrepancy = self._make_discrepancy(model, task, rng, use_tdl)
        loader = task.loader("train", cfg.batch_size, shuffle=True, seed=cfg.seed)
        history = TrainingHistory()
        best_state = model.state_dict()
        bad_epochs = 0
        owns_logger = logger is None
        if logger is None:
            logger = RunLogger(
                path=cfg.log_path, console=cfg.verbose,
                metadata={"task": task.name, "model": type(model).__name__,
                          "epochs": cfg.epochs, "batch_size": cfg.batch_size,
                          "lr": cfg.lr, "lambda_time": cfg.lambda_time,
                          "seed": cfg.seed},
            )
        watch = GraphWatch(model)

        try:
            for epoch in range(cfg.epochs):
                start = time.perf_counter()
                model.train()
                probability = cfg.sampling_probability(epoch)
                if probability is not None and hasattr(model, "scheduled_sampling"):
                    model.scheduled_sampling = probability
                epoch_loss = 0.0
                epoch_error = 0.0
                epoch_time_loss = 0.0
                epoch_grad_norm = 0.0
                batches = 0
                for x, y, t in loader:
                    if augmenter is not None:
                        x = augmenter(x)
                    watch.observe_batch(x, t)
                    optimizer.zero_grad()
                    if getattr(model, "scheduled_sampling", 0.0) > 0.0:
                        prediction = model(Tensor(x), t, targets=Tensor(y))
                    else:
                        prediction = model(Tensor(x), t)
                    error = cfg.error_loss(prediction, Tensor(y))
                    loss = error
                    if discrepancy is not None:
                        time_loss = discrepancy(t)
                        loss = error + cfg.lambda_time * time_loss
                        epoch_time_loss += time_loss.item()
                    loss.backward()
                    epoch_grad_norm += clip_grad_norm(model.parameters(), cfg.grad_clip)
                    optimizer.step()
                    epoch_loss += loss.item()
                    epoch_error += error.item()
                    batches += 1
                lr = scheduler.current_lr
                scheduler.step()
                denominator = max(batches, 1)
                history.train_losses.append(epoch_loss / denominator)
                history.error_losses.append(epoch_error / denominator)
                history.time_losses.append(epoch_time_loss / denominator)
                history.lrs.append(lr)
                history.grad_norms.append(epoch_grad_norm / denominator)
                history.epoch_seconds.append(time.perf_counter() - start)

                val_mae = self.validate(model, task)
                history.val_maes.append(val_mae)
                logger.log_epoch(
                    epoch,
                    train_loss=history.train_losses[-1],
                    l_error=history.error_losses[-1],
                    l_time=history.time_losses[-1],
                    val_mae=val_mae,
                    lr=lr,
                    grad_norm=history.grad_norms[-1],
                    epoch_seconds=history.epoch_seconds[-1],
                    graph=watch.snapshot(),
                )
                if val_mae < history.best_val_mae - 1e-9:
                    history.best_val_mae = val_mae
                    history.best_epoch = epoch
                    best_state = model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= cfg.patience:
                        history.stopped_early = True
                        break

            logger.log_summary(
                best_epoch=history.best_epoch,
                best_val_mae=history.best_val_mae,
                epochs_run=history.epochs_run,
                stopped_early=history.stopped_early,
            )
        finally:
            if owns_logger:
                logger.close()
        model.load_state_dict(best_state)
        return history

    def validate(self, model: Module, task: ForecastingTask) -> float:
        """Validation MAE in original units (early-stopping criterion)."""
        prediction, target = self.predict(model, task, "val")
        return evaluate(prediction, target).mae

    def predict(
        self, model: Module, task: ForecastingTask, split: str, batch_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the model over a split; returns unscaled (pred, target)."""
        model.eval()
        loader = task.loader(split, batch_size or self.config.batch_size, shuffle=False)
        predictions, targets = [], []
        with no_grad():
            for x, y, t in loader:
                out = model(Tensor(x), t)
                predictions.append(out.numpy())
                targets.append(y)
        prediction = task.inverse_targets(np.concatenate(predictions))
        target = task.inverse_targets(np.concatenate(targets))
        return prediction, target

    def test_report(
        self, model: Module, task: ForecastingTask
    ) -> tuple[MetricReport, list[MetricReport]]:
        """Overall + per-horizon metrics on the test split."""
        prediction, target = self.predict(model, task, "test")
        return evaluate(prediction, target), horizon_report(prediction, target)

    def _make_discrepancy(
        self,
        model: Module,
        task: ForecastingTask,
        rng: np.random.Generator,
        use_tdl: bool | None,
    ) -> TimeDiscrepancyLearner | None:
        encoder = getattr(model, "time_encoder", None)
        if encoder is None or self.config.lambda_time <= 0:
            return None
        if use_tdl is None:
            use_tdl = isinstance(encoder, DiscreteTimeEmbedding)
        if not use_tdl:
            return None
        window = task.history + task.horizon
        return TimeDiscrepancyLearner(encoder, rng, adjacent_range=max(1, task.history // 2))
