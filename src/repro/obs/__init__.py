"""Observability: op-level tracing, metrics, run logging, graph monitors.

Four pillars (see docs/observability.md):

* :mod:`~repro.obs.trace` — ``with trace() as tr:`` op profiler over the
  autodiff engine (hot-op table, Chrome-trace export, strict no-op when
  inactive).
* :mod:`~repro.obs.metrics` — counters/gauges/histograms/timers with
  JSONL emission; one schema for trainer, benches, and CLI.
* :mod:`~repro.obs.runlog` — structured per-epoch run logger replacing
  the trainer's bare ``print`` (JSONL file + compatible console line).
* :mod:`~repro.obs.graphwatch` — TagSL monitors: adjacency
  entropy/sparsity, trend-factor magnitude, saturation-gate activation,
  embedding-table drift (§IV-E, live).
"""

from .graphwatch import (
    GraphWatch,
    adjacency_entropy,
    adjacency_sparsity,
    embedding_drift,
    gate_activation_rate,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, read_jsonl
from .runlog import Console, RunLogger
from .trace import OpStats, Tracer, is_tracing, record_replay, trace

__all__ = [
    "Console",
    "Counter",
    "Gauge",
    "GraphWatch",
    "Histogram",
    "MetricsRegistry",
    "OpStats",
    "RunLogger",
    "Tracer",
    "adjacency_entropy",
    "adjacency_sparsity",
    "embedding_drift",
    "gate_activation_rate",
    "is_tracing",
    "read_jsonl",
    "record_replay",
    "trace",
]
