"""Tests for the full TGCRN model and its variants."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mae_loss, randn
from repro.core import TGCRN, VARIANTS, build_variant
from repro.nn import Adam


def _model(rng, **overrides):
    kwargs = dict(
        num_nodes=4, in_dim=2, out_dim=2, horizon=3, hidden_dim=6,
        num_layers=2, node_dim=5, time_dim=4, steps_per_day=24,
    )
    kwargs.update(overrides)
    return TGCRN(**kwargs, rng=rng)


def _batch(rng, batch=3, history=4, horizon=3, nodes=4, in_dim=2):
    x = randn(batch, history, nodes, in_dim, rng=rng)
    t = np.arange(history + horizon)[None, :] + rng.integers(0, 200, size=(batch, 1))
    return x, t


class TestForward:
    def test_output_shape(self, rng):
        model = _model(rng)
        x, t = _batch(rng)
        assert model(x, t).shape == (3, 3, 4, 2)

    def test_time_indices_validated(self, rng):
        model = _model(rng)
        x, t = _batch(rng)
        with pytest.raises(ValueError):
            model(x, t[:, :-1])

    def test_blended_embedding_shape(self, rng):
        model = _model(rng)
        embed = model.blended_embedding(np.array([1, 2]))
        assert embed.shape == (2, 4, 5 + 4)

    def test_autoregressive_decoder_feeds_predictions(self, rng):
        """With horizon 1 vs 2, the first output frame must agree — the
        second step only consumes the first prediction."""
        m1 = _model(rng, horizon=1)
        m2 = _model(np.random.default_rng(0), horizon=2)
        m2.load_state_dict({k: v for k, v in m1.state_dict().items()} | {
            k: v for k, v in m2.state_dict().items() if k not in m1.state_dict()
        })
        x, _ = _batch(rng, horizon=2)
        t1 = np.arange(5)[None, :].repeat(3, axis=0)
        t2 = np.arange(6)[None, :].repeat(3, axis=0)
        out1 = m1(x, t1).data
        out2 = m2(x, t2).data
        np.testing.assert_allclose(out1[:, 0], out2[:, 0], atol=1e-10)

    def test_forecast_depends_on_future_timestamps(self, rng):
        """Time-awareness: same inputs at different times of day must give
        different forecasts (through TagSL + blended embeddings)."""
        model = _model(rng)
        x, _ = _batch(rng)
        t_morning = np.arange(7)[None, :].repeat(3, axis=0)
        t_evening = t_morning + 12
        out1 = model(x, t_morning).data
        out2 = model(x, t_evening).data
        assert not np.allclose(out1, out2)

    def test_gradients_reach_every_parameter(self, rng):
        model = _model(rng, num_layers=1)
        x, t = _batch(rng)
        loss = mae_loss(model(x, t), Tensor(np.zeros((3, 3, 4, 2))))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"


class TestVariants:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_all_variants_run(self, name, rng):
        base = dict(
            num_nodes=4, in_dim=2, out_dim=2, horizon=3, hidden_dim=6,
            num_layers=1, node_dim=5, time_dim=4, steps_per_day=24,
        )
        model, spec = build_variant(name, base, rng=rng)
        x, t = _batch(rng)
        assert model(x, t).shape == (3, 3, 4, 2)
        assert spec.name == name

    def test_unknown_variant(self, rng):
        with pytest.raises(ValueError):
            build_variant("tgcrn_ultra", {}, rng=rng)

    def test_wo_encdec_has_no_decoder_cells(self, rng):
        model = _model(rng, use_encoder_decoder=False)
        assert not hasattr(model, "decoder_cells")
        x, t = _batch(rng)
        assert model(x, t).shape == (3, 3, 4, 2)

    def test_static_graph_variant_is_time_invariant_graph(self, rng):
        model = _model(rng, static_graph=True)
        a1 = model.tagsl(None, np.array([2])).data
        a2 = model.tagsl(None, np.array([19])).data
        np.testing.assert_allclose(a1, a2)


class TestCapacity:
    def test_parameters_grow_with_embedding_dims(self, rng):
        small = _model(rng, node_dim=4, time_dim=4)
        large = _model(np.random.default_rng(1), node_dim=16, time_dim=8)
        assert large.num_parameters() > small.num_parameters()

    def test_time2vec_variant_swaps_encoder(self, rng):
        from repro.core import Time2Vec

        model = _model(rng, time_encoder_kind="time2vec")
        assert isinstance(model.time_encoder, Time2Vec)


class TestLearning:
    def test_loss_decreases_on_fixed_batch(self, rng):
        model = _model(rng, num_layers=1, hidden_dim=4, node_dim=4, time_dim=4)
        x, t = _batch(rng)
        y = Tensor(np.tanh(x.data[:, -3:, :, :]))
        opt = Adam(model.parameters(), lr=5e-3)
        first = last = None
        for step in range(25):
            opt.zero_grad()
            loss = mae_loss(model(x, t), y)
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < 0.8 * first
