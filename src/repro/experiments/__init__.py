"""Programmatic registry of the paper's tables and figures."""

from .registry import SMOKE, ExperimentScale, experiment, list_experiments, run

__all__ = ["SMOKE", "ExperimentScale", "experiment", "list_experiments", "run"]
