"""Shared fixtures: deterministic RNGs and a cached tiny forecasting task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_task


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_task():
    """An 8-node, 8-day HZMetro-style task shared across test modules."""
    return load_task("hzmetro", num_nodes=8, num_days=8, seed=7)


@pytest.fixture(scope="session")
def tiny_demand_task():
    """A small NYC-Bike-style task (P=Q=12, 30-min slots)."""
    return load_task("nyc_bike", num_nodes=8, num_days=8, seed=7, history=6, horizon=6)
