"""Static analysis layer: shape checking, gradient-flow lint, repo lint.

Three analyzers behind one :class:`~repro.analyze.findings.Finding` model:

* :mod:`repro.analyze.shapes` — abstract shape/dtype interpreter (SH rules)
* :mod:`repro.analyze.gradflow` — gradient-flow linter (GF rules)
* :mod:`repro.analyze.lint` — repo-invariant AST lint (RL rules)
* :mod:`repro.analyze.engine_support` — capture/replay compilability (EN rules)
* :mod:`repro.analyze.concurrency` — cross-module lock-discipline lint (CC rules)
* :mod:`repro.analyze.lockorder` — runtime lock-order sanitizer (witness graph)
* :mod:`repro.analyze.fixes` — mechanical autofixes (``analyze --fix``)

See ``docs/analysis.md`` for the rule catalog and baseline workflow.
"""

from .concurrency import CONCURRENCY_RULES, analyze_concurrency
from .findings import (
    Baseline,
    DEFAULT_BASELINE_NAME,
    Finding,
    SEVERITIES,
    fingerprints,
    max_severity,
    render_json,
    render_text,
    severity_rank,
)
from .engine_support import check_engine_support
from .fixes import FIXABLE_RULES, apply_fixes
from .gradflow import lint_gradient_flow
from .lint import LintRule, lint_paths, registered_rules, rule
from .lockorder import LockOrderSanitizer, LockOrderViolation, checkpoint
from .runner import AnalysisReport, analyze_models, run_analysis
from .shapes import (
    ModelShapeError,
    SymDim,
    SymTensor,
    SymbolicShapeError,
    check_forecast_model,
    check_micro_batch_shapes,
    check_served_model,
    sym_window,
    symbolic_execution,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "CONCURRENCY_RULES",
    "DEFAULT_BASELINE_NAME",
    "FIXABLE_RULES",
    "Finding",
    "LintRule",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "ModelShapeError",
    "SEVERITIES",
    "SymDim",
    "SymTensor",
    "SymbolicShapeError",
    "analyze_concurrency",
    "analyze_models",
    "apply_fixes",
    "check_engine_support",
    "checkpoint",
    "check_forecast_model",
    "check_micro_batch_shapes",
    "check_served_model",
    "fingerprints",
    "lint_gradient_flow",
    "lint_paths",
    "max_severity",
    "registered_rules",
    "render_json",
    "render_text",
    "rule",
    "run_analysis",
    "severity_rank",
    "sym_window",
    "symbolic_execution",
]
