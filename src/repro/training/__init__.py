"""Training protocol, experiment runner, and table formatting."""

from .trainer import DivergenceDetected, Trainer, TrainingConfig, TrainingHistory
from .experiment import (
    ExperimentResult,
    RepeatedResult,
    count_parameters,
    default_tgcrn_kwargs,
    run_experiment,
    run_repeated,
)
from .analysis import (
    SignificanceReport,
    horizon_curve_text,
    improvement_over_best_baseline,
    improvement_table,
    paired_significance,
)
from .tables import (
    format_ablation_table,
    format_cost_table,
    format_demand_table,
    format_electricity_table,
    format_metro_table,
    format_relative_series,
)

__all__ = [
    "DivergenceDetected",
    "ExperimentResult",
    "RepeatedResult",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "SignificanceReport",
    "count_parameters",
    "horizon_curve_text",
    "improvement_over_best_baseline",
    "improvement_table",
    "paired_significance",
    "default_tgcrn_kwargs",
    "format_ablation_table",
    "format_cost_table",
    "format_demand_table",
    "format_electricity_table",
    "format_metro_table",
    "format_relative_series",
    "run_experiment",
    "run_repeated",
]
