"""Table VIII: parameter counts and training time per epoch.

Parameter counts are computed at the *paper's* HZMetro configuration
(N = 80, hidden 64, two layers, TGCRN at (d_ν, d_τ) = (16,16) and
(64,32)) so the ordering matches the published table:
DCRNN/GWNet < AGCRN < ESG < TGCRN(16,16) < TGCRN(64,32) < PVCGN.
Per-epoch time is measured on the quick-scale training config, where the
expected shape is static-graph models cheapest, dynamic-graph models
(ESG, TGCRN) costlier, multi-graph PVCGN the most expensive recurrent.
"""

from __future__ import annotations

import numpy as np

from bench_utils import perf_snapshot, report, scale, tgcrn_kwargs

from repro.baselines import build_baseline
from repro.core import TGCRN
from repro.data import load_task
from repro.training import TrainingConfig, format_cost_table, run_experiment

GRAPH_MODELS = ("dcrnn", "agcrn", "gwnet", "pvcgn", "esg")


def _paper_scale_parameters() -> list[tuple[str, int]]:
    """Instantiate each graph model at HZMetro scale and count weights."""
    task = load_task("hzmetro", num_nodes=80, num_days=3, seed=0)
    rows = []
    for name in GRAPH_MODELS:
        model = build_baseline(name, task, hidden_dim=64, num_layers=2, seed=0)
        rows.append((name, model.num_parameters()))
    common = dict(
        num_nodes=80, in_dim=2, out_dim=2, horizon=4, hidden_dim=64,
        num_layers=2, steps_per_day=task.steps_per_day,
    )
    for dv, dt in ((16, 16), (64, 32)):
        model = TGCRN(**common, node_dim=dv, time_dim=dt, rng=np.random.default_rng(0))
        rows.append((f"tgcrn (dv={dv},dt={dt})", model.num_parameters()))
    return rows


def _timed_epochs() -> dict[str, float]:
    """Seconds per epoch on the quick config (relative ordering matters)."""
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=2, batch_size=16, seed=0)
    seconds = {}
    for name in GRAPH_MODELS + ("tgcrn",):
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if name == "tgcrn" else {}
        result = run_experiment(name, task, config, hidden_dim=s.hidden_dim,
                                num_layers=s.num_layers, **kwargs)
        seconds[name] = result.seconds_per_epoch
    return seconds


def _compile_speedup(epochs: int = 8, batch_size: int = 4) -> dict:
    """Tiny-TGCRN training cost, eager vs the capture/replay engine.

    Twin models with identical init train side by side on the same batch
    stream — one eager, one through :class:`ExecutionEngine` — and each
    epoch is timed as a back-to-back pair, so the host's frequency drift
    (severe on this 1-core box) cancels inside every ratio.  The first
    pair is excluded (it contains the one-time plan capture) and the
    median of the steady-state paired ratios is reported.  Loss curves
    must match bitwise: the engine's contract is identical arithmetic,
    so any divergence is a correctness bug, not noise.
    """
    from time import perf_counter

    from repro.autodiff import Tensor, mae_loss
    from repro.autodiff.engine import ExecutionEngine, discover_rngs
    from repro.nn import Adam, clip_grad_norm
    from repro.verify import named_rng

    task = load_task("hzmetro", num_nodes=4, num_days=4, seed=0)

    def make() -> TGCRN:
        return TGCRN(
            num_nodes=task.num_nodes, in_dim=task.in_dim, out_dim=task.out_dim,
            horizon=task.horizon, hidden_dim=4, num_layers=1, node_dim=3,
            time_dim=3, steps_per_day=task.steps_per_day,
            rng=named_rng(0, "table8-compile"),
        )

    model_eager, model_compiled = make(), make()
    opt_eager = Adam(model_eager.parameters(), lr=1e-3, weight_decay=1e-4)
    opt_compiled = Adam(model_compiled.parameters(), lr=1e-3, weight_decay=1e-4)
    engine = ExecutionEngine("bench:tgcrn", rngs=discover_rngs(model_compiled))
    batches = list(task.loader("train", batch_size, shuffle=False))
    model_eager.train(True)
    model_compiled.train(True)

    def step_of(model):
        def step(x_t, y_t, t):
            loss = mae_loss(model(x_t, t), y_t)
            loss.backward()
            return loss
        return step

    step_eager = step_of(model_eager)
    step_compiled = step_of(model_compiled)

    def epoch(model, opt, run) -> tuple[float, float]:
        start = perf_counter()
        total = 0.0
        for x, y, t in batches:
            opt.zero_grad()
            loss = run(Tensor(x), Tensor(y), t)
            clip_grad_norm(model.parameters(), 5.0)
            opt.step()
            total += loss.item()
        return perf_counter() - start, total / len(batches)

    eager_times, compiled_times = [], []
    eager_losses, compiled_losses = [], []
    for _ in range(epochs):
        seconds, loss = epoch(model_eager, opt_eager,
                              lambda *a: step_eager(*a))
        eager_times.append(seconds)
        eager_losses.append(loss)
        seconds, loss = epoch(model_compiled, opt_compiled,
                              lambda *a: engine.run(step_compiled, *a))
        compiled_times.append(seconds)
        compiled_losses.append(loss)

    ratios = [c / e for e, c in zip(eager_times[1:], compiled_times[1:])]
    return {
        "eager_seconds_per_epoch": float(np.mean(eager_times[1:])),
        "compiled_seconds_per_epoch": float(np.mean(compiled_times[1:])),
        "compiled_over_eager": float(np.median(ratios)),
        "paired_epoch_ratios": [float(r) for r in ratios],
        "loss_curve_bitwise_identical": eager_losses == compiled_losses,
        "engine": dict(engine.stats),
    }


def _run() -> tuple[str, dict]:
    params = dict(_paper_scale_parameters())
    seconds = _timed_epochs()
    compiled = _compile_speedup()
    rows = []
    for name, count in params.items():
        timing_key = name.split(" ")[0]
        rows.append((name, count, seconds.get(timing_key, float("nan"))))
    table = format_cost_table(rows)
    table += (
        "\n\ntiny-TGCRN capture/replay engine (paired epochs, drift-cancelled):\n"
        f"  eager    {compiled['eager_seconds_per_epoch']:.3f}s/epoch\n"
        f"  compiled {compiled['compiled_seconds_per_epoch']:.3f}s/epoch "
        f"({compiled['compiled_over_eager']:.2f}x eager, "
        f"loss curves {'bitwise-identical' if compiled['loss_curve_bitwise_identical'] else 'DIVERGED'})"
    )
    data = {
        "parameters": params,
        "seconds_per_epoch": seconds,
        "compile_speedup": compiled,
    }
    return table, data


def test_table8_cost(benchmark):
    table, data = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The engine's whole contract is bitwise-identical arithmetic; a
    # diverged loss curve is a correctness failure, never timing noise.
    assert data["compile_speedup"]["loss_curve_bitwise_identical"]
    report("table8_cost", table, data=data)
    perf_snapshot("table8_cost", data)
