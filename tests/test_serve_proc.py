"""Process-isolated replica transport: wire protocol, child lifecycle, chaos.

Two layers under test:

* the frame codec (:class:`FrameConn`) over plain socketpairs — no
  child process, so corruption tiers are exact and deterministic;
* :class:`ProcReplicaClient` against a real forked child running a
  real ``ForecastServer`` — spawn/ready, submit/respond, heartbeats,
  wedges, SIGKILL, wire corruption, reload, span stitching, shutdown.
"""

import os
import pickle
import socket
import time
import zlib
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import TGCRN
from repro.nn import save_checkpoint
from repro.obs import MetricsRegistry
from repro.obs.report import assemble_traces
from repro.obs.spans import collect_spans, finish_span, start_span
from repro.serve import (
    DeadlineExceededError,
    ForecastServer,
    InvalidRequestError,
    ProcReplicaClient,
    ReplicaStartupError,
    WireDesyncError,
)
from repro.serve.fleet import ReplicaDownError
from repro.serve.proc import (
    FRAME_ACK,
    FRAME_CONTROL,
    FRAME_HEARTBEAT,
    FRAME_SUBMIT,
    MAGIC,
    MAX_FRAME,
    _HEADER,
    FrameConn,
    _drop_corrupt,
    _error_payload,
    encode_frame,
    rebuild_wire_error,
)
from repro.serve.queueing import ServiceOverloadedError
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


# --------------------------------------------------------------------- #
# wire protocol (no child process)
# --------------------------------------------------------------------- #


@contextmanager
def _pair():
    a, b = socket.socketpair()
    try:
        yield FrameConn(a), FrameConn(b)
    finally:
        a.close()
        b.close()


class TestWireProtocol:
    def test_frame_roundtrip_preserves_type_and_payload(self):
        with _pair() as (tx, rx):
            tx.send_frame(FRAME_SUBMIT, {"id": "r1", "n": 3})
            tx.send_frame(FRAME_ACK, {"ok": True, "arr": [1.5, 2.5]})
            frames = _drop_corrupt(rx.recv_frames(timeout=1.0))
            assert frames == [(FRAME_SUBMIT, {"id": "r1", "n": 3}),
                              (FRAME_ACK, {"ok": True, "arr": [1.5, 2.5]})]
            assert rx.corrupt_frames == 0

    def test_partial_frame_waits_for_the_rest(self):
        blob = encode_frame(FRAME_CONTROL, {"op": "noop"})
        with _pair() as (tx, rx):
            tx.send_raw(blob[:7])
            assert rx.recv_frames(timeout=0.05) == []
            tx.send_raw(blob[7:])
            assert _drop_corrupt(rx.recv_frames(timeout=1.0)) == [
                (FRAME_CONTROL, {"op": "noop"})]

    def test_bad_crc_is_counted_and_stream_continues(self):
        body = pickle.dumps({"op": "noop"})
        damaged = _HEADER.pack(MAGIC, FRAME_CONTROL, len(body),
                               zlib.crc32(body) ^ 0xDEADBEEF) + body
        with _pair() as (tx, rx):
            tx.send_raw(damaged)
            tx.send_frame(FRAME_ACK, {"ok": True})
            frames = _drop_corrupt(rx.recv_frames(timeout=1.0))
            assert frames == [(FRAME_ACK, {"ok": True})]
            assert rx.corrupt_frames == 1

    def test_unpicklable_payload_is_corrupt_not_desync(self):
        junk = b"\x80\x05not-a-pickle"
        damaged = _HEADER.pack(MAGIC, FRAME_CONTROL, len(junk),
                               zlib.crc32(junk)) + junk
        with _pair() as (tx, rx):
            tx.send_raw(damaged)
            tx.send_frame(FRAME_ACK, {"ok": True})
            assert _drop_corrupt(rx.recv_frames(timeout=1.0)) == [
                (FRAME_ACK, {"ok": True})]
            assert rx.corrupt_frames == 1

    def test_bad_magic_is_desync(self):
        blob = encode_frame(FRAME_CONTROL, {"op": "noop"})
        with _pair() as (tx, rx):
            tx.send_raw(b"XX" + blob[2:])
            with pytest.raises(WireDesyncError):
                rx.recv_frames(timeout=1.0)

    def test_oversized_length_is_desync(self):
        body = pickle.dumps({})
        raw = _HEADER.pack(MAGIC, FRAME_CONTROL, MAX_FRAME + 1,
                           zlib.crc32(body)) + body
        with _pair() as (tx, rx):
            tx.send_raw(raw)
            with pytest.raises(WireDesyncError):
                rx.recv_frames(timeout=1.0)

    def test_eof_sets_flag_and_returns_parsed_prefix(self):
        with _pair() as (tx, rx):
            tx.send_frame(FRAME_ACK, {"ok": True})
            tx.close()
            frames = _drop_corrupt(rx.recv_frames(timeout=1.0))
            assert frames == [(FRAME_ACK, {"ok": True})]
            assert rx.eof


class TestWireErrors:
    def test_invalid_request_roundtrip(self):
        exc = rebuild_wire_error(
            _error_payload(InvalidRequestError("shape", "bad window")))
        assert isinstance(exc, InvalidRequestError)
        assert exc.code == "shape" and exc.detail == "bad window"

    def test_deadline_exceeded_roundtrip_keeps_message(self):
        original = DeadlineExceededError("req-9", 10.0, 11.0)
        exc = rebuild_wire_error(_error_payload(original))
        assert isinstance(exc, DeadlineExceededError)
        assert exc.request_id == "req-9"
        assert str(exc) == str(original)

    def test_overloaded_roundtrip(self):
        exc = rebuild_wire_error(
            _error_payload(ServiceOverloadedError(8, 8, detail="full")))
        assert isinstance(exc, ServiceOverloadedError)
        assert (exc.depth, exc.max_depth) == (8, 8)

    def test_unknown_error_degrades_to_runtime_error(self):
        exc = rebuild_wire_error(_error_payload(KeyError("boom")))
        assert isinstance(exc, RuntimeError)
        assert "KeyError" in str(exc)


# --------------------------------------------------------------------- #
# live child process
# --------------------------------------------------------------------- #


def _model(task, tag="proc"):
    return TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=4, node_dim=3, time_dim=3,
                               num_layers=1),
        rng=named_rng(3, f"proc-{tag}"),
    )


def _server_factory(task):
    def factory():
        return ForecastServer(
            _model(task), task, queue_depth=8, max_batch=4,
            model_factory=lambda: _model(task),
            metrics=MetricsRegistry(run="proc-test"),
            logger=None, clock=time.monotonic, slo=False)
    return factory


def _payload(task, i, rid=None, **extra):
    j = i % len(task.test)
    return {"window": task.test.inputs[j],
            "time_index": task.test.time_indices[j],
            "id": rid or f"req-{i}", **extra}


@contextmanager
def _client(task, **kw):
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("ack_timeout", 2.0)
    client = ProcReplicaClient("p0", _server_factory(task), **kw)
    client.spawn()
    try:
        client.wait_ready(timeout=60.0)
        yield client
    finally:
        client.close(drain=False, timeout=5.0)


def _answers(client, want=1, budget=30.0):
    got = []
    end = time.monotonic() + budget
    while len(got) < want and time.monotonic() < end:
        client.process_once()
        got.extend(client.take_responses())
        time.sleep(0.005)
    assert len(got) >= want, f"only {len(got)}/{want} responses in {budget}s"
    return got


def _assert_reaped(pid):
    try:
        os.kill(pid, 0)
    except OSError:
        return
    with open(f"/proc/{pid}/stat") as fh:
        state = fh.read().rsplit(")", 1)[1].split()[0]
    assert state == "Z", f"child pid {pid} still running"


class TestProcReplicaLifecycle:
    def test_spawn_serve_health_close(self, tiny_task):
        with _client(tiny_task) as client:
            pid = client.pid
            assert client.is_alive() and client.ready
            assert pid is not None and pid != os.getpid()
            rid = client.submit(_payload(tiny_task, 0))
            (resp,) = _answers(client, want=1)
            assert resp.request_id == rid and resp.source == "model"
            assert resp.prediction.shape == (
                tiny_task.horizon, tiny_task.num_nodes, tiny_task.out_dim)
            assert np.all(np.isfinite(resp.prediction))
            # heartbeats keep flowing and surface child-side state
            time.sleep(0.15)
            health = client.health()
            assert health["status"] == "ok"
            assert health["transport"] == "process"
            assert health["pid"] == pid
            assert client.last_heartbeat is not None
        assert not client.is_alive()
        _assert_reaped(pid)

    def test_invalid_request_error_crosses_the_wire(self, tiny_task):
        with _client(tiny_task) as client:
            with pytest.raises(InvalidRequestError) as excinfo:
                client.submit({"id": "bad", "window": "nonsense"})
            assert excinfo.value.code
            # the child survived the rejection
            client.submit(_payload(tiny_task, 0))
            _answers(client, want=1)

    def test_sigkill_then_respawn(self, tiny_task):
        with _client(tiny_task) as client:
            first_pid = client.pid
            client.submit(_payload(tiny_task, 0, rid="doomed"))
            client.kill_process()
            assert not client.is_alive()
            with pytest.raises(ReplicaDownError):
                client.submit(_payload(tiny_task, 1))
            dropped = client.abort("failover")
            assert "doomed" in dropped
            client.respawn()
            client.wait_ready(timeout=60.0)
            assert client.pid != first_pid
            assert client.restarts == 1
            client.submit(_payload(tiny_task, 2))
            (resp,) = _answers(client, want=1)
            assert resp.source == "model"
            _assert_reaped(first_pid)

    def test_wedge_admits_but_never_answers_until_unwedged(self, tiny_task):
        with _client(tiny_task) as client:
            assert client.inject_wedge()
            client.submit(_payload(tiny_task, 0, rid="stuck"))
            deadline = time.monotonic() + 0.4
            while time.monotonic() < deadline:
                client.process_once()
                time.sleep(0.01)
            assert client.take_responses() == []
            assert client.outstanding == 1
            assert client.inject_unwedge()
            (resp,) = _answers(client, want=1)
            assert resp.request_id == "stuck"

    def test_recoverable_corruption_is_counted_not_fatal(self, tiny_task):
        with _client(tiny_task) as client:
            client.inject_corrupt_frame("crc")
            client.inject_corrupt_frame("payload")
            client.submit(_payload(tiny_task, 0))
            (resp,) = _answers(client, want=1)
            assert resp.source == "model"
            # the heartbeat reports the child-side corrupt-frame count
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.health().get("corrupt_frames", 0) >= 2:
                    break
                time.sleep(0.01)
            assert client.health().get("corrupt_frames", 0) >= 2
            assert client.is_alive()

    def test_magic_corruption_desyncs_the_child(self, tiny_task):
        with _client(tiny_task) as client:
            pid = client.pid
            client.inject_corrupt_frame("magic")
            deadline = time.monotonic() + 10.0
            while client.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not client.is_alive(), "child should exit on stream desync"
            assert client._process.exitcode == 3
            client.respawn()
            client.wait_ready(timeout=60.0)
            client.submit(_payload(tiny_task, 0))
            _answers(client, want=1)
            _assert_reaped(pid)

    def test_reload_checkpoint_over_the_wire(self, tiny_task, tmp_path):
        with _client(tiny_task) as client:
            old_version = client.model_version
            path = tmp_path / "candidate.npz"
            save_checkpoint(path, _model(tiny_task, tag="v2"),
                            metadata={"tag": "v2"})
            assert client.reload_checkpoint(path)
            assert client.model_version != old_version
            assert not client.reload_checkpoint(tmp_path / "missing.npz")
            client.submit(_payload(tiny_task, 0))
            (resp,) = _answers(client, want=1)
            assert resp.source == "model"

    def test_slow_start_misses_short_ready_deadline(self, tiny_task):
        client = ProcReplicaClient("p0", _server_factory(tiny_task),
                                   heartbeat_interval=0.05, ack_timeout=2.0,
                                   slow_start_s=1.0)
        client.spawn()
        try:
            with pytest.raises(ReplicaStartupError):
                client.wait_ready(timeout=0.2)
            client.wait_ready(timeout=60.0)  # eventually comes up
            assert client.ready
        finally:
            client.close(drain=False, timeout=5.0)

    def test_graceful_close_drains_in_flight_work(self, tiny_task):
        client = ProcReplicaClient("p0", _server_factory(tiny_task),
                                   heartbeat_interval=0.05, ack_timeout=2.0)
        client.spawn()
        pid = None
        try:
            client.wait_ready(timeout=60.0)
            pid = client.pid
            client.submit(_payload(tiny_task, 0, rid="draining"))
        finally:
            client.close(drain=True, timeout=15.0)
        responses = client.take_responses()
        assert [r.request_id for r in responses] == ["draining"]
        assert not client.is_alive()
        if pid is not None:
            _assert_reaped(pid)


class TestCrossProcessSpans:
    def test_child_spans_ship_back_and_stitch_under_parent(self, tiny_task):
        with collect_spans() as collector:
            with _client(tiny_task) as client:
                root = start_span("fleet_request", attrs={"request_id": "t1"})
                client.submit(_payload(tiny_task, 0, rid="t1"),
                              parent_span=root)
                _answers(client, want=1)
                finish_span(root, status="ok")
        records = collector.records
        child = [r for r in records
                 if str(r.get("span_id", "")).startswith("p0.")]
        assert child, "no child-side span records were ingested"
        assert any(r.get("name") == "request" for r in child)
        # every shipped child span stitches into the parent's trace
        trees = assemble_traces(records)
        (tree,) = [t for t in trees.values()
                   if any(r.name == "fleet_request" for r in t.roots)]
        names = {node.name for node in tree.nodes.values()}
        assert "request" in names
        assert tree.orphans == []
        assert tree.unfinished() == []
