"""Tests for the command-line interface (in-process, tiny configs)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


_DS = ["--dataset", "hzmetro", "--nodes", "6", "--days", "6"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "hzmetro"
        assert args.model == "tgcrn"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "mars_metro"])


class TestCommands:
    def test_inspect(self, capsys):
        assert main(["inspect", *_DS]) == 0
        out = capsys.readouterr().out
        assert "hzmetro" in out
        assert "Monday" in out

    def test_train_and_evaluate_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "model.npz")
        code = main([
            "train", *_DS, "--epochs", "1", "--hidden", "8",
            "--node-dim", "4", "--time-dim", "4", "--save", ck,
        ])
        assert code == 0
        train_out = capsys.readouterr().out
        assert "checkpoint written" in train_out

        code = main([
            "evaluate", *_DS, "--hidden", "8", "--node-dim", "4",
            "--time-dim", "4", "--checkpoint", ck,
        ])
        assert code == 0
        eval_out = capsys.readouterr().out
        assert "test: MAE" in eval_out
        # The evaluated MAE must match what training reported (exact reload).
        train_line = next(l for l in train_out.splitlines() if l.startswith("tgcrn on"))
        eval_line = next(l for l in eval_out.splitlines() if l.startswith("test:"))
        train_mae = float(train_line.split("MAE ")[1].split(" ")[0])
        eval_mae = float(eval_line.split("MAE ")[1].split(" ")[0])
        assert eval_mae == pytest.approx(train_mae, rel=1e-6)

    def test_train_baseline(self, capsys):
        assert main(["train", *_DS, "--model", "ha"]) == 0
        assert "ha on hzmetro" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main([
            "compare", *_DS, "--epochs", "1", "--hidden", "8",
            "--models", "ha,tgcrn", "--node-dim", "4", "--time-dim", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-horizon MAE" in out
        assert "best baseline" in out


class TestVerifyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.sample == 8
        assert not args.update_golden

    def test_verify_passes_without_golden_fixture(self, tmp_path, capsys):
        code = main(["verify", "--golden", str(tmp_path / "missing.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-checks" in out
        assert "gradient oracle PASSED" in out
        assert "not found, skipping" in out
        assert "verify: PASSED" in out

    def test_verify_update_then_compare_golden(self, tmp_path, capsys):
        golden = str(tmp_path / "golden.json")
        assert main(["verify", "--golden", golden, "--update-golden"]) == 0
        assert "regenerated" in capsys.readouterr().out
        assert main(["verify", "--golden", golden]) == 0
        assert "matches the committed fixture" in capsys.readouterr().out

    def test_verify_fails_on_stale_golden(self, tmp_path, capsys):
        """A drifted fixture must flip the exit code to 1."""
        import json

        from repro.verify import run_golden_trace, save_trace

        trace = run_golden_trace()
        trace.train_losses[0] += 0.1
        golden = tmp_path / "stale.json"
        save_trace(golden, trace)
        assert json.loads(golden.read_text())["train_losses"]  # sanity
        assert main(["verify", "--golden", str(golden)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "verify: FAILED" in out
