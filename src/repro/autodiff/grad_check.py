"""Numerical gradient verification for the autodiff engine.

Every primitive and every composed model block in the test suite is checked
against central finite differences through :func:`check_gradients`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn()`` w.r.t. ``parameter``.

    The parameter payload is perturbed in place and restored under
    ``try/finally``, so an exception raised by ``fn`` mid-sweep cannot leave
    the parameter corrupted.  Only floating-point parameters are accepted —
    perturbing an integer payload by ``epsilon`` silently rounds to a no-op
    and would report a spurious zero gradient.
    """
    if not np.issubdtype(parameter.data.dtype, np.floating):
        raise TypeError(
            f"numerical_gradient requires a floating-point parameter, "
            f"got dtype {parameter.data.dtype}"
        )
    grad = np.zeros_like(parameter.data)
    grad_flat = grad.reshape(-1)
    # ``.flat`` indexes the original buffer regardless of memory layout
    # (``reshape(-1)`` can silently return a copy for non-contiguous data).
    flat = parameter.data.flat
    for i in range(parameter.data.size):
        original = flat[i]
        try:
            flat[i] = original + epsilon
            plus = fn().item()
            flat[i] = original - epsilon
            minus = fn().item()
        finally:
            flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert analytic gradients of scalar ``fn()`` match finite differences.

    ``fn`` must rebuild the graph on every call (it is invoked repeatedly
    with perturbed parameter payloads).
    """
    for p in parameters:
        p.zero_grad()
    loss = fn()
    loss.backward()
    for index, parameter in enumerate(parameters):
        expected = numerical_gradient(fn, parameter, epsilon=epsilon)
        actual = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
        if not np.allclose(actual, expected, rtol=rtol, atol=atol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch for parameter {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumerical:\n{expected}"
            )
