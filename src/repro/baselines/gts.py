"""GTS (Shang et al., ICLR 2021): discrete graph structure learning.

A feature extractor summarizes each node's *training series* into a
static representation; pairwise MLP scores parameterize Bernoulli edge
probabilities, sampled with the Gumbel straight-through trick during
training and thresholded at evaluation.  The sampled graph drives a
recurrent forecaster.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, gumbel_softmax, stack, zeros
from ..nn import Linear, Module, ModuleList
from .cells import DynamicGraphGRUCell


class GTS(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        node_features: np.ndarray,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 1,
        feature_dim: int = 16,
        temperature: float = 0.5,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = node_features.shape[0]
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.temperature = temperature
        self._rng = rng
        # Static per-node summary of the training series (mean/std pooling
        # of the raw history stands in for GTS's conv feature extractor).
        self._node_summary = Tensor(node_features)
        self.feature_proj = Linear(node_features.shape[1], feature_dim, rng=rng)
        self.edge_scorer = Linear(2 * feature_dim, 2, rng=rng)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        self.cells = ModuleList([DynamicGraphGRUCell(d, hidden_dim, hops=1, rng=rng) for d in dims])
        self.head = Linear(hidden_dim, horizon * out_dim, rng=rng)

    @staticmethod
    def summarize_series(series: np.ndarray) -> np.ndarray:
        """(T, N, d) training series -> (N, 2*d) mean/std node features."""
        return np.concatenate([series.mean(axis=0), series.std(axis=0)], axis=-1)

    def edge_logits(self) -> Tensor:
        features = self.feature_proj(self._node_summary).relu()  # (N, F)
        n = self.num_nodes
        left = features.unsqueeze(1).broadcast_to((n, n, features.shape[-1]))
        right = features.unsqueeze(0).broadcast_to((n, n, features.shape[-1]))
        return self.edge_scorer(concat([left, right], axis=-1))  # (N, N, 2)

    def sample_adjacency(self, batch: int) -> Tensor:
        logits = self.edge_logits()
        if self.training:
            edges = gumbel_softmax(logits, self.temperature, self._rng, hard=True, axis=-1)
            adjacency = edges[:, :, 0]
        else:
            adjacency = Tensor((logits.data[:, :, 0] > logits.data[:, :, 1]).astype(float))
        row_sum = adjacency.sum(axis=-1, keepdims=True) + 1e-6
        adjacency = adjacency / row_sum
        return adjacency.unsqueeze(0).broadcast_to((batch, self.num_nodes, self.num_nodes))

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        adjacency = self.sample_adjacency(batch)
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            layer_input = x[:, t]
            new_hiddens = []
            for cell, hidden in zip(self.cells, hiddens):
                layer_input = cell(layer_input, hidden, adjacency)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
        flat = self.head(hiddens[-1])
        out = flat.reshape(batch, self.num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
