"""Shared fixtures (deterministic RNGs, cached tiny tasks) and test tiers.

Two tiers (docs/testing.md):

* **tier1** — everything not marked ``slow``; the fast subset run on every
  push (``pytest -m "not slow"`` or equivalently ``-m tier1``).  The marker
  is applied automatically here, so tests never need to opt in.
* **slow** — exhaustive property sweeps and full-coordinate gradient
  checks; excluded from tier-1 and run as a scheduled job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_task


def pytest_collection_modifyitems(config, items):
    """Auto-apply ``tier1`` to every test that is not marked ``slow``."""
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_task():
    """An 8-node, 8-day HZMetro-style task shared across test modules."""
    return load_task("hzmetro", num_nodes=8, num_days=8, seed=7)


@pytest.fixture(scope="session")
def tiny_demand_task():
    """A small NYC-Bike-style task (P=Q=12, 30-min slots)."""
    return load_task("nyc_bike", num_nodes=8, num_days=8, seed=7, history=6, horizon=6)


@pytest.fixture
def tiny_tgcrn_setup():
    """A tiny TGCRN plus a deterministic scalar loss closure for the oracle.

    Returns ``(model, loss_fn)`` — small enough that a sampled-coordinate
    :func:`repro.verify.check_module_gradients` pass stays well inside the
    tier-1 time budget.
    """
    from repro.autodiff import Tensor, mae_loss
    from repro.core import TGCRN
    from repro.verify import named_rng

    rng = named_rng(7, "tiny-tgcrn-fixture")
    model = TGCRN(
        num_nodes=3, in_dim=1, out_dim=1, horizon=2, hidden_dim=3,
        num_layers=1, node_dim=3, time_dim=3, steps_per_day=8, rng=rng,
    )
    x = Tensor(rng.normal(size=(2, 3, 3, 1)))
    t = np.arange(5)[None, :].repeat(2, axis=0)
    y = Tensor(rng.normal(size=(2, 2, 3, 1)))

    def loss_fn():
        return mae_loss(model(x, t), y)

    return model, loss_fn
