"""Table VII: ablation study of TGCRN's components on HZMetro/SHMetro.

Expected shape (paper): *w/o tagsl* suffers the largest drop; *w/ TE*,
*w/o TDL*, *w/o PDF*, *Time2vec*, *CTR*, and *w/o enc-dec* all trail the
full model by smaller but consistent margins.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_ablation_table, run_experiment

VARIANTS = ("tgcrn", "wo_tagsl", "w_te", "wo_tdl", "wo_pdf", "time2vec", "ctr", "wo_encdec")


def _run(dataset: str) -> str:
    s = scale()
    task = load_task(dataset, num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    results = [
        run_experiment(name, task, config, hidden_dim=s.hidden_dim,
                       model_kwargs=tgcrn_kwargs(s))
        for name in VARIANTS
    ]
    return format_ablation_table(results)


def test_table7_ablation_hzmetro(benchmark):
    table = benchmark.pedantic(lambda: _run("hzmetro"), rounds=1, iterations=1)
    report("table7_ablation_hzmetro", table)


def test_table7_ablation_shmetro(benchmark):
    table = benchmark.pedantic(lambda: _run("shmetro"), rounds=1, iterations=1)
    report("table7_ablation_shmetro", table)
