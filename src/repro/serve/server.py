"""The forecast service: a synchronous core with a thread-driven rim.

Design: every serving decision — validate, admit, batch, infer, contain,
respond — lives in synchronous methods (:meth:`ForecastServer.submit`,
:meth:`ForecastServer.process_once`) that tests drive deterministically
with an injected clock.  A single worker thread (:meth:`start` /
:meth:`stop`) merely loops ``process_once`` for real deployments; no
correctness lives in the thread.

Containment contract (docs/serving.md): a *valid, admitted* request is
always answered — by the live model when its output passes
:func:`~repro.resilience.degrade.validate_output`, by the
:class:`~repro.baselines.historical.HistoricalAverage` fallback
(explicitly marked ``source="historical_average"``) when the model
fails or the circuit breaker is open.  The only structured refusals are
at the front door (:class:`~.validation.InvalidRequestError`,
:class:`~.queueing.ServiceOverloadedError`,
:class:`~.queueing.DeadlineExceededError`) plus deadline sheds, which get
an explicit ``source="shed"`` response rather than silence.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, no_grad
from ..baselines.historical import HistoricalAverage
from ..nn.serialization import (
    CheckpointCorruptionError,
    load_checkpoint,
    state_hash,
)
from ..obs import MetricsRegistry, SLOMonitor
from ..obs.spans import finish_span, start_span, use_span
from ..resilience.degrade import output_bound, validate_output
from .breaker import CircuitBreaker
from .queueing import MicroBatcher, RequestQueue
from .validation import ForecastRequest, RequestSpec, validate_request


@dataclass
class ForecastResponse:
    """One answered request, with full provenance.

    ``source`` is ``"model"`` (healthy forecast), ``"historical_average"``
    (explicitly-marked fallback), or ``"shed"`` (deadline passed while
    queued; ``prediction`` is ``None``).  ``degraded`` is True for every
    non-model answer; ``reason`` says why.
    """

    request_id: str
    prediction: np.ndarray | None
    source: str = "model"
    degraded: bool = False
    reason: str | None = None
    latency_ms: float = 0.0
    deadline_missed: bool = False
    model_version: str | None = None
    metadata: dict = field(default_factory=dict)


class ForecastServer:
    """Fault-contained serving of one live model over one task.

    Parameters
    ----------
    model:
        Trainer-compatible module: ``model(Tensor(x), t)`` over scaled
        windows.  Swappable at runtime via :meth:`reload_checkpoint`.
    task:
        The :class:`~repro.data.datasets.ForecastingTask` the model was
        trained on — source of the request spec, the output sanity bound,
        and the historical-average fallback.
    queue_depth / max_batch:
        Admission bound and micro-batch budget.
    breaker:
        A :class:`~.breaker.CircuitBreaker`; built with defaults when
        omitted.  Its transitions are re-emitted to metrics + log.
    batch_timeout:
        Seconds a single model batch may take before it counts as a
        breaker *timeout* failure (the output, if valid, is still
        served).  ``None`` disables.
    model_factory:
        Zero-arg callable building a fresh, architecture-identical model
        for :meth:`reload_checkpoint` to load into (so a bad checkpoint
        never touches the live instance).  Defaults to deep-copying the
        initial model.
    logger:
        A :class:`~repro.obs.RunLogger` (or None); every admission,
        shed, trip, fallback, and reload event lands in its JSONL.
    slo:
        A :class:`~repro.obs.SLOMonitor` evaluated over the response
        stream (burn-rate transitions land in the log as ``slo_burn``
        records and in :meth:`health`).  ``None`` (default) builds one
        from :func:`~repro.obs.default_serving_objectives` on the
        server's clock; ``False`` disables SLO monitoring entirely.
    slo_ready_gate:
        When True, :meth:`ready` also reports not-ready while any
        objective's *fast-burn* alert is firing, so an orchestrator
        stops routing new traffic at a latency/error cliff.  Off by
        default (readiness stays purely lifecycle-based).
    clock:
        Monotonic time source shared with deadlines and the breaker;
        injectable for deterministic tests.
    shape_check:
        When True (default), every model is symbolically shape-checked
        against the task (:func:`repro.analyze.shapes.check_served_model`)
        before it takes traffic: construction raises
        :class:`~repro.analyze.shapes.ModelShapeError` on error-severity
        findings, and :meth:`reload_checkpoint` rejects a candidate that
        fails the same check while the live model keeps serving.
    compile:
        When True, the live model is wrapped in
        :class:`~repro.autodiff.engine.CompiledModel` so steady-state
        inference replays a captured execution plan (docs/engine.md)
        instead of re-dispatching every op.  Outputs are bitwise
        identical to eager; any guard violation (shape drift, mutated
        parameters) falls back to eager for that batch and logs a
        ``plan_invalidated`` record.  Checkpoints swapped in by
        :meth:`reload_checkpoint` are wrapped the same way, with a fresh
        engine (old plans are tied to the old parameter buffers).
    """

    def __init__(
        self,
        model,
        task,
        *,
        queue_depth: int = 64,
        max_batch: int = 8,
        breaker: CircuitBreaker | None = None,
        batch_timeout: float | None = None,
        bound_factor: float = 10.0,
        drift_factor: float = 10.0,
        model_factory=None,
        metrics: MetricsRegistry | None = None,
        logger=None,
        clock=time.monotonic,
        shape_check: bool = True,
        compile: bool = False,
        slo: SLOMonitor | None | bool = None,
        slo_ready_gate: bool = False,
    ):
        self.task = task
        self.spec = RequestSpec.for_task(task, drift_factor=drift_factor)
        self.queue = RequestQueue(max_depth=queue_depth)
        self.batcher = MicroBatcher(max_batch=max_batch)
        self.batch_timeout = batch_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry(run="serve")
        self.logger = logger
        self._clock = clock
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        # Re-route (don't clobber) any transition callback the caller set.
        caller_hook = self.breaker._on_transition
        self.breaker._on_transition = (
            lambda tr: (self._on_breaker_transition(tr),
                        caller_hook(tr) if caller_hook else None)
        )

        self._model_lock = threading.RLock()
        self._compile = compile
        self._model = self._prepare_model(model)
        self._model_version = self._version_of(model)
        self._model_factory = model_factory or (lambda: copy.deepcopy(model))
        self._fallback = HistoricalAverage.for_task(task)
        self._bound = output_bound(task, factor=bound_factor)

        self._shape_check = shape_check
        errors = self._shape_errors(model)
        if errors:
            from ..analyze.shapes import ModelShapeError

            raise ModelShapeError(errors)

        if slo is None:
            slo = SLOMonitor(clock=clock, logger=logger, metrics=self.metrics)
        self.slo = slo if slo is not False else None
        self._slo_ready_gate = slo_ready_gate

        # Causal spans (repro.obs.spans): contextvars cannot cross the
        # submit-thread → worker-thread handoff, so open Span objects are
        # captured here per request id and resumed stage by stage on
        # whichever thread dequeues the request.  No-ops (None entries
        # are never stored) unless a SpanCollector is installed.
        self._request_spans: dict[str, dict] = {}
        self._span_lock = threading.Lock()

        self._responses: list[ForecastResponse] = []
        self._responses_lock = threading.Lock()
        self._worker: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._draining = False
        self._started_at = self._clock()
        self._log("server_start", queue_depth=queue_depth, max_batch=max_batch,
                  model_version=self._model_version,
                  failure_threshold=self.breaker.failure_threshold,
                  cooldown=self.breaker.cooldown)

    # -- front door ----------------------------------------------------- #

    def submit(self, payload, now: float | None = None, *,
               parent_span=None) -> str:
        """Validate + admit one request; returns its id.

        Raises :class:`~.validation.InvalidRequestError` (bad payload),
        :class:`~.queueing.DeadlineExceededError` (dead on arrival), or
        :class:`~.queueing.ServiceOverloadedError` (queue full, or the
        server is draining).  Purged-on-admission expired entries get a
        shed response.

        ``parent_span`` nests this request's span tree under a caller
        span (the fleet router's per-shard ``dispatch`` span), so one
        trace covers the whole router → replica causal path; without it
        the request span is its own root.
        """
        now = self._now(now)
        if self._draining or self._stop_event.is_set():
            self.metrics.counter("serve.rejected").inc()
            self._log("request_rejected", code="draining")
            from .queueing import ServiceOverloadedError

            raise ServiceOverloadedError(len(self.queue), self.queue.max_depth,
                                         detail="server is draining")
        # Span timebase is perf_counter (same as the op tracer), captured
        # before validation so the root span covers the whole front door.
        arrived = time.perf_counter()
        try:
            request = validate_request(payload, self.spec, now=now)
        except Exception as exc:
            self.metrics.counter("serve.rejected").inc()
            code = getattr(exc, "code", "invalid")
            self._log("request_rejected", code=code, detail=str(exc))
            requested_id = payload.get("id") if isinstance(payload, dict) else None
            root = start_span(
                "request", parent=parent_span, inherit=False, at=arrived,
                trace_id=None if parent_span is not None
                else (str(requested_id) if requested_id else None))
            admission = start_span("admission", parent=root, inherit=False, at=arrived)
            finish_span(admission, status="error", code=code)
            finish_span(root, status="rejected", code=code)
            raise
        root = start_span("request", parent=parent_span, inherit=False, at=arrived,
                          trace_id=None if parent_span is not None
                          else request.request_id,
                          attrs={"deadline": request.deadline,
                                 "request_id": request.request_id})
        admission = start_span("admission", parent=root, inherit=False, at=arrived)
        finish_span(admission)
        # The queue_wait span and the request-spans entry MUST exist
        # before queue.put: the worker thread can dequeue and answer the
        # request the instant it lands, and it resumes the captured spans.
        queue_span = start_span("queue_wait", parent=root, inherit=False,
                                attrs={"queue_depth": len(self.queue)})
        if root is not None:
            with self._span_lock:
                self._request_spans[request.request_id] = {
                    "root": root, "queue": queue_span,
                }
        try:
            purged = self.queue.put(request, now)
        except Exception as exc:
            self.metrics.counter("serve.shed").inc()
            self._log("request_shed", request_id=request.request_id,
                      stage="admission", detail=str(exc))
            entry = self._span_pop(request.request_id)
            finish_span(entry.get("queue"), status="error")
            finish_span(entry.get("root"), status="rejected", detail=str(exc))
            raise
        for dead in purged:
            self._shed(dead, now, stage="purged_on_admission")
        self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge("serve.queue_depth").set(len(self.queue))
        self._log("request_admitted", request_id=request.request_id,
                  deadline=request.deadline, queue_depth=len(self.queue))
        return request.request_id

    # -- the synchronous core ------------------------------------------- #

    def process_once(self, now: float | None = None) -> list[ForecastResponse]:
        """Serve one round of micro-batches from the queue.

        Returns the responses produced this round (they are also
        appended to the internal sink for :meth:`take_responses`).
        """
        now = self._now(now)
        admitted, shed = self.queue.next_batch(self.batcher.max_batch, now)
        # Dequeue happens here, possibly on the worker thread: resume the
        # captured queue_wait spans and close them at the handoff point.
        for request in admitted:
            finish_span(self._span_entry(request.request_id).get("queue"))
        self.metrics.gauge("serve.queue_depth").set(len(self.queue))
        produced: list[ForecastResponse] = []
        for dead in shed:
            produced.append(self._shed(dead, now, stage="dequeue"))
        for group in self.batcher.groups(admitted):
            produced.extend(self._serve_batch(group, now))
        if self.slo is not None and produced:
            self.slo.evaluate(now)
        return produced

    def drain(self, now: float | None = None) -> list[ForecastResponse]:
        """Synchronously serve until the queue is empty."""
        produced: list[ForecastResponse] = []
        while len(self.queue):
            produced.extend(self.process_once(now))
        return produced

    def take_responses(self) -> list[ForecastResponse]:
        """Pop every completed response (thread-safe sink for callers)."""
        with self._responses_lock:
            out, self._responses = self._responses, []
        return out

    def abort(self, reason: str = "aborted") -> list[str]:
        """Drop everything queued without answering; return the ids.

        Crash teardown: the fleet calls this when a replica is killed so
        the span trees of requests the replica dies holding are closed
        (status ``canceled``) instead of dangling unfinished.  No
        responses are produced — the caller owns the failover.
        """
        dropped = self.queue.clear()
        for request in dropped:
            entry = self._span_pop(request.request_id)
            finish_span(entry.get("queue"), status="canceled")
            finish_span(entry.get("root"), status="canceled", reason=reason)
        if dropped:
            self.metrics.gauge("serve.queue_depth").set(len(self.queue))
            self._log("server_abort", dropped=len(dropped), reason=reason)
        return [request.request_id for request in dropped]

    # -- batch serving -------------------------------------------------- #

    def _serve_batch(self, batch: list[ForecastRequest], now: float) -> list[ForecastResponse]:
        roots = [self._span_entry(r.request_id).get("root") for r in batch]
        assembly = self._stage_spans(roots, "batch_assembly", batch=len(batch))
        x, t = self.batcher.collate(batch)
        for sp in assembly:
            finish_span(sp)
        if self.breaker.allow(now):
            predict_spans = self._stage_spans(
                roots, "predict", batch=len(batch), breaker=self.breaker.state)
            anchor = next((sp for sp in predict_spans if sp is not None), None)
            with use_span(anchor):
                prediction, failure, elapsed = self._model_predict(x, t, len(batch))
            for sp in predict_spans:
                finish_span(sp, status="ok" if failure is None else "error",
                            elapsed_s=elapsed)
            if self.batch_timeout is not None and elapsed > self.batch_timeout and failure is None:
                # Output is usable but the model is too slow to meet
                # deadlines — feed the breaker so persistent slowness
                # flips traffic to the (fast) fallback.
                self.breaker.record_failure(
                    f"batch took {elapsed:.3f}s > timeout {self.batch_timeout:.3f}s", now=now
                )
                self.metrics.counter("serve.timeouts").inc()
            elif failure is None:
                self.breaker.record_success(now=now)
            else:
                self.breaker.record_failure(failure, now=now)
        else:
            prediction, failure = None, "breaker open"

        if failure is None and prediction is not None:
            return [self._respond(r, prediction[i], "model", None, now)
                    for i, r in enumerate(batch)]
        self._log("fallback_served", reason=failure, batch=len(batch),
                  breaker_state=self.breaker.state)
        fallback_spans = self._stage_spans(roots, "fallback", reason=failure)
        fallback = self._fallback_predict(batch)
        for sp in fallback_spans:
            finish_span(sp)
        return [self._respond(r, fallback[i], "historical_average", failure, now)
                for i, r in enumerate(batch)]

    def _model_predict(self, x: np.ndarray, t: np.ndarray, batch_size: int):
        """(prediction | None, failure_reason | None, elapsed_seconds)."""
        started = time.perf_counter()
        try:
            with self._model_lock, no_grad():
                model = self._model
                model.eval()
                raw = model(Tensor(x), t).numpy()
            prediction = self.task.inverse_targets(raw)
            reason = validate_output(prediction, bound=self._bound)
        except Exception as exc:  # containment boundary: no model error escapes
            return None, f"inference raised {type(exc).__name__}: {exc}", \
                time.perf_counter() - started
        elapsed = time.perf_counter() - started
        if reason is not None:
            return None, reason, elapsed
        self.metrics.histogram("serve.batch_size").observe(batch_size)
        return prediction, None, elapsed

    def _fallback_predict(self, batch: list[ForecastRequest]) -> np.ndarray:
        time_indices = np.stack([r.time_index for r in batch])
        scaled = self._fallback.predict_windows(
            time_indices, self.spec.history, self.task.out_dim
        )
        return self.task.inverse_targets(scaled)

    def _respond(self, request: ForecastRequest, prediction, source: str,
                 reason: str | None, now: float) -> ForecastResponse:
        degraded = source != "model"
        response = ForecastResponse(
            request_id=request.request_id,
            prediction=prediction,
            source=source,
            degraded=degraded,
            reason=reason,
            latency_ms=max(0.0, (now - request.received_at) * 1000.0),
            deadline_missed=request.expired(now),
            model_version=self.model_version if source == "model" else None,
            metadata=request.metadata,
        )
        self.metrics.counter(f"serve.{'fallback' if degraded else 'model'}").inc()
        self.metrics.histogram("serve.latency_ms").observe(response.latency_ms)
        if self.slo is not None:
            self.slo.observe(response.latency_ms, failure=degraded, now=now)
        entry = self._span_pop(request.request_id)
        finish_span(entry.get("queue"))  # defensive: normally closed at dequeue
        finish_span(entry.get("root"), status="ok" if not degraded else "degraded",
                    source=source, latency_ms=response.latency_ms)
        with self._responses_lock:
            self._responses.append(response)
        return response

    def _shed(self, request: ForecastRequest, now: float, stage: str) -> ForecastResponse:
        self.metrics.counter("serve.shed").inc()
        self._log("request_shed", request_id=request.request_id, stage=stage,
                  deadline=request.deadline)
        response = ForecastResponse(
            request_id=request.request_id,
            prediction=None,
            source="shed",
            degraded=True,
            reason=f"deadline passed while queued ({stage})",
            latency_ms=max(0.0, (now - request.received_at) * 1000.0),
            deadline_missed=True,
            metadata=request.metadata,
        )
        if self.slo is not None:
            self.slo.observe(response.latency_ms, failure=True, now=now)
        entry = self._span_pop(request.request_id)
        finish_span(entry.get("queue"), status="shed")
        finish_span(entry.get("root"), status="shed", stage=stage)
        with self._responses_lock:
            self._responses.append(response)
        return response

    # -- lifecycle ------------------------------------------------------ #

    def start(self, poll_interval: float = 0.01) -> None:
        """Spawn the worker thread (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop_event.clear()
        self._draining = False

        def loop():
            while not self._stop_event.is_set():
                if self.queue.wait_nonempty(poll_interval):
                    self.process_once()
            if self._draining:
                self.drain()

        self._worker = threading.Thread(target=loop, name="forecast-serve", daemon=True)
        self._worker.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Stop the worker; with ``drain`` answer everything queued first.

        Returns ``True`` on a clean stop.  If the worker thread is still
        alive after ``join(timeout)`` — wedged mid-batch, most likely —
        the failure is **not** swallowed: a structured ``drain_timeout``
        record is emitted, ``serve.drain_timeouts`` is counted, the
        thread handle is kept (so a later call can re-check), the
        synchronous drain is skipped (the queue is not safe to touch
        while the wedged worker may still be consuming it), and the
        method returns ``False`` so callers (the fleet, the replica
        supervisor) can escalate instead of believing the replica
        stopped.
        """
        self._draining = drain
        self._stop_event.set()
        if self._worker is not None:
            self._worker.join(timeout)
            if self._worker.is_alive():
                self.metrics.counter("serve.drain_timeouts").inc()
                self._log("drain_timeout", timeout_s=timeout, drain=drain,
                          queue_depth=len(self.queue),
                          worker=self._worker.name)
                return False
            self._worker = None
        if drain:
            self.drain()  # no-op when the worker already emptied it
        self._log("server_drain", drained=drain, queue_depth=len(self.queue))
        return True

    def health(self) -> dict:
        """Liveness probe: one JSON-ready snapshot of serving state."""
        snap = self.metrics.snapshot()
        statuses = self.slo.evaluate(self._now(None)) if self.slo is not None else []
        degraded = self.breaker.state != "closed" or any(not s.ok for s in statuses)
        return {
            "status": "degraded" if degraded else "ok",
            "breaker": self.breaker.state,
            "queue_depth": len(self.queue),
            "model_version": self.model_version,
            "uptime_s": self._now(None) - self._started_at,
            "slo": [s.to_dict() for s in statuses],
            "counters": snap["counters"],
        }

    def ready(self) -> bool:
        """Readiness probe: accepting traffic (not stopped/draining).

        With ``slo_ready_gate=True``, a firing *fast-burn* alert on any
        objective also reports not-ready: the error budget is burning fast
        enough that routing more traffic here only deepens the incident.
        Slow burn alone never flips readiness — it pages, it doesn't shed.
        """
        if self._draining or self._stop_event.is_set():
            return False
        if self._slo_ready_gate and self.slo is not None:
            statuses = self.slo.evaluate(self._now(None))
            if any("fast_burn" in s.firing for s in statuses):
                return False
        return True

    # -- warm reload ---------------------------------------------------- #

    @property
    def model_version(self) -> str:
        with self._model_lock:  # paired with the reload swap; RLock, so
            return self._model_version  # callers already holding it are fine

    def reload_checkpoint(self, path) -> bool:
        """Atomically swap in a checkpoint; never disturb the live model.

        The checkpoint loads into a *fresh* instance from
        ``model_factory``; the integrity hash embedded by
        :func:`repro.nn.serialization.save_checkpoint` is verified before
        any parameter lands.  On corruption (or any load failure) the
        previously-live model keeps serving and a structured
        ``checkpoint_rejected`` record is logged; on success the live
        model is swapped under the model lock between batches.
        """
        reload_span = start_span("reload", parent=None, inherit=False,
                                 attrs={"path": str(path)})
        try:
            candidate = self._model_factory()
            metadata = load_checkpoint(path, candidate)
        except CheckpointCorruptionError as exc:
            self.metrics.counter("serve.reload_rejected").inc()
            self._log("checkpoint_rejected", path=str(path), reason=exc.reason,
                      expected_hash=exc.expected, actual_hash=exc.actual,
                      live_model_version=self.model_version)
            finish_span(reload_span, status="rejected", reason=exc.reason)
            return False
        except Exception as exc:
            self.metrics.counter("serve.reload_rejected").inc()
            self._log("checkpoint_rejected", path=str(path),
                      reason=f"{type(exc).__name__}: {exc}",
                      live_model_version=self.model_version)
            finish_span(reload_span, status="rejected",
                        reason=f"{type(exc).__name__}")
            return False
        shape_errors = self._shape_errors(candidate)
        if shape_errors:
            self.metrics.counter("serve.reload_rejected").inc()
            self._log("checkpoint_rejected", path=str(path),
                      reason="static shape check failed",
                      findings=[f.to_dict() for f in shape_errors],
                      live_model_version=self.model_version)
            finish_span(reload_span, status="rejected",
                        reason="static shape check failed")
            return False
        version = self._version_of(candidate)
        with self._model_lock:
            old = self._model_version
            self._model = self._prepare_model(candidate)
            self._model_version = version
        self.metrics.counter("serve.reloads").inc()
        self._log("model_reloaded", path=str(path), old_version=old,
                  new_version=version, metadata=metadata)
        finish_span(reload_span, status="ok", old_version=old,
                    new_version=version)
        return True

    # -- plumbing ------------------------------------------------------- #

    def _prepare_model(self, model):
        """Wrap ``model`` for serving; identity unless ``compile=True``.

        Each live model gets its *own* engine: captured plans hold
        references to the exact parameter buffers they were traced over,
        so a reloaded checkpoint must never inherit the previous model's
        plans.
        """
        if not self._compile:
            return model
        from ..autodiff.engine import CompiledModel

        return CompiledModel(model, label="serve", logger=self.logger)

    def _shape_errors(self, model) -> list:
        """Error-severity findings from the static shape check (or [])."""
        if not self._shape_check:
            return []
        from ..analyze.shapes import check_micro_batch_shapes, check_served_model
        from ..nn import Module

        # Chaos/fault wrappers delegate to an inner model; check that one
        # so the wrapper's own behavior (call counting, induced latency,
        # value poisoning) is not perturbed or misread as a shape defect.
        while not isinstance(model, Module) and hasattr(model, "inner"):
            model = model.inner
        if not isinstance(model, Module):
            return []
        if self._compile:
            # Compiled serving captures one plan per input signature, so
            # every merge size the micro-batcher can emit becomes its own
            # shape bucket — verify all of them statically (SH008 catches
            # batch-dim inflexibility before a bucket hits the engine).
            findings = check_micro_batch_shapes(
                model, self.task, max_batch=self.batcher.max_batch)
        else:
            findings = check_served_model(model, self.task)
        self.metrics.counter("serve.shape_check_findings").inc(len(findings))
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            self.metrics.counter("serve.shape_check_rejected").inc()
            self._log("shape_check_failed",
                      findings=[f.to_dict() for f in errors])
        return errors

    def _version_of(self, model) -> str:
        # Hash the state dict (not the instance) so chaos wrappers that
        # delegate ``state_dict`` still get a real version fingerprint.
        try:
            return state_hash(dict(model.state_dict()))[:12]
        except Exception:
            return "unhashable"

    def _span_entry(self, request_id: str) -> dict:
        """Captured spans for a live request ({} when tracing is off)."""
        with self._span_lock:
            return self._request_spans.get(request_id, {})

    def _span_pop(self, request_id: str) -> dict:
        with self._span_lock:
            return self._request_spans.pop(request_id, {})

    def _stage_spans(self, roots: list, name: str, **attrs) -> list:
        """One child stage span per request root (None where untraced)."""
        return [start_span(name, parent=root, inherit=False, attrs=attrs)
                if root is not None else None
                for root in roots]

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def _on_breaker_transition(self, transition) -> None:
        self.metrics.counter(f"serve.breaker_{transition.new}").inc()
        if transition.new == "open":
            self.metrics.counter("serve.breaker_trips").inc()
        self._log(f"breaker_{transition.new}", old=transition.old,
                  reason=transition.reason)

    def _log(self, event: str, **fields) -> None:
        if self.logger is not None:
            self.logger.log(event, **fields)
