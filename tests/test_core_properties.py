"""Hypothesis property tests for the core model components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.core import DiscreteTimeEmbedding, TagSL
from repro.core.gcgru import GCGRUCell


@given(
    num_nodes=st.integers(min_value=2, max_value=8),
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_tagsl_shape_contract(num_nodes, batch, seed):
    rng = np.random.default_rng(seed)
    enc = DiscreteTimeEmbedding(24, 3, rng=rng)
    tagsl = TagSL(num_nodes, 4, enc, rng=rng)
    state = Tensor(rng.normal(size=(batch, num_nodes, 2)))
    times = rng.integers(0, 100, size=batch)
    adjacency = tagsl(state, times)
    assert adjacency.shape == (batch, num_nodes, num_nodes)
    normalized = tagsl.normalized(state, times)
    np.testing.assert_allclose(normalized.data.sum(axis=-1), 1.0, rtol=1e-8)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_tagsl_alpha_zero_neutralizes_pdf(seed):
    """With α = 0 the periodic gate is exactly 1, so A^t must equal the
    w/o-PDF composition — an algebraic identity of Eq. 9."""
    rng = np.random.default_rng(seed)
    enc = DiscreteTimeEmbedding(24, 3, rng=rng)
    gated = TagSL(4, 4, enc, alpha=0.0, rng=np.random.default_rng(seed))
    ungated = TagSL(4, 4, enc, use_pdf=False, rng=np.random.default_rng(seed))
    ungated.node_embedding.data[...] = gated.node_embedding.data
    state = Tensor(rng.normal(size=(2, 4, 2)))
    times = np.array([3, 9])
    np.testing.assert_allclose(gated(state, times).data, ungated(None, times).data, atol=1e-12)


@given(
    scale=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_softmax_normalized_tagsl_invariant_to_constant_shift(scale, seed):
    """Row-softmax is shift-invariant: adding a constant to every entry of
    A^t (e.g. a scalar trend with PDF disabled) must not change Â^t —
    documenting why the trend factor only acts through the PDF gate."""
    rng = np.random.default_rng(seed)
    enc = DiscreteTimeEmbedding(24, 3, rng=rng)
    tagsl = TagSL(4, 4, enc, use_pdf=False, use_trend=False, rng=rng)
    times = np.array([5])
    base = tagsl.normalized(None, times).data
    from repro.graph.adjacency import row_softmax

    shifted = row_softmax(tagsl(None, times) + float(scale)).data
    np.testing.assert_allclose(base, shifted, atol=1e-10)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_gcgru_interpolates_between_h_and_candidate(seed):
    """h_t = (1-z)h + z·ĥ with z, ĥ bounded -> each output coordinate lies
    in the interval spanned by h_{t-1} and ±1."""
    rng = np.random.default_rng(seed)
    cell = GCGRUCell(2, 3, embed_dim=3, rng=rng)
    x = Tensor(rng.normal(size=(2, 4, 2)))
    h = Tensor(rng.normal(size=(2, 4, 3)))
    adjacency = Tensor(np.full((2, 4, 4), 0.25))
    embed = Tensor(rng.normal(size=(2, 4, 3)))
    out = cell(x, h, adjacency, embed).data
    upper = np.maximum(h.data, 1.0)
    lower = np.minimum(h.data, -1.0)
    assert (out <= upper + 1e-9).all()
    assert (out >= lower - 1e-9).all()


@given(
    num_slots=st.integers(min_value=2, max_value=96),
    offset=st.integers(min_value=-500, max_value=500),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_time_embedding_periodicity_property(num_slots, offset, seed):
    """Φ(t) = Φ(t + |T|) for any t — day-periodic by construction."""
    rng = np.random.default_rng(seed)
    enc = DiscreteTimeEmbedding(num_slots, 4, rng=rng)
    t = np.array([offset])
    np.testing.assert_allclose(enc(t).data, enc(t + num_slots).data)
