"""Table IV: forecasting performance on HZMetro and SHMetro.

Regenerates the per-horizon MAE/RMSE/MAPE comparison of eleven methods at
15/30/45/60-minute horizons.  Expected shape (paper): HA/GBDT worst,
FC-LSTM and transformers mid-pack, graph models best, TGCRN first on
every metric with the margin growing at longer horizons.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_metro_table, run_experiment

# Paper Table IV method list (XGBoost appears in Table V's demand setup).
METHODS = (
    "ha", "gbdt", "fclstm", "informer", "crossformer",
    "dcrnn", "gwnet", "agcrn", "pvcgn", "esg", "tgcrn",
)


def _run_dataset(dataset: str) -> str:
    s = scale()
    task = load_task(dataset, num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    results = []
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        results.append(
            run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                           num_layers=s.num_layers, **kwargs)
        )
    return format_metro_table(results, interval_minutes=task.spec.interval_minutes)


def test_table4_hzmetro(benchmark):
    table = benchmark.pedantic(lambda: _run_dataset("hzmetro"), rounds=1, iterations=1)
    report("table4_hzmetro", table)


def test_table4_shmetro(benchmark):
    table = benchmark.pedantic(lambda: _run_dataset("shmetro"), rounds=1, iterations=1)
    report("table4_shmetro", table)
