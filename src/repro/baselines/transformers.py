"""Transformer baselines: Informer-lite and Crossformer-lite.

Both keep the defining mechanism of their namesakes at a size a CPU can
train: Informer encodes the node-flattened sequence with full attention
and emits all horizons in one shot (the "generative decoder"); Crossformer
alternates attention across *time* (per node) and across *dimensions/
nodes* (per step) — its two-stage attention — before the forecasting head.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn import Linear, Module, ModuleList, Parameter, TransformerBlock, init


def _positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal position table (length, dim)."""
    position = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: table[:, 1::2].shape[1]])
    return table


class Informer(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        model_dim: int = 64,
        num_heads: int = 4,
        num_blocks: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.embed = Linear(num_nodes * in_dim, model_dim, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(model_dim, num_heads, 2 * model_dim, rng=rng) for _ in range(num_blocks)]
        )
        self.head = Linear(model_dim, horizon * num_nodes * out_dim, rng=rng)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, num_nodes, in_dim = x.shape
        tokens = x.reshape(batch, history, num_nodes * in_dim)
        h = self.embed(tokens)
        h = h + Tensor(_positional_encoding(history, h.shape[-1]))
        for block in self.blocks:
            h = block(h)
        pooled = h.mean(axis=1)  # (B, D)
        flat = self.head(pooled)
        out = flat.reshape(batch, self.horizon, self.num_nodes, self.out_dim)
        return out


class Crossformer(Module):
    """Two-stage attention: temporal per node, then cross-node per step.

    forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out).
    """

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        model_dim: int = 32,
        num_heads: int = 4,
        num_blocks: int = 1,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.model_dim = model_dim
        self.embed = Linear(in_dim, model_dim, rng=rng)
        self.time_blocks = ModuleList(
            [TransformerBlock(model_dim, num_heads, 2 * model_dim, rng=rng) for _ in range(num_blocks)]
        )
        self.node_blocks = ModuleList(
            [TransformerBlock(model_dim, num_heads, 2 * model_dim, rng=rng) for _ in range(num_blocks)]
        )
        self.head = Linear(model_dim, horizon * out_dim, rng=rng)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, num_nodes, _ = x.shape
        h = self.embed(x)  # (B, P, N, D)
        h = h + Tensor(_positional_encoding(history, self.model_dim)[None, :, None, :])
        for time_block, node_block in zip(self.time_blocks, self.node_blocks):
            # Stage 1: attention along time, nodes folded into batch.
            temporal = h.transpose(0, 2, 1, 3).reshape(batch * num_nodes, history, self.model_dim)
            temporal = time_block(temporal)
            h = temporal.reshape(batch, num_nodes, history, self.model_dim).transpose(0, 2, 1, 3)
            # Stage 2: attention across nodes, steps folded into batch.
            spatial = h.reshape(batch * history, num_nodes, self.model_dim)
            spatial = node_block(spatial)
            h = spatial.reshape(batch, history, num_nodes, self.model_dim)
        pooled = h.mean(axis=1)  # (B, N, D)
        flat = self.head(pooled)
        out = flat.reshape(batch, num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
