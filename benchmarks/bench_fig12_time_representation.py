"""Fig. 12: t-SNE of time representations with and without TDL.

Trains two time-embedding tables of the paper's size (73 slots) — one
regularized by time-discrepancy learning, one optimized with forecasting
loss only — projects both to 2-D with t-SNE, and scores the sequential
ordering.  Expected shape (paper): the TDL table lays out in positional
order (score near 1), the unregularized table is a "confusing pattern"
(markedly lower score).
"""

from __future__ import annotations

import numpy as np

from bench_utils import report, scale, tgcrn_kwargs

from repro.core import DiscreteTimeEmbedding, TGCRN, TimeDiscrepancyLearner  # noqa: F401
from repro.data import load_task
from repro.nn import Adam
from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs
from repro.viz import ordering_score, tsne


def _train_model(task, s, lambda_time: float) -> TGCRN:
    model = TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=s.hidden_dim, **tgcrn_kwargs(s)),
        rng=np.random.default_rng(0),
    )
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0, lambda_time=lambda_time)
    Trainer(config).fit(model, task, use_tdl=lambda_time > 0)
    return model


def _pure_tdl_table(steps_per_day: int, dim: int) -> np.ndarray:
    """Upper bound: a table trained on the TDL objective alone."""
    encoder = DiscreteTimeEmbedding(steps_per_day, dim, rng=np.random.default_rng(1))
    learner = TimeDiscrepancyLearner(encoder, np.random.default_rng(2), adjacent_range=4)
    optimizer = Adam([encoder.weight], lr=0.01)
    windows = np.arange(16)[None, :] + np.arange(0, steps_per_day * 4, 7)[:, None]
    for _ in range(300):
        optimizer.zero_grad()
        loss = learner(windows)
        loss.backward()
        optimizer.step()
    return encoder.weight.data


def _tdl_loss(table: np.ndarray, task) -> float:
    """Average Eq. 3 loss of a table over fresh Algorithm-1 samples."""
    encoder = DiscreteTimeEmbedding(task.steps_per_day, table.shape[1], rng=np.random.default_rng(0))
    encoder.weight.data[...] = table
    learner = TimeDiscrepancyLearner(encoder, np.random.default_rng(5), adjacent_range=4)
    windows = task.train.time_indices[:64]
    return float(np.mean([learner(windows).item() for _ in range(10)]))


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    tables = {
        "with TDL (joint)": _train_model(task, s, lambda_time=0.5).time_encoder.weight.data,
        "w/o TDL (joint)": _train_model(task, s, lambda_time=0.0).time_encoder.weight.data,
        "TDL-only (converged)": _pure_tdl_table(task.steps_per_day, s.time_dim),
        "random table": np.random.default_rng(9).normal(size=(task.steps_per_day, s.time_dim)),
    }
    lines = [
        "Fig. 12 reproduction: the ordering score quantifies the 'sequential",
        "layout' the paper shows visually; the TDL loss is Eq. 3 itself.",
        "At quick scale the joint models see few TDL gradient steps, so the",
        "loss moves before the global t-SNE ordering does; the converged",
        "TDL-only table shows the geometric endpoint (Fig. 12b).",
        "",
        f"{'table':<24} {'ordering':>9} {'TDL loss':>9}",
        "-" * 45,
    ]
    for name, table in tables.items():
        score = ordering_score(tsne(table, iterations=300, seed=0))
        loss = _tdl_loss(table, task)
        lines.append(f"{name:<24} {score:9.3f} {loss:9.3f}")
    return "\n".join(lines)


def test_fig12_time_representation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig12_time_representation", out)
