"""Declarative SLOs with multi-window burn-rate evaluation.

An SLO is "``target`` of requests succeed" — where *succeed* means "was
answered by the model under ``latency_ms``" for a latency objective, or
just "was not degraded" for an availability objective.  The interesting
signal is not the instantaneous error rate but the **burn rate**: how
fast the error budget (``1 - target``) is being consumed.  Burn rate 1
means the budget lasts exactly the SLO period; burn rate 14.4 on a
99.9% objective exhausts a 30-day budget in ~2 days.

Each objective carries two alerts in the standard multi-window shape:

* **fast burn** — short windows, high threshold: pages quickly on a
  cliff (model NaN storm, breaker flapping) and, because the short
  window drains fast, *recovers* quickly once the bleeding stops;
* **slow burn** — long windows, low threshold: catches a persistent
  trickle that would silently eat the budget.

An alert fires only when *both* its windows exceed the threshold — the
long window supplies evidence, the short window proves it is still
happening (that conjunction is what makes recovery prompt).  Everything
is evaluated on an injectable clock, so tests drive the windows
deterministically, and every state transition emits a structured
``slo_burn`` JSONL record the fleet front door can aggregate.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "BurnAlert",
    "SLOMonitor",
    "SLOStatus",
    "SLObjective",
    "default_serving_objectives",
]


@dataclass(frozen=True)
class BurnAlert:
    """One (long window, short window, threshold) burn-rate alert."""

    name: str            # "fast_burn" | "slow_burn"
    long_window: float   # seconds of evidence
    short_window: float  # seconds proving it is still happening
    threshold: float     # fires when BOTH window burn rates reach this


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over the response stream.

    ``latency_ms=None`` makes it a pure availability objective (a
    response is bad only when degraded/shed); otherwise a model answer
    slower than ``latency_ms`` is also bad.  ``min_events`` keeps a
    single unlucky request from paging an idle service.
    """

    name: str
    target: float                       # e.g. 0.99 → 1% error budget
    latency_ms: float | None = None
    fast: BurnAlert = BurnAlert("fast_burn", 3600.0, 300.0, 14.4)
    slow: BurnAlert = BurnAlert("slow_burn", 21600.0, 1800.0, 6.0)
    min_events: int = 4

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def is_bad(self, latency_ms: float, failure: bool) -> bool:
        if failure:
            return True
        return self.latency_ms is not None and latency_ms > self.latency_ms


def default_serving_objectives(
    latency_ms: float = 250.0,
    latency_target: float = 0.95,
    availability_target: float = 0.99,
) -> tuple[SLObjective, ...]:
    """The stock pair every :class:`~repro.serve.ForecastServer` gets."""
    return (
        SLObjective("latency", latency_target, latency_ms=latency_ms),
        SLObjective("availability", availability_target),
    )


@dataclass
class SLOStatus:
    """Evaluation snapshot of one objective at one instant."""

    objective: str
    firing: list[str]          # subset of {"fast_burn", "slow_burn"}
    burn: dict = field(default_factory=dict)   # alert -> {"long": r, "short": r}
    events: int = 0
    bad: int = 0

    @property
    def ok(self) -> bool:
        return not self.firing

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "ok": self.ok,
            "firing": list(self.firing),
            "burn": {k: dict(v) for k, v in self.burn.items()},
            "events": self.events,
            "bad": self.bad,
        }


class SLOMonitor:
    """Feed responses in, get burn-rate verdicts out.

    ``observe`` records one response against every objective;
    ``evaluate`` computes per-alert burn rates and, on any firing-state
    transition, emits an ``slo_burn`` record through ``logger`` (a
    :class:`~repro.obs.RunLogger`) and bumps ``metrics`` counters.  The
    clock is injectable and every method takes an explicit ``now``
    override, so window-edge behavior is exactly testable.
    """

    def __init__(self, objectives=None, *, clock=time.monotonic,
                 logger=None, metrics=None, max_events: int = 65536):
        self.objectives = tuple(objectives) if objectives is not None \
            else default_serving_objectives()
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self._clock = clock
        self.logger = logger
        self.metrics = metrics
        # objective -> deque of (ts, bad); bounded, pruned past the
        # longest window on every observe.
        self._events: dict[str, deque] = {
            o.name: deque(maxlen=max_events) for o in self.objectives
        }
        self._firing: dict[tuple[str, str], bool] = {
            (o.name, alert.name): False
            for o in self.objectives for alert in (o.fast, o.slow)
        }

    # -- recording ------------------------------------------------------- #

    def observe(self, latency_ms: float, failure: bool = False,
                now: float | None = None) -> None:
        """Record one answered request against every objective."""
        now = self._now(now)
        for objective in self.objectives:
            events = self._events[objective.name]
            events.append((now, objective.is_bad(latency_ms, failure)))
            horizon = now - max(objective.fast.long_window,
                                objective.slow.long_window)
            while events and events[0][0] <= horizon:
                events.popleft()

    # -- evaluation ------------------------------------------------------ #

    def burn_rate(self, objective: SLObjective, window: float,
                  now: float | None = None) -> float:
        """Error-budget burn over the trailing ``window`` seconds.

        Events strictly inside ``(now - window, now]`` count; an empty
        window burns nothing.
        """
        now = self._now(now)
        edge = now - window
        total = bad = 0
        for ts, is_bad in self._events[objective.name]:
            if ts > edge:
                total += 1
                bad += int(is_bad)
        if total == 0:
            return 0.0
        return (bad / total) / objective.budget

    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        """Burn-rate verdict per objective; emits transitions as they flip."""
        now = self._now(now)
        statuses = []
        for objective in self.objectives:
            events = self._events[objective.name]
            status = SLOStatus(
                objective=objective.name,
                firing=[],
                events=len(events),
                bad=sum(int(is_bad) for _, is_bad in events),
            )
            for alert in (objective.fast, objective.slow):
                long_rate = self.burn_rate(objective, alert.long_window, now)
                short_rate = self.burn_rate(objective, alert.short_window, now)
                status.burn[alert.name] = {"long": long_rate, "short": short_rate}
                firing = (
                    len(events) >= objective.min_events
                    and long_rate >= alert.threshold
                    and short_rate >= alert.threshold
                )
                if firing:
                    status.firing.append(alert.name)
                self._transition(objective, alert, firing, long_rate, short_rate, now)
            statuses.append(status)
        return statuses

    def ok(self, now: float | None = None) -> bool:
        """True when no alert of any objective is firing."""
        return all(status.ok for status in self.evaluate(now))

    # -- plumbing -------------------------------------------------------- #

    def _transition(self, objective: SLObjective, alert: BurnAlert,
                    firing: bool, long_rate: float, short_rate: float,
                    now: float) -> None:
        key = (objective.name, alert.name)
        if firing == self._firing[key]:
            return
        self._firing[key] = firing
        state = "firing" if firing else "recovered"
        if self.metrics is not None:
            self.metrics.counter(f"slo.{objective.name}.{alert.name}_{state}").inc()
        if self.logger is not None:
            self.logger.log(
                "slo_burn",
                objective=objective.name,
                alert=alert.name,
                state=state,
                burn_long=long_rate,
                burn_short=short_rate,
                threshold=alert.threshold,
                target=objective.target,
                window_long=alert.long_window,
                window_short=alert.short_window,
                now=now,
            )

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now
