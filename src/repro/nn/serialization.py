"""Checkpoint save/load for modules and full training state.

State dicts serialize to ``.npz`` (no pickle of code objects — safe to
share).  Optimizer state captures Adam's moments so training resumes
exactly.  Every checkpoint embeds a :func:`state_hash` digest that is
re-verified on load, so a corrupted or hand-edited file fails loudly
instead of silently skewing benchmark numbers.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from .module import Module
from .optim import Adam

_META_KEY = "__checkpoint_meta__"
_HASH_KEY = "__state_hash__"


def state_hash(module_or_state: Module | dict) -> str:
    """SHA-256 over parameter names, shapes, dtypes, and raw bytes.

    Accepts a :class:`Module` or a ``state_dict``-style mapping.  Identical
    hash ⇔ bitwise-identical parameters in identical order — the bit-level
    fingerprint used by checkpoint integrity checks and the
    ``repro.verify`` determinism harness.
    """
    state = (
        module_or_state.state_dict()
        if isinstance(module_or_state, Module)
        else module_or_state
    )
    digest = hashlib.sha256()
    for name, value in state.items():
        arr = np.ascontiguousarray(value)
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(str(arr.dtype).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_checkpoint(path: str | Path, model: Module, metadata: dict | None = None) -> None:
    """Write a model's parameters (and JSON-safe metadata) to ``.npz``."""
    path = Path(path)
    arrays = dict(model.state_dict())
    for reserved in (_META_KEY, _HASH_KEY):
        if any(name == reserved for name in arrays):
            raise ValueError(f"parameter name {reserved!r} collides with a reserved slot")
    meta = json.dumps(metadata or {})
    arrays[_META_KEY] = np.frombuffer(meta.encode(), dtype=np.uint8)
    arrays[_HASH_KEY] = np.frombuffer(state_hash(model).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(path: str | Path, model: Module) -> dict:
    """Load parameters into ``model`` in place; returns the metadata.

    Verifies the embedded :func:`state_hash` (when present — older
    checkpoints without one still load) and raises ``ValueError`` if the
    parameter payload does not match what was saved.
    """
    path = Path(path)
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta_blob = arrays.pop(_META_KEY, None)
    hash_blob = arrays.pop(_HASH_KEY, None)
    if hash_blob is not None:
        expected = bytes(hash_blob.tobytes()).decode()
        actual = state_hash(arrays)
        if actual != expected:
            raise ValueError(
                f"checkpoint {path} is corrupted: state hash {actual[:16]}… "
                f"does not match the embedded {expected[:16]}…"
            )
    model.load_state_dict(arrays)
    if meta_blob is None:
        return {}
    return json.loads(bytes(meta_blob.tobytes()).decode())


def save_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Persist Adam moments + step count for exact training resumption."""
    arrays = {"step_count": np.array(optimizer._step_count), "lr": np.array(optimizer.lr)}
    for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        arrays[f"m_{i}"] = m
        arrays[f"v_{i}"] = v
    np.savez(Path(path), **arrays)


def load_optimizer(path: str | Path, optimizer: Adam) -> None:
    """Restore Adam moments saved by :func:`save_optimizer`."""
    with np.load(Path(path)) as archive:
        optimizer._step_count = int(archive["step_count"])
        optimizer.lr = float(archive["lr"])
        for i in range(len(optimizer._m)):
            saved_m, saved_v = archive[f"m_{i}"], archive[f"v_{i}"]
            if saved_m.shape != optimizer._m[i].shape:
                raise ValueError(
                    f"optimizer slot {i}: shape {saved_m.shape} != {optimizer._m[i].shape}"
                )
            optimizer._m[i][...] = saved_m
            optimizer._v[i][...] = saved_v
