"""Fig. 11: learned time-aware adjacency vs ground-truth OD transfer.

Trains TGCRN on HZMetro, then renders (a) the learned A^t against the
true OD matrix for the same morning slot on a weekday and a weekend day
(periodicity), and (b) learned vs true matrices over four consecutive
time spans of one weekday (trend).  Expected shape (paper): weekday/
weekend adjacencies differ and track the corresponding OD regimes; the
consecutive-span adjacencies evolve smoothly with the OD flows.  A
quantitative correlation score accompanies every heat-map pair.
"""

from __future__ import annotations

import numpy as np

from bench_utils import report, scale, tgcrn_kwargs

from repro.autodiff import Tensor, no_grad
from repro.core import TGCRN
from repro.data import load_task
from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs
from repro.viz import matrix_correlation, render_heatmap, side_by_side


def _learned_adjacency(model, task, step: int) -> np.ndarray:
    """A^t for the scaled frame at absolute step; batch of one."""
    frame = task.scaler.transform(task.dataset.values[step : step + 1])  # (1, N, d)
    with no_grad():
        adjacency = model.tagsl.normalized(Tensor(frame), np.array([step]))
    out = adjacency.data[0].copy()
    np.fill_diagonal(out, 0.0)
    return out


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    model = TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=s.hidden_dim, **tgcrn_kwargs(s)),
        rng=np.random.default_rng(0),
    )
    Trainer(TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)).fit(model, task)

    spd = task.steps_per_day
    morning = spd // 6  # early-peak slot
    sections = []

    # (a) Periodicity: same slot, Monday (day 0) vs Saturday (day 5).
    rows = []
    for label, day in (("weekday", 0), ("weekend", 5)):
        step = day * spd + morning
        learned = _learned_adjacency(model, task, step)
        truth = task.dataset.od_matrix(step)
        corr = matrix_correlation(learned, truth)
        rows.append(
            side_by_side(
                render_heatmap(learned, title=f"learned A^t ({label})"),
                render_heatmap(truth, title=f"true OD ({label}), corr={corr:+.3f}"),
            )
        )
    mon = _learned_adjacency(model, task, 0 * spd + morning)
    sat = _learned_adjacency(model, task, 5 * spd + morning)
    periodicity_gap = float(np.abs(mon - sat).mean())
    sections.append("(a) weekday vs weekend, same slot\n" + "\n\n".join(rows))
    sections.append(f"mean |A_weekday - A_weekend| = {periodicity_gap:.4f} (>0 => periodic regimes)")

    # (b) Trend: four consecutive spans on one weekday.
    rows = []
    correlations = []
    base = 3 * spd + morning  # a Thursday morning
    for offset in range(4):
        step = base + offset
        learned = _learned_adjacency(model, task, step)
        truth = task.dataset.od_matrix(step)
        correlations.append(matrix_correlation(learned, truth))
        rows.append(f"t+{offset}: corr(learned, true OD) = {correlations[-1]:+.3f}")
    consecutive_drift = float(
        np.abs(_learned_adjacency(model, task, base) - _learned_adjacency(model, task, base + 3)).mean()
    )
    sections.append("(b) consecutive spans on one weekday\n" + "\n".join(rows))
    sections.append(f"mean |A^t - A^(t+3)| = {consecutive_drift:.4f} (smooth trend drift)")
    return "\n\n".join(sections)


def test_fig11_spatial_correlation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig11_spatial_correlation", out)
