"""Table V: demand forecasting on NYC-Bike and NYC-Taxi.

Regenerates the overall MAE/RMSE/PCC comparison.  Expected shape (paper):
HA worst, XGBoost/FC-LSTM behind the graph models, CCRNN/ESG the
strongest baselines, TGCRN best with the highest PCC.
"""

from __future__ import annotations

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import TrainingConfig, format_demand_table, run_experiment

METHODS = (
    "ha", "xgboost", "fclstm", "informer", "crossformer",
    "dcrnn", "gwnet", "ccrnn", "gts", "esg", "tgcrn",
)


def _run_dataset(dataset: str) -> str:
    s = scale()
    task = load_task(dataset, num_nodes=s.demand_nodes, num_days=s.demand_days, seed=0)
    config = TrainingConfig(epochs=max(3, s.epochs // 2), batch_size=16, seed=0)
    results = []
    for method in METHODS:
        kwargs = dict(model_kwargs=tgcrn_kwargs(s)) if method == "tgcrn" else {}
        results.append(
            run_experiment(method, task, config, hidden_dim=s.hidden_dim,
                           num_layers=s.num_layers, **kwargs)
        )
    return format_demand_table(results)


def test_table5_nyc_bike(benchmark):
    table = benchmark.pedantic(lambda: _run_dataset("nyc_bike"), rounds=1, iterations=1)
    report("table5_nyc_bike", table)


def test_table5_nyc_taxi(benchmark):
    table = benchmark.pedantic(lambda: _run_dataset("nyc_taxi"), rounds=1, iterations=1)
    report("table5_nyc_taxi", table)
