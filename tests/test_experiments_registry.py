"""Tests for the programmatic experiment registry."""

import pytest

from repro.experiments import SMOKE, ExperimentScale, list_experiments, run
from repro.experiments.registry import experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = list_experiments()
        for expected in (
            "table4_hzmetro", "table4_shmetro", "table5_nyc_bike", "table5_nyc_taxi",
            "table6", "table7", "table8", "fig8", "fig9", "fig10", "fig12",
        ):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run("table99")

    def test_decorator_registers(self):
        @experiment("__test_dummy__")
        def dummy(scale):
            return f"scale epochs = {scale.epochs}"

        assert "__test_dummy__" in list_experiments()
        assert run("__test_dummy__", SMOKE) == "scale epochs = 1"

    def test_scale_helpers(self):
        scale = ExperimentScale(epochs=3, node_dim=6, time_dim=4, num_layers=2)
        kwargs = scale.tgcrn_kwargs()
        assert kwargs == {"node_dim": 6, "time_dim": 4, "num_layers": 2}
        config = scale.config(lambda_time=0.5)
        assert config.epochs == 3
        assert config.lambda_time == 0.5


class TestSmokeRuns:
    """Each artifact must run end-to-end at smoke scale (1 epoch)."""

    def test_table6(self):
        out = run("table6", SMOKE)
        assert "tgcrn" in out and "MSE" in out

    def test_table7(self):
        out = run("table7", SMOKE)
        assert "wo_tagsl" in out

    def test_fig8(self):
        out = run("fig8", SMOKE)
        assert "fclstm" in out and "tgcrn" in out

    def test_fig10(self):
        out = run("fig10", SMOKE)
        assert "lambda" in out

    def test_fig12(self):
        out = run("fig12", SMOKE)
        assert "ordering score" in out
