"""Extension: run-to-run variance of the headline comparison.

Trains TGCRN and the strongest ablation pair on three seeds and reports
mean ± std of the test MAE, plus a Wilcoxon significance test between
TGCRN and the w/o-tagsl variant over per-window errors.  This quantifies
which Table VII deltas are real at the quick scale and which are noise —
the basis for EXPERIMENTS.md's "within noise" statements.
"""

from __future__ import annotations

import numpy as np

from bench_utils import report, scale, tgcrn_kwargs

from repro.data import load_task
from repro.training import Trainer, TrainingConfig, paired_significance, run_experiment

MODELS = ("tgcrn", "wo_tagsl", "wo_pdf")
SEEDS = (0, 1, 2)


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    maes: dict[str, list[float]] = {m: [] for m in MODELS}
    predictions: dict[tuple[str, int], np.ndarray] = {}
    target = None
    for seed in SEEDS:
        config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=seed)
        for model_name in MODELS:
            result = run_experiment(
                model_name, task, config, hidden_dim=s.hidden_dim,
                model_kwargs=tgcrn_kwargs(s), seed=seed, keep_model=True,
            )
            maes[model_name].append(result.overall.mae)
            prediction, target = Trainer(config).predict(result.model, task, "test")
            predictions[(model_name, seed)] = prediction

    lines = [f"{'model':<10} | {'MAE mean':>9} | {'MAE std':>8} | seeds={list(SEEDS)}", "-" * 50]
    for model_name in MODELS:
        values = maes[model_name]
        lines.append(f"{model_name:<10} | {np.mean(values):9.3f} | {np.std(values):8.3f} |")
    sig = paired_significance(
        predictions[("tgcrn", 0)], predictions[("wo_tagsl", 0)], target
    )
    lines.append(
        f"\nWilcoxon tgcrn vs wo_tagsl (seed 0): p = {sig.p_value:.2e}, "
        f"median per-window error delta = {sig.median_delta:+.3f} "
        f"({'significant' if sig.significant else 'not significant'})"
    )
    sig2 = paired_significance(
        predictions[("tgcrn", 0)], predictions[("wo_pdf", 0)], target
    )
    lines.append(
        f"Wilcoxon tgcrn vs wo_pdf   (seed 0): p = {sig2.p_value:.2e}, "
        f"median per-window error delta = {sig2.median_delta:+.3f} "
        f"({'significant' if sig2.significant else 'not significant'})"
    )
    return "\n".join(lines)


def test_seed_variance(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("seed_variance", out)
