"""Finding model, baseline/suppression file, and reporters for `repro.analyze`.

Every analyzer (shape interpreter, gradient-flow linter, AST lint) emits
:class:`Finding` records through one schema so the CLI, the CI gate, and
the baseline workflow treat them uniformly.

Baselines are keyed by *fingerprints* that deliberately exclude line
numbers: a finding keeps its identity when unrelated edits move it around
a file, but a genuinely new finding (new rule, new location, new message)
never matches an old fingerprint.  Identical findings in the same anchor
are disambiguated by an occurrence index so baselining two of them does
not suppress a third.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..ioutil import atomic_write_text

#: severity vocabulary, weakest to strongest
SEVERITIES = ("info", "warning", "error")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

DEFAULT_BASELINE_NAME = "analyze-baseline.json"
_BASELINE_VERSION = 1


def severity_rank(severity: str) -> int:
    """Numeric rank for gating (info=0 < warning=1 < error=2)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(f"unknown severity {severity!r}; choose from {SEVERITIES}") from None


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``location`` is the human-facing position (may include a line number);
    ``anchor`` is the stable part used for fingerprinting (file path or
    ``model:<name>`` — never a line number).  When ``anchor`` is empty the
    location itself is used.
    """

    rule_id: str
    severity: str
    location: str
    message: str
    fix_hint: str = ""
    anchor: str = ""

    def __post_init__(self):
        severity_rank(self.severity)  # validate eagerly

    @property
    def stable_anchor(self) -> str:
        return self.anchor or self.location

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of a finding: rule + anchor + message + occurrence."""
    payload = "\x1f".join(
        [finding.rule_id, finding.stable_anchor, finding.message, str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def fingerprints(findings: Sequence[Finding]) -> list[str]:
    """Fingerprint a batch, numbering identical findings per anchor."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out = []
    for finding in findings:
        key = (finding.rule_id, finding.stable_anchor, finding.message)
        out.append(fingerprint(finding, occurrence=seen[key]))
        seen[key] += 1
    return out


# --------------------------------------------------------------------- #
# baseline file
# --------------------------------------------------------------------- #


@dataclass
class Baseline:
    """The committed set of accepted findings, keyed by fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != _BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        return cls(entries={e["fingerprint"]: e for e in payload.get("findings", [])})

    def save(self, path: str | Path) -> None:
        findings = sorted(
            self.entries.values(),
            key=lambda e: (e.get("rule_id", ""), e.get("location", ""), e["fingerprint"]),
        )
        payload = {
            "version": _BASELINE_VERSION,
            "tool": "repro.analyze",
            "findings": findings,
        }
        atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries = {}
        for finding, print_ in zip(findings, fingerprints(findings)):
            entries[print_] = {
                "fingerprint": print_,
                "rule_id": finding.rule_id,
                "severity": finding.severity,
                "location": finding.location,
                "message": finding.message,
            }
        return cls(entries=entries)

    def split(self, findings: Sequence[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, suppressed) against this baseline."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding, print_ in zip(findings, fingerprints(findings)):
            (suppressed if print_ in self.entries else new).append(finding)
        return new, suppressed


# --------------------------------------------------------------------- #
# reporters
# --------------------------------------------------------------------- #


def render_text(
    findings: Sequence[Finding],
    *,
    suppressed: Sequence[Finding] = (),
    show_fix_hints: bool = True,
) -> str:
    """Human-readable report grouped by anchor, errors first within groups."""
    lines: list[str] = []
    by_anchor: dict[str, list[Finding]] = {}
    for finding in findings:
        by_anchor.setdefault(finding.stable_anchor, []).append(finding)
    for anchor in sorted(by_anchor):
        lines.append(anchor)
        group = sorted(
            by_anchor[anchor], key=lambda f: (-severity_rank(f.severity), f.rule_id, f.location)
        )
        for finding in group:
            lines.append(f"  {finding.severity:<7} {finding.rule_id}  {finding.location}")
            lines.append(f"          {finding.message}")
            if show_fix_hints and finding.fix_hint:
                lines.append(f"          fix: {finding.fix_hint}")
        lines.append("")
    counts = Counter(f.severity for f in findings)
    summary = ", ".join(f"{counts.get(s, 0)} {s}" for s in reversed(SEVERITIES))
    lines.append(f"{len(findings)} finding(s) ({summary}); {len(suppressed)} baselined")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    suppressed: Sequence[Finding] = (),
    metrics: dict | None = None,
) -> str:
    """Machine-readable report (the CI artifact format)."""
    prints = fingerprints(list(findings))
    payload = {
        "tool": "repro.analyze",
        "version": _BASELINE_VERSION,
        "summary": {
            "new": len(findings),
            "baselined": len(suppressed),
            "by_severity": dict(Counter(f.severity for f in findings)),
            "by_rule": dict(Counter(f.rule_id for f in findings)),
        },
        "findings": [
            {**finding.to_dict(), "fingerprint": print_}
            for finding, print_ in zip(findings, prints)
        ],
        "baselined": [f.to_dict() for f in suppressed],
    }
    if metrics is not None:
        payload["metrics"] = metrics
    return json.dumps(payload, indent=2)


def max_severity(findings: Iterable[Finding]) -> str | None:
    """Strongest severity present, or None for an empty set."""
    best: str | None = None
    for finding in findings:
        if best is None or severity_rank(finding.severity) > severity_rank(best):
            best = finding.severity
    return best
