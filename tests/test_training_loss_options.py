"""Tests for the configurable error criterion of Eq. 17."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import TGCRN
from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs


class TestErrorLoss:
    def test_mae_is_default(self):
        cfg = TrainingConfig()
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert cfg.error_loss(pred, target).item() == pytest.approx(2.0)

    def test_mse(self):
        cfg = TrainingConfig(loss="mse")
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert cfg.error_loss(pred, target).item() == pytest.approx(5.0)

    def test_huber(self):
        cfg = TrainingConfig(loss="huber")
        pred = Tensor(np.array([0.5]))
        target = Tensor(np.array([0.0]))
        assert cfg.error_loss(pred, target).item() == pytest.approx(0.125)

    def test_unknown_loss(self):
        cfg = TrainingConfig(loss="quantile")
        with pytest.raises(ValueError):
            cfg.error_loss(Tensor(np.zeros(2)), Tensor(np.zeros(2)))

    @pytest.mark.parametrize("loss", ["mae", "mse", "huber"])
    def test_training_runs_under_each_criterion(self, tiny_task, loss):
        model = TGCRN(
            **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
            rng=np.random.default_rng(0),
        )
        cfg = TrainingConfig(epochs=1, batch_size=64, loss=loss)
        history = Trainer(cfg).fit(model, tiny_task)
        assert np.isfinite(history.train_losses[0])

    def test_different_losses_learn_different_weights(self, tiny_task):
        def train(loss):
            model = TGCRN(
                **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
                rng=np.random.default_rng(0),
            )
            Trainer(TrainingConfig(epochs=1, batch_size=64, loss=loss, seed=0)).fit(model, tiny_task)
            return model.tagsl.node_embedding.data.copy()

        assert not np.allclose(train("mae"), train("mse"))
