"""Edge-case tests for the autodiff engine that the main suite's
happy-path checks don't reach."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    check_gradients,
    concat,
    log_softmax,
    no_grad,
    randn,
    softmax,
    stack,
    tensor,
    where,
)


class TestScalarTensors:
    def test_zero_dim_arithmetic(self):
        a = tensor(2.0, requires_grad=True)
        b = tensor(3.0, requires_grad=True)
        (a * b + a).backward()
        assert a.grad == pytest.approx(4.0)
        assert b.grad == pytest.approx(2.0)

    def test_scalar_broadcast_into_matrix(self, rng):
        s = tensor(1.5, requires_grad=True)
        m = randn(3, 4, rng=rng)
        (s * m).sum().backward()
        assert s.grad == pytest.approx(m.data.sum())


class TestDegenerateShapes:
    def test_empty_axis_sum(self):
        t = tensor(np.zeros((0, 3)), requires_grad=True)
        out = t.sum()
        assert out.item() == 0.0

    def test_single_element_everything(self):
        t = tensor([[5.0]], requires_grad=True)
        (t.reshape(1).exp().log()).sum().backward()
        assert t.grad[0, 0] == pytest.approx(1.0)

    def test_size_one_broadcast_matmul(self, rng):
        a = randn(2, 1, 3, 4, rng=rng, requires_grad=True)
        b = randn(4, 5, rng=rng, requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestSoftmaxAxes:
    def test_softmax_axis_zero(self, rng):
        x = randn(4, 3, rng=rng)
        out = softmax(x, axis=0)
        np.testing.assert_allclose(out.data.sum(axis=0), 1.0)

    def test_log_softmax_axis_zero_gradient(self, rng):
        x = randn(4, 3, rng=rng, requires_grad=True)
        check_gradients(lambda: (log_softmax(x, axis=0) * 0.3).sum(), [x])

    def test_softmax_single_column(self):
        x = tensor(np.array([[3.0], [7.0]]))
        np.testing.assert_allclose(softmax(x, axis=-1).data, 1.0)


class TestWhereVariants:
    def test_tensor_condition(self, rng):
        a = randn(3, rng=rng, requires_grad=True)
        cond = Tensor(np.array([True, False, True]))
        out = where(cond, a, -a)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, -1.0, 1.0])

    def test_broadcast_condition(self, rng):
        a = randn(2, 3, rng=rng, requires_grad=True)
        b = randn(2, 3, rng=rng, requires_grad=True)
        cond = np.array([True, False, True])  # broadcasts over rows
        check_gradients(lambda: where(cond, a, b).sum(), [a, b])


class TestNoGradInteractions:
    def test_mixing_graph_and_no_grad_results(self, rng):
        a = randn(3, rng=rng, requires_grad=True)
        with no_grad():
            frozen = (a * 2.0)  # constant w.r.t. the graph
        out = (a * frozen).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, frozen.data)

    def test_nested_no_grad(self):
        from repro.autodiff import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_exception_restores_grad_mode(self):
        from repro.autodiff import is_grad_enabled

        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestCombinatorEdges:
    def test_concat_single_tensor(self, rng):
        a = randn(2, 3, rng=rng, requires_grad=True)
        out = concat([a], axis=0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, 1.0)

    def test_stack_negative_axis(self, rng):
        a = randn(2, 3, rng=rng)
        b = randn(2, 3, rng=rng)
        assert stack([a, b], axis=-1).shape == (2, 3, 2)

    def test_concat_negative_axis_gradient(self, rng):
        a = randn(2, 3, rng=rng, requires_grad=True)
        b = randn(2, 2, rng=rng, requires_grad=True)
        check_gradients(lambda: concat([a, b], axis=-1).tanh().sum(), [a, b])


class TestRepr:
    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(tensor([1.0]))
