"""Tests for the real-data format loaders (against synthetic fixtures
written in the published formats)."""

import pickle

import numpy as np
import pytest

from repro.data import (
    load_electricity_txt,
    load_metro_pickles,
    load_raw_series,
    task_from_series,
)


class TestLoadRawSeries:
    def test_3d_passthrough(self, rng):
        values = rng.normal(size=(48, 5, 2))
        ds = load_raw_series(values, steps_per_day=24)
        np.testing.assert_allclose(ds.values, values)
        assert ds.slot_of_day.max() == 23
        assert ds.day_of_week[24] == 1

    def test_2d_gets_feature_axis(self, rng):
        ds = load_raw_series(rng.normal(size=(10, 3)), steps_per_day=5)
        assert ds.values.shape == (10, 3, 1)

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError):
            load_raw_series(rng.normal(size=(10,)), steps_per_day=5)


class TestMetroPickles:
    def _write_fixture(self, directory, samples=6, history=4, horizon=4, nodes=5):
        rng = np.random.default_rng(0)
        for split in ("train", "val", "test"):
            starts = rng.integers(0, 500, size=samples)
            payload = {
                "x": rng.normal(size=(samples, history, nodes, 2)),
                "y": rng.normal(size=(samples, horizon, nodes, 2)),
                "xtime": starts[:, None] + np.arange(history),
                "ytime": starts[:, None] + history + np.arange(horizon),
            }
            with open(directory / f"{split}.pkl", "wb") as handle:
                pickle.dump(payload, handle)

    def test_roundtrip(self, tmp_path):
        self._write_fixture(tmp_path)
        splits = load_metro_pickles(tmp_path)
        assert set(splits) == {"train", "val", "test"}
        ws = splits["train"]
        assert ws.inputs.shape == (6, 4, 5, 2)
        assert ws.time_indices.shape == (6, 8)
        # xtime/ytime concatenated in order
        assert (np.diff(ws.time_indices, axis=1) == 1).all()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_metro_pickles(tmp_path)

    def test_missing_key(self, tmp_path):
        with open(tmp_path / "train.pkl", "wb") as handle:
            pickle.dump({"x": np.zeros((1, 1, 1, 1))}, handle)
        with pytest.raises(KeyError):
            load_metro_pickles(tmp_path)

    def test_datetime_timestamps_converted(self, tmp_path):
        rng = np.random.default_rng(0)
        base = np.datetime64("2019-01-01T08:00")
        for split in ("train", "val", "test"):
            payload = {
                "x": rng.normal(size=(2, 2, 3, 2)),
                "y": rng.normal(size=(2, 2, 3, 2)),
                "xtime": base + np.arange(2)[None, :].repeat(2, 0) * np.timedelta64(15, "m"),
                "ytime": base + (2 + np.arange(2))[None, :].repeat(2, 0) * np.timedelta64(15, "m"),
            }
            with open(tmp_path / f"{split}.pkl", "wb") as handle:
                pickle.dump(payload, handle)
        splits = load_metro_pickles(tmp_path, steps_per_day=96)  # 15-min slots
        times = splits["train"].time_indices
        assert np.issubdtype(times.dtype, np.integer)
        assert (np.diff(times, axis=1) == 1).all()


class TestElectricityTxt:
    def _write_fixture(self, path, steps=96, clients=4):
        rng = np.random.default_rng(1)
        with open(path, "w") as handle:
            handle.write('"ts";' + ";".join(f'"MT_{i:03d}"' for i in range(clients)) + "\n")
            for s in range(steps):
                row = ";".join(f"{rng.random()*10:.4f}".replace(".", ",") for _ in range(clients))
                handle.write(f'"2012-01-01 {s}";{row}\n')

    def test_hourly_aggregation(self, tmp_path):
        path = tmp_path / "LD.txt"
        self._write_fixture(path, steps=96, clients=4)
        ds = load_electricity_txt(path)
        assert ds.values.shape == (24, 4, 1)  # 96 quarter-hours -> 24 hours

    def test_client_limit(self, tmp_path):
        path = tmp_path / "LD.txt"
        self._write_fixture(path, steps=8, clients=6)
        ds = load_electricity_txt(path, aggregate_hours=False, max_clients=3)
        assert ds.values.shape[1] == 3

    def test_decimal_commas_parsed(self, tmp_path):
        path = tmp_path / "LD.txt"
        with open(path, "w") as handle:
            handle.write('"ts";"MT_001"\n')
            for _ in range(4):
                handle.write('"x";"1,5"\n')
        ds = load_electricity_txt(path)
        assert ds.values[0, 0, 0] == pytest.approx(6.0)  # 4 x 1.5 summed


class TestTaskFromSeries:
    def test_full_pipeline(self, rng):
        values = np.abs(rng.normal(size=(120, 4, 2))) * 10
        ds = load_raw_series(values, steps_per_day=24)
        task = task_from_series(ds, "custom", history=4, horizon=2, steps_per_day=24)
        assert task.num_nodes == 4
        assert len(task.train) > len(task.val) > 0
        x, y, t = next(iter(task.loader("train", 4)))
        assert x.shape[1:] == (4, 4, 2)
        # trains end-to-end through the standard machinery
        from repro.training import TrainingConfig, run_experiment

        result = run_experiment(
            "tgcrn", task, TrainingConfig(epochs=1, batch_size=32),
            hidden_dim=8, model_kwargs=dict(node_dim=4, time_dim=4, num_layers=1),
        )
        assert np.isfinite(result.overall.mae)


class TestRunRepeated:
    def test_aggregates_seeds(self, tiny_task):
        from repro.training import TrainingConfig, run_repeated

        result = run_repeated(
            "ha", tiny_task, TrainingConfig(), seeds=(0, 1),
        )
        assert len(result.runs) == 2
        assert result.std("mae") == pytest.approx(0.0)  # HA is deterministic
        assert "MAE" in str(result)

    def test_seed_variation_for_neural_model(self, tiny_task):
        from repro.training import TrainingConfig, run_repeated

        result = run_repeated(
            "fclstm", tiny_task, TrainingConfig(epochs=1, batch_size=64),
            seeds=(0, 1), hidden_dim=8, num_layers=1,
        )
        assert result.std("mae") > 0.0
        assert result.mean("mae") > 0.0
