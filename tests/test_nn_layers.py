"""Tests for feed-forward layers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, randn
from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear, get_activation


class TestLinear:
    def test_shape(self, rng):
        layer = Linear(3, 5, rng=rng)
        assert layer(randn(7, 3, rng=rng)).shape == (7, 5)

    def test_multi_batch_dims(self, rng):
        layer = Linear(3, 5, rng=rng)
        assert layer(randn(2, 4, 3, rng=rng)).shape == (2, 4, 5)

    def test_no_bias(self, rng):
        layer = Linear(3, 5, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = randn(4, 3, rng=rng)
        check_gradients(lambda: layer(x).tanh().sum(), layer.parameters())


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 9]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self, rng):
        emb = Embedding(10, 4, rng=rng)
        np.testing.assert_allclose(emb(np.array([3])).data[0], emb.weight.data[3])

    def test_gradient_scatters_to_rows(self, rng):
        emb = Embedding(5, 3, rng=rng)
        emb(np.array([1, 1, 4])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[1], 2.0)
        np.testing.assert_allclose(grad[4], 1.0)
        np.testing.assert_allclose(grad[0], 0.0)


class TestDropout:
    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)

    def test_eval_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = randn(5, 5, rng=rng)
        assert layer(x) is x

    def test_train_scales(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((50, 50)))
        out = layer(x)
        values = set(np.unique(out.data))
        assert values <= {0.0, 2.0}


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = LayerNorm(6)
        out = layer(randn(4, 6, rng=rng))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-4)

    def test_gradients(self, rng):
        layer = LayerNorm(4)
        x = randn(3, 4, rng=rng, requires_grad=True)
        check_gradients(lambda: layer(x).tanh().sum(), [x] + layer.parameters(), rtol=1e-3)


class TestMLP:
    def test_shapes(self, rng):
        mlp = MLP([3, 8, 8, 2], rng=rng)
        assert mlp(randn(5, 3, rng=rng)).shape == (5, 2)

    def test_needs_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([3], rng=rng)

    def test_out_activation(self, rng):
        mlp = MLP([3, 4, 2], out_activation="sigmoid", rng=rng)
        out = mlp(randn(5, 3, rng=rng))
        assert ((out.data > 0) & (out.data < 1)).all()


class TestActivations:
    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_activation("swish9000")

    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "identity", "leaky_relu"])
    def test_known(self, name, rng):
        fn = get_activation(name)
        out = fn(randn(3, rng=rng))
        assert out.shape == (3,)
