"""Result analysis: improvement tables, significance tests, horizon curves.

The paper reports percentage improvements over the best baseline
("TGCRN achieves 10.95% and 14.16% improvements on HZMetro ... in terms
of MAE and RMSE with average horizons"); these helpers compute the same
quantities from :class:`ExperimentResult` lists, plus a paired
significance test over per-sample errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from .experiment import ExperimentResult


def improvement_over_best_baseline(
    results: Sequence[ExperimentResult], target: str = "tgcrn", metric: str = "mae"
) -> tuple[str, float]:
    """Percentage improvement of ``target`` over the best other method.

    Returns (best_baseline_name, improvement_percent); positive means the
    target wins.
    """
    target_result = _find(results, target)
    baselines = [r for r in results if r.model_name != target]
    if not baselines:
        raise ValueError("need at least one baseline to compare against")
    best = min(baselines, key=lambda r: getattr(r.overall, metric))
    best_value = getattr(best.overall, metric)
    target_value = getattr(target_result.overall, metric)
    if best_value == 0:
        return best.model_name, 0.0
    return best.model_name, 100.0 * (1.0 - target_value / best_value)


def improvement_table(results: Sequence[ExperimentResult], target: str = "tgcrn") -> str:
    """Render MAE/RMSE/MAPE improvements of ``target`` vs best baseline."""
    lines = [f"{'metric':<8} {'best baseline':<16} {'improvement':>12}"]
    for metric in ("mae", "rmse", "mape"):
        name, gain = improvement_over_best_baseline(results, target=target, metric=metric)
        lines.append(f"{metric.upper():<8} {name:<16} {gain:>11.2f}%")
    return "\n".join(lines)


@dataclass(frozen=True)
class SignificanceReport:
    """Wilcoxon signed-rank comparison of per-sample absolute errors."""

    statistic: float
    p_value: float
    median_delta: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def paired_significance(
    prediction_a: np.ndarray, prediction_b: np.ndarray, target: np.ndarray
) -> SignificanceReport:
    """Is model A's per-sample absolute error lower than model B's?

    Errors are aggregated per test window (mean over horizon/nodes) so
    samples are approximately independent; the Wilcoxon signed-rank test
    avoids normality assumptions on traffic errors.
    """
    if not prediction_a.shape == prediction_b.shape == target.shape:
        raise ValueError("all arrays must share a shape")
    axes = tuple(range(1, target.ndim))
    errors_a = np.abs(prediction_a - target).mean(axis=axes)
    errors_b = np.abs(prediction_b - target).mean(axis=axes)
    delta = errors_a - errors_b
    if np.allclose(delta, 0):
        return SignificanceReport(statistic=0.0, p_value=1.0, median_delta=0.0)
    statistic, p_value = stats.wilcoxon(errors_a, errors_b)
    return SignificanceReport(
        statistic=float(statistic), p_value=float(p_value), median_delta=float(np.median(delta))
    )


def horizon_curve_text(
    results: Sequence[ExperimentResult], metric: str = "mae", width: int = 48
) -> str:
    """ASCII sparkline table of per-horizon metrics (a text Fig. 8)."""
    all_values = [v for r in results for v in r.horizon_metric(metric)]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo if hi > lo else 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    lines = [f"per-horizon {metric.upper()} (left = t+1)"]
    for result in results:
        values = result.horizon_metric(metric)
        bars = "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)
        lines.append(f"{result.model_name:<14} {bars}  [{values[0]:.2f} .. {values[-1]:.2f}]")
    return "\n".join(lines)


def _find(results: Sequence[ExperimentResult], name: str) -> ExperimentResult:
    for result in results:
        if result.model_name == name:
            return result
    raise ValueError(f"no result named {name!r}")
