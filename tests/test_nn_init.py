"""Tests for weight initializers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import init


class TestFans:
    def test_vector(self):
        assert init._fans((7,)) == (7, 7)

    def test_matrix(self):
        assert init._fans((3, 5)) == (3, 5)

    def test_conv_kernel(self):
        # (out, in, k) convention: receptive field multiplies channel fans.
        assert init._fans((8, 4, 3)) == (12, 24)


@given(
    fan_in=st.integers(min_value=1, max_value=64),
    fan_out=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_xavier_uniform_bound(fan_in, fan_out, seed):
    rng = np.random.default_rng(seed)
    w = init.xavier_uniform((fan_in, fan_out), rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    assert (np.abs(w) <= bound).all()
    assert w.shape == (fan_in, fan_out)


def test_xavier_normal_std():
    rng = np.random.default_rng(0)
    w = init.xavier_normal((200, 200), rng)
    expected = np.sqrt(2.0 / 400)
    assert w.std() == pytest.approx(expected, rel=0.1)


def test_kaiming_uniform_bound():
    rng = np.random.default_rng(0)
    w = init.kaiming_uniform((50, 10), rng)
    assert (np.abs(w) <= np.sqrt(6.0 / 50)).all()


def test_uniform_and_normal_and_zeros():
    rng = np.random.default_rng(0)
    assert (np.abs(init.uniform((100,), rng, 0.5)) <= 0.5).all()
    assert init.normal((500,), rng, std=2.0).std() == pytest.approx(2.0, rel=0.2)
    np.testing.assert_allclose(init.zeros((3, 3)), 0.0)


def test_gain_scales_xavier():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    base = init.xavier_uniform((10, 10), rng1, gain=1.0)
    scaled = init.xavier_uniform((10, 10), rng2, gain=2.0)
    np.testing.assert_allclose(scaled, 2.0 * base)


def test_initializers_return_float64():
    rng = np.random.default_rng(0)
    assert init.xavier_uniform((3, 4), rng).dtype == np.float64
    assert init.xavier_normal((3, 4), rng).dtype == np.float64
    assert init.kaiming_uniform((3, 4), rng).dtype == np.float64
    assert init.uniform((3,), rng, 0.5).dtype == np.float64
    assert init.normal((3,), rng, std=1.0).dtype == np.float64
    assert init.zeros((3, 4)).dtype == np.float64


def test_float64_end_to_end():
    """Precision contract: params, activations, and grads stay float64
    through a full TGCRN forward/backward (the SH005 analyzer rule
    enforces the parameter half of this statically)."""
    from repro.autodiff import mae_loss, randn
    from repro.core import TGCRN

    rng = np.random.default_rng(0)
    model = TGCRN(num_nodes=4, in_dim=2, out_dim=2, horizon=3, hidden_dim=6,
                  num_layers=2, node_dim=5, time_dim=4, steps_per_day=24, rng=rng)
    for name, param in model.named_parameters():
        assert param.data.dtype == np.float64, name
    x = randn(3, 4, 4, 2, rng=rng)
    t = np.arange(7)[None, :].repeat(3, axis=0)
    out = model(x, t)
    assert out.data.dtype == np.float64
    loss = mae_loss(out, randn(3, 3, 4, 2, rng=rng))
    loss.backward()
    for name, param in model.named_parameters():
        assert param.grad is not None and param.grad.dtype == np.float64, name
