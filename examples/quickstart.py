"""Quickstart: train TGCRN on a small metro-style dataset and forecast.

Run:  python examples/quickstart.py

Covers the core public API in ~40 lines: load a Table III dataset
configuration, build the model, train with the paper's protocol, and
evaluate with the paper's metrics.
"""

import numpy as np

from repro import TGCRN, Trainer, TrainingConfig, load_task
from repro.training import default_tgcrn_kwargs, run_experiment


def main():
    # A scaled-down HZMetro: 12 stations, 10 days of 15-minute flows.
    task = load_task("hzmetro", num_nodes=12, num_days=10, seed=0)
    print(f"dataset: {task.name}  nodes={task.num_nodes}  "
          f"train/val/test windows = {len(task.train)}/{len(task.val)}/{len(task.test)}")

    # TGCRN sized for a laptop CPU (paper scale: hidden 64, d_v 64, d_t 32).
    model = TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=16, node_dim=8, time_dim=8, num_layers=1),
        rng=np.random.default_rng(0),
    )
    print(f"model parameters: {model.num_parameters():,}")

    # The paper's optimization protocol: Adam + multi-step decay + early
    # stopping + joint loss L_error + lambda * L_time.
    trainer = Trainer(TrainingConfig(epochs=10, batch_size=16, verbose=True))
    trainer.fit(model, task)

    overall, per_horizon = trainer.test_report(model, task)
    print(f"\nTGCRN test: {overall}")
    for q, r in enumerate(per_horizon, start=1):
        print(f"  horizon {q * 15:>3} min: MAE {r.mae:6.2f}  RMSE {r.rmse:6.2f}  MAPE {r.mape:5.2f}%")

    # Compare against the historical-average baseline in one call.
    ha = run_experiment("ha", task)
    print(f"\nHA baseline: {ha.overall}")
    improvement = 100 * (1 - overall.mae / ha.overall.mae)
    print(f"TGCRN improves MAE over HA by {improvement:.1f}%")


if __name__ == "__main__":
    main()
