"""AGCRN (Bai et al., NeurIPS 2020): adaptive graph convolutional
recurrent network.

A *static self-learning* graph softmax(relu(E Eᵀ)) over learnable node
embeddings drives node-adaptive graph-conv GRUs — exactly the mechanism
TGCRN generalizes (our GCGRU with a time-invariant adjacency), making
this both a baseline and the *w/o tagsl* ablation's reference.  Output
is AGCRN's direct multi-horizon head on the final hidden state.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax, zeros
from ..core.gcgru import GCGRUCell
from ..nn import Linear, Module, ModuleList, Parameter, init


class AGCRN(Module):
    """forward(x: (B,P,N,d), time_indices ignored) -> (B,Q,N,d_out)."""

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        embed_dim: int = 10,
        cheb_k: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.out_dim = out_dim
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.node_embedding = Parameter(init.normal((num_nodes, embed_dim), rng, std=1.0 / np.sqrt(embed_dim)))
        dims = [in_dim] + [hidden_dim] * (num_layers - 1)
        self.cells = ModuleList([GCGRUCell(d, hidden_dim, embed_dim, cheb_k, rng=rng) for d in dims])
        self.head = Linear(hidden_dim, horizon * out_dim, rng=rng)

    def adaptive_adjacency(self, batch: int) -> Tensor:
        logits = (self.node_embedding @ self.node_embedding.T).relu()
        adjacency = softmax(logits, axis=-1)
        return adjacency.unsqueeze(0).broadcast_to((batch, self.num_nodes, self.num_nodes))

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        adjacency = self.adaptive_adjacency(batch)
        embed = self.node_embedding.unsqueeze(0).broadcast_to(
            (batch, self.num_nodes, self.node_embedding.shape[1])
        )
        hiddens = [zeros(batch, self.num_nodes, self.hidden_dim) for _ in range(self.num_layers)]
        for t in range(history):
            layer_input = x[:, t]
            new_hiddens = []
            for cell, hidden in zip(self.cells, hiddens):
                layer_input = cell(layer_input, hidden, adjacency, embed)
                new_hiddens.append(layer_input)
            hiddens = new_hiddens
        flat = self.head(hiddens[-1])  # (B, N, Q*d_out)
        out = flat.reshape(batch, self.num_nodes, self.horizon, self.out_dim)
        return out.transpose(0, 2, 1, 3)
