"""Request validation: every front-door check rejects with its own code."""

import numpy as np
import pytest

from repro.serve import (
    ForecastRequest,
    InvalidRequestError,
    RequestSpec,
    validate_request,
)
from repro.serve.chaos import malformed_payloads


@pytest.fixture(scope="module")
def spec(tiny_task):
    return RequestSpec.for_task(tiny_task)


def _good_payload(spec):
    return {
        "window": np.zeros(spec.window_shape),
        "time_index": np.arange(spec.span),
    }


class TestRequestSpec:
    def test_derived_from_task(self, tiny_task, spec):
        assert spec.history == tiny_task.history
        assert spec.num_nodes == tiny_task.num_nodes
        assert spec.in_dim == tiny_task.in_dim
        assert spec.window_shape == (tiny_task.history, tiny_task.num_nodes, tiny_task.in_dim)
        assert spec.span == tiny_task.history + tiny_task.horizon

    def test_scale_limit_covers_training_inputs(self, tiny_task, spec):
        observed = float(np.abs(tiny_task.train.inputs).max())
        assert spec.scale_limit >= observed

    def test_drift_factor_none_disables_limit(self, tiny_task):
        assert RequestSpec.for_task(tiny_task, drift_factor=None).scale_limit is None


class TestValidateRequest:
    def test_happy_path(self, spec):
        request = validate_request(_good_payload(spec), spec, now=5.0)
        assert isinstance(request, ForecastRequest)
        assert request.window.shape == spec.window_shape
        assert request.window.dtype == np.float64
        assert request.time_index.dtype == np.int64
        assert request.received_at == 5.0
        assert request.deadline is None
        assert request.request_id  # auto-generated

    def test_real_task_windows_pass(self, tiny_task, spec):
        payload = {
            "window": tiny_task.test.inputs[0],
            "time_index": tiny_task.test.time_indices[0],
            "id": "w0",
            "deadline": 99.0,
        }
        request = validate_request(payload, spec, now=1.0)
        assert request.request_id == "w0"
        assert request.deadline == 99.0
        assert not request.expired(now=98.0)
        assert request.expired(now=99.0)

    def test_non_mapping_payload(self, spec):
        with pytest.raises(InvalidRequestError) as err:
            validate_request([1, 2, 3], spec)
        assert err.value.code == "schema"

    def test_missing_field(self, spec):
        with pytest.raises(InvalidRequestError) as err:
            validate_request({"window": np.zeros(spec.window_shape)}, spec)
        assert err.value.code == "schema"

    def test_unknown_field(self, spec):
        payload = _good_payload(spec)
        payload["surprise"] = 1
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "schema"

    def test_wrong_shape(self, spec):
        payload = _good_payload(spec)
        payload["window"] = payload["window"][:, :-1]
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "shape"

    def test_non_numeric_dtype(self, spec):
        payload = _good_payload(spec)
        payload["window"] = np.full(spec.window_shape, "text", dtype=object)
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "dtype"

    def test_non_finite_window(self, spec):
        payload = _good_payload(spec)
        payload["window"] = payload["window"].copy()
        payload["window"].flat[3] = np.inf
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "non_finite"

    def test_scale_drift_rejected(self, spec):
        payload = _good_payload(spec)
        payload["window"] = payload["window"].copy()
        payload["window"].flat[0] = spec.scale_limit * 50.0
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "scale_drift"
        assert "unscaled" in err.value.detail

    def test_time_index_wrong_length(self, spec):
        payload = _good_payload(spec)
        payload["time_index"] = np.arange(spec.span + 1)
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "time_index"

    def test_time_index_not_increasing(self, spec):
        payload = _good_payload(spec)
        payload["time_index"] = np.arange(spec.span)[::-1].copy()
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "time_index"

    def test_time_index_fractional(self, spec):
        payload = _good_payload(spec)
        payload["time_index"] = np.arange(spec.span) + 0.5
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "time_index"

    def test_bad_deadline(self, spec):
        payload = _good_payload(spec)
        payload["deadline"] = "soon"
        with pytest.raises(InvalidRequestError) as err:
            validate_request(payload, spec)
        assert err.value.code == "schema"


class TestMalformedCatalog:
    def test_every_entry_rejected_with_its_code(self, spec):
        catalog = malformed_payloads(spec)
        assert len(catalog) >= 6
        for code, payload in catalog:
            with pytest.raises(InvalidRequestError) as err:
                validate_request(payload, spec)
            assert err.value.code == code, f"expected {code}, got {err.value.code}"
