"""Jittered exponential backoff: the one retry-delay seam in the repo.

Tight retry loops synchronize: when a shared dependency hiccups, every
client that failed at time *t* retries at *t + wait*, re-creating the
very spike that caused the failure.  The cure is (a) exponential growth,
so persistent faults see geometrically less traffic, and (b) jitter, so
retries from independent clients decorrelate instead of arriving in
lockstep.

:class:`Backoff` computes that schedule with every side effect
injectable — the RNG that draws jitter, and the ``sleep`` that burns the
delay — so tests assert exact schedules without sleeping and production
gets real decorrelation.  :func:`retry_call` is the loop itself.  Lint
rule RL010 (``repro.analyze.lint``) rejects hand-rolled
``for attempt in range(...)``-plus-``time.sleep`` retry loops outside
this package, so every retry in the repo shares this seam.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

import numpy as np

__all__ = ["Backoff", "retry_call"]


class Backoff:
    """Jittered exponential delay schedule with an injectable sleep.

    ``delay(attempt)`` for attempt ``k`` (0-based) is drawn uniformly
    from ``[cap * (1 - jitter), cap)`` where
    ``cap = min(max_delay, base * factor**k)`` — "equal jitter": the
    deterministic floor keeps the exponential shape while the random
    component spreads simultaneous retriers across ``jitter`` of the
    window.  ``jitter=0`` makes the schedule fully deterministic.

    Parameters
    ----------
    base / factor / max_delay:
        Delay for attempt 0, per-attempt growth, and the cap (seconds).
    jitter:
        Fraction of each delay that is randomized, in ``[0, 1]``.
    rng:
        ``numpy`` Generator drawing the jitter.  The default is
        intentionally *unseeded*: jitter exists to decorrelate retries
        across independent processes, which a fixed seed would defeat.
        Tests inject a seeded generator (or ``jitter=0``).
    sleep:
        Callable burning the delay; injectable so tests capture the
        schedule instead of waiting it out.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.5,
        rng: np.random.Generator | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if base < 0.0:
            raise ValueError(f"base must be >= 0, got {base}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        # Unseeded by design: see the class docstring.  # analyze: allow[RL002]
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sleep = sleep

    def delay(self, attempt: int) -> float:
        """The (possibly jittered) delay before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        cap = min(self.max_delay, self.base * self.factor**attempt)
        if self.jitter == 0.0 or cap == 0.0:
            return cap
        return cap * (1.0 - self.jitter) + cap * self.jitter * float(self._rng.random())

    def delays(self, attempts: int) -> Iterator[float]:
        """The schedule for ``attempts`` consecutive retries."""
        for attempt in range(attempts):
            yield self.delay(attempt)

    def wait(self, attempt: int) -> float:
        """Sleep out the delay for ``attempt``; returns the seconds slept."""
        seconds = self.delay(attempt)
        if seconds > 0.0:
            self._sleep(seconds)
        return seconds


def retry_call(
    fn: Callable,
    *,
    retries: int = 3,
    backoff: Backoff | None = None,
    retryable: tuple = (OSError,),
    no_retry: tuple = (),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
):
    """Call ``fn`` with up to ``retries`` jittered-backoff retries.

    ``retryable`` exceptions trigger a retry (after ``backoff.wait``);
    ``no_retry`` types are checked first and always re-raise (e.g.
    ``FileNotFoundError`` under a broad ``OSError``).  ``on_retry``
    observes each retry as ``(attempt, exception, delay_seconds)`` —
    the hook loggers and metrics attach to.  The final failure re-raises
    the last exception unchanged.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    backoff = backoff if backoff is not None else Backoff()
    attempt = 0
    while True:
        try:
            return fn()
        except no_retry:
            raise
        except retryable as exc:
            if attempt >= retries:
                raise
            slept = backoff.wait(attempt)
            if on_retry is not None:
                on_retry(attempt, exc, slept)
            attempt += 1
