"""Orchestrates the three analyzers over the repo and its model catalog.

``run_analysis`` is what ``repro.cli analyze`` and CI call: AST lint over
``src/repro``, then symbolic shape + gradient-flow + engine-support
checks over TGCRN and every neural baseline in ``baselines/registry.py``,
all merged into one finding list with per-rule ``repro.obs`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..obs.metrics import MetricsRegistry
from .concurrency import analyze_concurrency
from .engine_support import check_engine_support
from .findings import Baseline, Finding
from .gradflow import lint_gradient_flow
from .lint import lint_paths
from .shapes import check_forecast_model

#: tiny synthetic task used to instantiate the model catalog for checking
_CHECK_TASK = dict(name="hzmetro", size="small", seed=0, num_nodes=6, num_days=5)


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run, pre/post baseline split."""

    findings: list[Finding] = field(default_factory=list)  # new (not baselined)
    suppressed: list[Finding] = field(default_factory=list)  # matched the baseline
    metrics: dict = field(default_factory=dict)

    @property
    def all_findings(self) -> list[Finding]:
        return self.findings + self.suppressed


def _model_catalog(hidden_dim: int = 8, num_layers: int = 2, seed: int = 0):
    """Yield (name, model, dims) for TGCRN and every neural baseline."""
    from ..baselines.registry import NEURAL_BASELINES, build_baseline
    from ..core.tgcrn import TGCRN
    from ..data.datasets import load_task
    from ..training.experiment import default_tgcrn_kwargs

    task = load_task(**_CHECK_TASK)
    dims = dict(
        history=task.history,
        horizon=task.horizon,
        num_nodes=task.num_nodes,
        in_dim=task.in_dim,
        out_dim=task.out_dim,
    )
    tgcrn_kwargs = default_tgcrn_kwargs(task, hidden_dim=hidden_dim, node_dim=4, time_dim=4, num_layers=num_layers)
    import numpy as np

    yield "tgcrn", TGCRN(rng=np.random.default_rng(seed), **tgcrn_kwargs), dims
    for name in NEURAL_BASELINES:
        yield name, build_baseline(name, task, hidden_dim=hidden_dim, num_layers=num_layers, seed=seed), dims


def analyze_models(rules: Sequence[str] | None = None, seed: int = 0) -> list[Finding]:
    """Shape-check and gradient-flow-lint the full model catalog."""
    wants = lambda rule_id: rules is None or any(rule_id.startswith(p) for p in rules)
    run_shapes = wants("SH")
    run_gradflow = wants("GF")
    run_engine = wants("EN")
    if not run_shapes and not run_gradflow and not run_engine:
        return []
    findings: list[Finding] = []
    for name, model, dims in _model_catalog(seed=seed):
        if run_shapes:
            findings.extend(check_forecast_model(model, model_name=name, **dims))
        if run_gradflow:
            findings.extend(lint_gradient_flow(model, model_name=name, **dims))
        if run_engine:
            findings.extend(check_engine_support(model, model_name=name, seed=seed, **dims))
    return [f for f in findings if rules is None or any(f.rule_id.startswith(p) for p in rules)]


def run_analysis(
    *,
    root: str | Path = ".",
    paths: Sequence[str | Path] | None = None,
    rules: Sequence[str] | None = None,
    include_models: bool = True,
    baseline: Baseline | None = None,
    metrics: MetricsRegistry | None = None,
    seed: int = 0,
) -> AnalysisReport:
    """Run lint (+ optionally model checks), apply the baseline, count findings."""
    root = Path(root)
    if paths is None:
        paths = [root / "src" / "repro"]
    findings = lint_paths(paths, root=root, rules=rules)
    findings.extend(analyze_concurrency(paths, root=root, rules=rules))
    if include_models:
        findings.extend(analyze_models(rules=rules, seed=seed))

    new, suppressed = (baseline or Baseline()).split(findings)

    registry = metrics or MetricsRegistry(run="analyze")
    for finding in findings:
        registry.counter(f"analyze.findings.{finding.rule_id}").inc()
    registry.counter("analyze.findings.new").inc(len(new))
    registry.counter("analyze.findings.baselined").inc(len(suppressed))

    return AnalysisReport(
        findings=new,
        suppressed=suppressed,
        metrics={
            "by_rule": _count_by(findings, lambda f: f.rule_id),
            "by_severity": _count_by(findings, lambda f: f.severity),
            "new": len(new),
            "baselined": len(suppressed),
        },
    )


def _count_by(findings: Sequence[Finding], key) -> dict[str, int]:
    out: dict[str, int] = {}
    for finding in findings:
        out[key(finding)] = out.get(key(finding), 0) + 1
    return dict(sorted(out.items()))
