"""Synthetic spatially-correlated time series with *ground-truth* dynamic
spatial correlations.

The real datasets (HZMetro/SHMetro AFC logs, NYC trip records, UCI
Electricity) are not available offline, so we simulate the generative
process the paper's §I–II describe: stations live in functional areas
(residential / business / shopping), passengers flow between areas with

* **spatial trend** — origin–destination (OD) transfer propensities that
  vary smoothly within a day (morning commute builds up and decays,
  evening reverses direction), and
* **spatial periodicity** — distinct weekday and weekend OD regimes.

The generator exposes the true OD matrix at every step
(:meth:`SpatioTemporalGenerator.od_matrix`), which is exactly what
Fig. 2 and Fig. 11 of the paper visualize against the learned graphs.

Flows are produced by a conservation process: each node emits an outflow
drawn from its area's activity profile, routed to destinations by the
row-normalized OD matrix with a one-step travel lag; a node's inflow is
the sum of arrivals.  Features are ``(inflow, outflow)`` as in the metro
datasets; demand-style datasets reinterpret them as (pick-up, drop-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

RESIDENTIAL, BUSINESS, SHOPPING = 0, 1, 2
_AREA_NAMES = {RESIDENTIAL: "residential", BUSINESS: "business", SHOPPING: "shopping"}


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generative process.

    ``steps_per_day`` and ``num_days`` fix the calendar; ``start_weekday``
    anchors day 0 (0 = Monday).  ``base_flow`` scales magnitudes to the
    dataset being mimicked (metro stations see hundreds of passengers per
    15 minutes, bike docks a handful per half hour).
    """

    num_nodes: int = 20
    steps_per_day: int = 73
    num_days: int = 25
    start_weekday: int = 0
    base_flow: float = 100.0
    noise_scale: float = 0.08
    travel_lag: int = 1
    seed: int = 0
    area_fractions: tuple[float, float, float] = (0.4, 0.35, 0.25)
    # Stochastic modulations that make the process *history-dependent*:
    # a calendar lookup (HA) cannot see them, but models reading the
    # recent frames (and, through OD routing, the neighbours) can.
    day_factor_scale: float = 0.25    # per-day area-level demand shocks
    day_factor_rho: float = 0.5       # AR(1) of day shocks across days
    slot_factor_scale: float = 0.25   # smooth within-day area fluctuations
    slot_factor_rho: float = 0.97     # AR(1) of slot fluctuations


@dataclass
class SyntheticDataset:
    """Generated data plus every piece of side information baselines need."""

    values: np.ndarray            # (T, N, 2) inflow/outflow
    time_index: np.ndarray        # (T,) absolute step index
    slot_of_day: np.ndarray       # (T,)
    day_of_week: np.ndarray       # (T,)
    coordinates: np.ndarray       # (N, 2) planar positions
    areas: np.ndarray             # (N,) functional-area label
    line_edges: list[tuple[int, int]] = field(default_factory=list)
    config: SyntheticConfig | None = None
    generator: "SpatioTemporalGenerator | None" = None

    @property
    def num_steps(self) -> int:
        return self.values.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.values.shape[1]

    def od_matrix(self, t: int) -> np.ndarray:
        """Ground-truth OD transfer propensity at absolute step ``t``."""
        if self.generator is None:
            raise ValueError("dataset was built without a generator reference")
        return self.generator.od_matrix(t)


class SpatioTemporalGenerator:
    """Simulator of area-driven passenger/consumption flows."""

    def __init__(self, config: SyntheticConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n = config.num_nodes
        # Node geography: clustered by area so distance graphs are informative.
        centers = np.array([[0.0, 0.0], [3.0, 0.5], [1.5, 2.5]])
        counts = self._area_counts()
        self.areas = np.repeat(np.arange(3), counts)
        self.coordinates = centers[self.areas] + self._rng.normal(scale=0.8, size=(n, 2))
        # Per-node intrinsic size (popular vs quiet stations).
        self.node_scale = np.exp(self._rng.normal(scale=0.35, size=n))
        # Spatial proximity kernel feeding the OD matrix.
        delta = self.coordinates[:, None, :] - self.coordinates[None, :, :]
        distances = np.sqrt((delta ** 2).sum(-1))
        self.proximity = np.exp(-distances / (distances.mean() + 1e-9))
        np.fill_diagonal(self.proximity, 0.0)

    def _area_counts(self) -> np.ndarray:
        n = self.config.num_nodes
        fractions = np.asarray(self.config.area_fractions, dtype=float)
        counts = np.floor(fractions / fractions.sum() * n).astype(int)
        counts[0] += n - counts.sum()
        return counts

    # ------------------------------------------------------------------ #
    # ground-truth temporal structure
    # ------------------------------------------------------------------ #

    def _phase(self, t: int) -> tuple[float, bool]:
        """Return (fraction of the service day in [0,1], is_weekend)."""
        cfg = self.config
        day = t // cfg.steps_per_day
        slot = t % cfg.steps_per_day
        weekday = (cfg.start_weekday + day) % 7
        return slot / max(cfg.steps_per_day - 1, 1), weekday >= 5

    @staticmethod
    def _bump(phase: float, center: float, width: float) -> float:
        """Gaussian activity bump on the daily phase axis."""
        return float(np.exp(-0.5 * ((phase - center) / width) ** 2))

    def activity(self, t: int) -> np.ndarray:
        """Per-node outflow intensity at step ``t`` (before noise)."""
        phase, weekend = self._phase(t)
        morning = self._bump(phase, 0.15, 0.07)
        midday = self._bump(phase, 0.45, 0.12)
        evening = self._bump(phase, 0.72, 0.08)
        if weekend:
            profile = {
                RESIDENTIAL: 0.25 + 0.5 * midday + 0.3 * evening,
                BUSINESS: 0.10 + 0.1 * midday,
                SHOPPING: 0.30 + 0.9 * midday + 0.6 * evening,
            }
        else:
            profile = {
                RESIDENTIAL: 0.20 + 1.0 * morning + 0.35 * evening,
                BUSINESS: 0.15 + 0.3 * morning + 0.9 * evening,
                SHOPPING: 0.15 + 0.3 * midday + 0.5 * evening,
            }
        levels = np.array([profile[a] for a in (RESIDENTIAL, BUSINESS, SHOPPING)])
        return self.config.base_flow * self.node_scale * levels[self.areas]

    def _affinity(self, t: int) -> np.ndarray:
        """3×3 area-to-area attraction at step ``t`` (trend + periodicity)."""
        phase, weekend = self._phase(t)
        morning = self._bump(phase, 0.15, 0.07)
        midday = self._bump(phase, 0.45, 0.12)
        evening = self._bump(phase, 0.72, 0.08)
        base = np.full((3, 3), 0.15)
        if weekend:
            base[RESIDENTIAL, SHOPPING] += 1.2 * midday + 0.8 * evening
            base[SHOPPING, RESIDENTIAL] += 0.5 * midday + 1.1 * evening
            base[RESIDENTIAL, RESIDENTIAL] += 0.3 * midday
        else:
            base[RESIDENTIAL, BUSINESS] += 1.6 * morning
            base[BUSINESS, RESIDENTIAL] += 1.4 * evening
            base[RESIDENTIAL, SHOPPING] += 0.5 * evening
            base[BUSINESS, SHOPPING] += 0.6 * evening
            base[SHOPPING, RESIDENTIAL] += 0.6 * evening
        return base

    def od_matrix(self, t: int) -> np.ndarray:
        """Ground-truth OD transfer propensity (N, N), rows ~ origins.

        Combines the time-varying area affinity with static spatial
        proximity; *not* normalized — relative magnitudes are the spatial
        correlations the paper's Fig. 2 heat maps show.
        """
        affinity = self._affinity(t)
        matrix = affinity[self.areas[:, None], self.areas[None, :]] * self.proximity
        np.fill_diagonal(matrix, 0.0)
        return matrix

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #

    def _modulation_series(self, total: int) -> np.ndarray:
        """History-dependent demand multipliers, shape (total, 3 areas).

        Combines a slowly-mixing AR(1) day shock (events, weather) with a
        smooth within-day AR(1) fluctuation.  Both are per functional
        area, so they correlate nodes spatially — a forecaster that reads
        the recent frames of *related* nodes recovers them, while a pure
        calendar average cannot.
        """
        cfg = self.config
        day_shock = np.zeros(3)
        slot_state = np.zeros(3)
        modulation = np.empty((total, 3))
        for t in range(total):
            if t % cfg.steps_per_day == 0:
                day_shock = cfg.day_factor_rho * day_shock + self._rng.normal(
                    scale=cfg.day_factor_scale, size=3
                )
            slot_state = cfg.slot_factor_rho * slot_state + self._rng.normal(
                scale=cfg.slot_factor_scale * np.sqrt(1 - cfg.slot_factor_rho ** 2), size=3
            )
            modulation[t] = np.exp(day_shock + slot_state)
        return modulation

    def generate(self) -> SyntheticDataset:
        """Simulate the full calendar and return the dataset."""
        cfg = self.config
        total = cfg.steps_per_day * cfg.num_days
        n = cfg.num_nodes
        outflow = np.zeros((total, n))
        inflow = np.zeros((total, n))
        modulation = self._modulation_series(total)
        for t in range(total):
            demand = self.activity(t) * modulation[t][self.areas]
            noise = np.exp(self._rng.normal(scale=cfg.noise_scale, size=n))
            out_t = demand * noise
            outflow[t] = out_t
            routing = self.od_matrix(t)
            row_sum = routing.sum(axis=1, keepdims=True)
            routing = routing / np.maximum(row_sum, 1e-9)
            arrival = t + cfg.travel_lag
            if arrival < total:
                inflow[arrival] += out_t @ routing
        values = np.stack([inflow, outflow], axis=-1)
        time_index = np.arange(total)
        slot = time_index % cfg.steps_per_day
        day_of_week = (cfg.start_weekday + time_index // cfg.steps_per_day) % 7
        from ..graph.builders import ring_line_edges

        edges = ring_line_edges(n, num_lines=max(1, n // 10), rng=np.random.default_rng(cfg.seed + 1))
        return SyntheticDataset(
            values=values,
            time_index=time_index,
            slot_of_day=slot,
            day_of_week=day_of_week,
            coordinates=self.coordinates,
            areas=self.areas,
            line_edges=edges,
            config=cfg,
            generator=self,
        )


class ElectricityGenerator(SpatioTemporalGenerator):
    """Consumption-style variant: one feature, correlation via shared
    regional weather/usage factors instead of passenger routing.

    Spatial correlation is planted through latent factors whose loadings
    depend on the area, with factor mixing weights that vary by time of
    day and day type — the same trend/periodicity structure, expressed as
    correlated consumption rather than conserved flows.
    """

    def generate(self) -> SyntheticDataset:
        cfg = self.config
        total = cfg.steps_per_day * cfg.num_days
        n = cfg.num_nodes
        loadings = np.eye(3)[self.areas]  # (N, 3): each node follows its area factor
        cross = 0.25 * self._rng.random((n, 3))
        loadings = loadings + cross
        values = np.zeros((total, n))
        modulation = self._modulation_series(total)
        for t in range(total):
            phase, weekend = self._phase(t)
            factor = np.array(
                [
                    0.6 + self._bump(phase, 0.3, 0.15) + 0.7 * self._bump(phase, 0.8, 0.1),
                    (0.3 if weekend else 1.0) * (0.5 + self._bump(phase, 0.5, 0.2)),
                    (1.1 if weekend else 0.6) * (0.4 + self._bump(phase, 0.6, 0.25)),
                ]
            ) * modulation[t]
            base = loadings @ factor
            noise = np.exp(self._rng.normal(scale=cfg.noise_scale, size=n))
            values[t] = cfg.base_flow * self.node_scale * base * noise
        data = values[:, :, None]
        time_index = np.arange(total)
        from ..graph.builders import ring_line_edges

        edges = ring_line_edges(n, num_lines=max(1, n // 10), rng=np.random.default_rng(cfg.seed + 1))
        return SyntheticDataset(
            values=data,
            time_index=time_index,
            slot_of_day=time_index % cfg.steps_per_day,
            day_of_week=(cfg.start_weekday + time_index // cfg.steps_per_day) % 7,
            coordinates=self.coordinates,
            areas=self.areas,
            line_edges=edges,
            config=cfg,
            generator=self,
        )
