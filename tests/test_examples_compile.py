"""Every example script must at least parse and expose a main()."""

import ast
import pathlib

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in functions, f"{path.name} lacks a main() entry point"
    # module docstring with a Run: line keeps the examples self-documenting
    docstring = ast.get_docstring(tree) or ""
    assert "Run:" in docstring, f"{path.name} docstring lacks usage line"


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5


def test_quickstart_is_among_examples():
    assert any(p.name == "quickstart.py" for p in EXAMPLES)
