"""Polynomial graph-convolution supports.

DCRNN's diffusion convolution and AGCRN's Chebyshev-style convolution both
reduce to applying a short list of "support" matrices to the node features;
these helpers build those lists.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, ensure_tensor
from .adjacency import random_walk_np


def diffusion_supports(adjacency: np.ndarray, max_step: int = 2) -> list[np.ndarray]:
    """Bidirectional random-walk powers used by DCRNN.

    Returns ``[P_fwd, P_fwd^2, ..., P_bwd, P_bwd^2, ...]`` up to
    ``max_step`` hops in each direction.
    """
    forward = random_walk_np(adjacency)
    backward = random_walk_np(adjacency.T)
    supports: list[np.ndarray] = []
    for base in (forward, backward):
        power = np.eye(adjacency.shape[0])
        for _ in range(max_step):
            power = power @ base
            supports.append(power.copy())
    return supports


def chebyshev_supports(normalized: Tensor, order: int = 2) -> list[Tensor]:
    """Chebyshev polynomial list [I, L, 2L·T1 - T0, ...] (differentiable).

    ``normalized`` is an already-normalized (scaled) adjacency/Laplacian.
    ``order`` counts the matrices returned (order=2 → [I, L]).

    Cross-checked against the loop-based recurrence in
    ``repro.verify.reference.chebyshev_supports_reference``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    normalized = ensure_tensor(normalized)
    n = normalized.shape[-1]
    identity = Tensor(np.eye(n))
    if normalized.ndim > 2:
        identity = Tensor(np.broadcast_to(np.eye(n), normalized.shape).copy())
    supports = [identity, normalized]
    for _ in range(order - 2):
        supports.append(2.0 * (normalized @ supports[-1]) - supports[-2])
    return supports[:order]
