"""Tests for the concurrency analyzer (repro.analyze.concurrency) and the
runtime lock-order sanitizer (repro.analyze.lockorder).

Static side: each CC rule gets a planted-bug fixture (flagged with the
exact rule id at the right dotted location) and a clean twin (the
sanctioned idiom passes), plus allow-comment suppression, fingerprint
stability under line shifts, and a repo-clean gate over ``src/repro``.

Runtime side: an ABBA acquisition order on two threads must produce a
lock-order cycle whose witness names both locks; holding a lock across a
``checkpoint`` seam must be recorded; the JSONL export round-trips.
"""

import json
import threading

import pytest

from repro.analyze import (
    CONCURRENCY_RULES,
    LockOrderSanitizer,
    LockOrderViolation,
    analyze_concurrency,
    fingerprints,
)
from repro.analyze import lockorder as lockorder_mod


def _scan(tmp_path, source, name="victim.py", rules=None):
    path = tmp_path / name
    path.write_text(source)
    return analyze_concurrency([path], rules=rules)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


# ------------------------------------------------------------------ #
# CC001: mixed guarded/unguarded attribute access
# ------------------------------------------------------------------ #

# threading.Thread construction marks the class as threaded — tmp
# fixtures are not under a serve/resilience/obs worker path.
CC001_RACY = """\
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        with self._lock:
            self._count += 1

    def bump(self):
        self._count += 1
"""


class TestCC001:
    def test_flags_racy_counter(self, tmp_path):
        findings = _scan(tmp_path, CC001_RACY)
        assert [f.rule_id for f in findings] == ["CC001"]
        assert "Worker._count" in findings[0].message
        assert findings[0].severity == "error"

    def test_location_points_at_unguarded_line(self, tmp_path):
        (finding,) = _scan(tmp_path, CC001_RACY)
        lineno = int(finding.location.rsplit(":", 1)[1])
        assert CC001_RACY.splitlines()[lineno - 1].strip() == "self._count += 1"
        assert lineno == 15  # the bump() body, not the guarded _run one

    def test_fully_guarded_class_passes(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        with self._lock:
            self._count += 1

    def bump(self):
        with self._lock:
            self._count += 1
""",
        )
        assert "CC001" not in _rule_ids(findings)

    def test_init_only_access_is_exempt(self, tmp_path):
        # __init__ (and helpers reachable only from it) run pre-sharing
        findings = _scan(
            tmp_path,
            """\
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._setup()
        self._thread = threading.Thread(target=self._run)

    def _setup(self):
        self._count = -1

    def _run(self):
        with self._lock:
            self._count += 1
""",
        )
        assert "CC001" not in _rule_ids(findings)

    def test_unthreaded_class_is_exempt(self, tmp_path):
        source = CC001_RACY.replace(
            "        self._thread = threading.Thread(target=self._run)\n", ""
        )
        assert "Thread" not in source
        assert _scan(tmp_path, source) == []

    def test_private_method_inherits_callers_lock(self, tmp_path):
        # every call site of _bump holds the lock -> entry guard inferred
        findings = _scan(
            tmp_path,
            """\
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._thread = threading.Thread(target=self.bump)

    def _bump(self):
        self._count += 1

    def bump(self):
        with self._lock:
            self._bump()

    def bump_twice(self):
        with self._lock:
            self._bump()
            self._bump()
""",
        )
        assert "CC001" not in _rule_ids(findings)


# ------------------------------------------------------------------ #
# CC002: lock-order cycles
# ------------------------------------------------------------------ #

CC002_ABBA = """\
import threading


class Left:
    def __init__(self, right):
        self._lock = threading.Lock()
        self.right = right

    def forward(self):
        with self._lock:
            self.right.grab_right()

    def grab_left(self):
        with self._lock:
            return 1


class Right:
    def __init__(self, left):
        self._lock = threading.Lock()
        self.left = left

    def grab_right(self):
        with self._lock:
            return 2

    def backward(self):
        with self._lock:
            self.left.grab_left()
"""


class TestCC002:
    def test_flags_abba_cycle(self, tmp_path):
        findings = _scan(tmp_path, CC002_ABBA)
        cc002 = [f for f in findings if f.rule_id == "CC002"]
        assert len(cc002) == 1
        assert "lock-order cycle" in cc002[0].message
        assert "Left._lock" in cc002[0].message
        assert "Right._lock" in cc002[0].message

    def test_consistent_order_passes(self, tmp_path):
        source = CC002_ABBA.replace(
            "    def backward(self):\n"
            "        with self._lock:\n"
            "            self.left.grab_left()\n",
            "    def backward(self):\n"
            "        self.left.grab_left()\n",
        )
        assert "CC002" not in _rule_ids(_scan(tmp_path, source))

    def test_reentrant_self_edge_is_not_a_cycle(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Reentrant:
    def __init__(self):
        self._lock = threading.RLock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            return 1
""",
        )
        assert "CC002" not in _rule_ids(findings)


# ------------------------------------------------------------------ #
# CC003: blocking while holding a lock
# ------------------------------------------------------------------ #


class TestCC003:
    def test_flags_untimed_join_under_lock(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Stopper:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=print)

    def stop(self):
        with self._lock:
            self._worker.join()
""",
        )
        cc003 = [f for f in findings if f.rule_id == "CC003"]
        assert len(cc003) == 1
        assert "Stopper.stop" in cc003[0].message
        assert "join" in cc003[0].message
        assert cc003[0].severity == "warning"

    def test_timed_join_passes(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Stopper:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=print)

    def stop(self):
        with self._lock:
            self._worker.join(timeout=1.0)
""",
        )
        assert "CC003" not in _rule_ids(findings)

    def test_join_outside_lock_passes(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Stopper:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=print)

    def stop(self):
        with self._lock:
            self._stopping = True
        self._worker.join()
""",
        )
        assert "CC003" not in _rule_ids(findings)

    def test_flags_transitive_blocking_through_helper(self, tmp_path):
        # inter-procedural: stop() holds the lock, _drain() sleeps
        findings = _scan(
            tmp_path,
            """\
import threading
import time


class Stopper:
    def __init__(self):
        self._lock = threading.Lock()

    def _drain(self):
        time.sleep(0.5)

    def stop(self):
        with self._lock:
            self._drain()
""",
        )
        cc003 = [f for f in findings if f.rule_id == "CC003"]
        assert any("_drain" in f.message for f in cc003)


# ------------------------------------------------------------------ #
# CC004: Condition.wait outside a predicate while-loop
# ------------------------------------------------------------------ #


class TestCC004:
    def test_flags_wait_without_while(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items = []

    def take(self):
        with self._cond:
            self._cond.wait()
            return self._items.pop()
""",
        )
        cc004 = [f for f in findings if f.rule_id == "CC004"]
        assert len(cc004) == 1
        assert "Waiter.take" in cc004[0].message
        assert "self._cond" in cc004[0].message
        assert cc004[0].severity == "error"

    def test_wait_inside_while_passes(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items = []

    def take(self):
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._items.pop()
""",
        )
        assert "CC004" not in _rule_ids(findings)

    def test_timed_wait_passes(self, tmp_path):
        findings = _scan(
            tmp_path,
            """\
import threading


class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)

    def poll(self):
        with self._cond:
            self._cond.wait(0.1)
""",
        )
        assert "CC004" not in _rule_ids(findings)


# ------------------------------------------------------------------ #
# cross-cutting: allow comments, rule filtering, fingerprints, catalog
# ------------------------------------------------------------------ #


class TestCrossCutting:
    def test_allow_comment_suppresses(self, tmp_path):
        source = CC001_RACY.replace(
            "    def bump(self):\n",
            "    def bump(self):\n"
            "        # analyze: allow[CC001] benign monotonic counter\n",
        )
        assert _scan(tmp_path, source) == []

    def test_rules_filter_skips_other_prefixes(self, tmp_path):
        assert _scan(tmp_path, CC001_RACY, rules=["RL"]) == []
        assert _rule_ids(_scan(tmp_path, CC001_RACY, rules=["CC001"])) == {"CC001"}

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        before = fingerprints(_scan(tmp_path, CC001_RACY, name="a.py"))
        shifted = "# a new leading comment\n\n\n" + CC001_RACY
        after = fingerprints(_scan(tmp_path, shifted, name="a.py"))
        assert before == after
        abba = fingerprints(_scan(tmp_path, CC002_ABBA, name="b.py"))
        abba_shifted = fingerprints(
            _scan(tmp_path, "\n\n\n" + CC002_ABBA, name="b.py")
        )
        assert abba == abba_shifted

    def test_syntax_error_file_is_skipped(self, tmp_path):
        assert _scan(tmp_path, "def broken(:\n") == []

    def test_rule_catalog_is_complete(self):
        assert set(CONCURRENCY_RULES) == {"CC001", "CC002", "CC003", "CC004"}
        for spec in CONCURRENCY_RULES.values():
            assert spec["severity"] in ("error", "warning")
            assert spec["description"]
            assert spec["fix_hint"]

    def test_rules_documented_in_analysis_docs(self, repo_root):
        text = (repo_root / "docs" / "analysis.md").read_text()
        for rule_id in CONCURRENCY_RULES:
            assert rule_id in text, f"{rule_id} missing from docs/analysis.md"

    def test_repo_is_clean(self, repo_root):
        findings = analyze_concurrency(
            [repo_root / "src" / "repro"], root=repo_root
        )
        assert findings == [], "\n".join(
            f"{f.location} {f.rule_id} {f.message}" for f in findings
        )


@pytest.fixture
def repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[1]


# ------------------------------------------------------------------ #
# runtime lock-order sanitizer
# ------------------------------------------------------------------ #


class TestLockOrderSanitizer:
    def test_abba_produces_cycle_with_witness(self):
        sanitizer = LockOrderSanitizer().install()
        try:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def forward():
                with lock_a:
                    with lock_b:
                        pass

            def backward():
                with lock_b:
                    with lock_a:
                        pass

            t1 = threading.Thread(target=forward)
            t2 = threading.Thread(target=backward)
            t1.start(); t1.join()
            t2.start(); t2.join()
        finally:
            sanitizer.uninstall()
        report = sanitizer.report()
        assert not report["ok"]
        assert report["cycles"], "ABBA order must produce a cycle"
        cycle = set(report["cycles"][0])
        assert lock_a.name in cycle and lock_b.name in cycle
        # witness names carry the creation site of each lock
        assert "test_analyze_concurrency.py" in lock_a.name
        with pytest.raises(LockOrderViolation, match="lock-order cycle"):
            sanitizer.check()

    def test_consistent_order_is_clean(self):
        sanitizer = LockOrderSanitizer().install()
        try:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            for _ in range(3):
                with lock_a:
                    with lock_b:
                        pass
        finally:
            sanitizer.uninstall()
        report = sanitizer.report()
        assert report["ok"]
        assert report["edges"] == 1  # deduplicated a->b
        sanitizer.check()  # must not raise

    def test_rlock_reentrancy_makes_no_self_edge(self):
        sanitizer = LockOrderSanitizer().install()
        try:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
            assert sanitizer.held_now() == []
        finally:
            sanitizer.uninstall()
        assert sanitizer.report()["ok"]
        assert sanitizer.edges() == {}

    def test_checkpoint_records_lock_held_across_fault_seam(self):
        sanitizer = LockOrderSanitizer().install()
        try:
            lock = threading.Lock()
            with lock:
                # product code reaches the hook via getattr(threading, ...)
                hook = getattr(threading, "_repro_lockorder_checkpoint")
                hook("fault_hook:after_backward")
            lockorder_mod.checkpoint("outside")  # held-set empty: no violation
        finally:
            sanitizer.uninstall()
        violations = sanitizer.violations()
        assert len(violations) == 1
        assert violations[0]["label"] == "fault_hook:after_backward"
        assert violations[0]["locks"] == [lock.name]
        with pytest.raises(LockOrderViolation, match="fault-injection"):
            sanitizer.check()

    def test_condition_wait_keeps_held_set_honest(self):
        sanitizer = LockOrderSanitizer().install()
        try:
            cond = threading.Condition(threading.Lock())
            results = []

            def consumer():
                with cond:
                    cond.wait(timeout=5.0)
                    results.append(sanitizer.held_now())

            t = threading.Thread(target=consumer)
            t.start()
            for _ in range(500):
                with cond:
                    cond.notify_all()
                if results:
                    break
            t.join(timeout=5.0)
        finally:
            sanitizer.uninstall()
        assert results and len(results[0]) == 1  # reacquired after wait
        assert sanitizer.report()["ok"]

    def test_uninstall_restores_factories(self):
        original_lock, original_rlock = threading.Lock, threading.RLock
        with LockOrderSanitizer():
            assert threading.Lock is not original_lock
            assert getattr(threading, "_repro_lockorder_checkpoint", None)
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock
        assert getattr(threading, "_repro_lockorder_checkpoint", None) is None

    def test_checkpoint_is_noop_when_not_installed(self):
        lockorder_mod.checkpoint("nobody listening")  # must not raise

    def test_export_jsonl_round_trips(self, tmp_path):
        sanitizer = LockOrderSanitizer().install()
        try:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
        finally:
            sanitizer.uninstall()
        out = tmp_path / "lockorder.jsonl"
        sanitizer.export_jsonl(out)
        records = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = {r["type"] for r in records}
        assert {"lock", "edge", "summary"} <= kinds
        edges = [r for r in records if r["type"] == "edge"]
        assert edges == [
            {"type": "edge", "from": lock_a.name, "to": lock_b.name,
             "thread": edges[0]["thread"], "at": edges[0]["at"]}
        ]
        summary = [r for r in records if r["type"] == "summary"][0]
        assert summary["ok"] is True and summary["locks"] == 2
