"""Tests for time discrepancy learning (Eq. 3-5)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import DiscreteTimeEmbedding, TimeDiscrepancyLearner, discrepancy_loss
from repro.core.sampling import TimeDistanceSamples, sample_time_distances
from repro.nn import Adam


def _windows(batch, length):
    return np.arange(length)[None, :] + np.arange(batch)[:, None] * 500


class _LinearEncoder:
    """Ideal encoder: embedding distance exactly proportional to time
    distance, so the proportion loss must vanish."""

    dim = 2
    num_slots = 10**9

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        out = np.stack([t, np.zeros_like(t)], axis=-1)
        return Tensor(out)


class TestLoss:
    def test_nonnegative(self, rng):
        enc = DiscreteTimeEmbedding(50, 4, rng=rng)
        samples = sample_time_distances(_windows(6, 8) % 50, rng)
        assert discrepancy_loss(enc, samples).item() >= 0.0

    def test_zero_for_proportional_embedding(self, rng):
        samples = sample_time_distances(_windows(6, 8), rng)
        loss = discrepancy_loss(_LinearEncoder(), samples)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_random_embedding(self, rng):
        enc = DiscreteTimeEmbedding(600, 8, rng=rng)
        samples = sample_time_distances(_windows(6, 8), rng)
        assert discrepancy_loss(enc, samples).item() > 0.01

    def test_gradient_flows_to_table(self, rng):
        enc = DiscreteTimeEmbedding(600, 8, rng=rng)
        samples = sample_time_distances(_windows(6, 8), rng)
        discrepancy_loss(enc, samples).backward()
        assert enc.weight.grad is not None
        assert np.abs(enc.weight.grad).sum() > 0


class TestLearner:
    def test_optimization_reduces_loss(self, rng):
        """Training only the TDL objective makes embeddings more
        distance-proportional (the mechanism behind Fig. 12b)."""
        enc = DiscreteTimeEmbedding(64, 8, rng=rng)
        learner = TimeDiscrepancyLearner(enc, np.random.default_rng(0), adjacent_range=2)
        opt = Adam([enc.weight], lr=0.01)
        windows = np.arange(8)[None, :] + (np.arange(16)[:, None] * 3) % 56

        def avg_loss(seed):
            probe = TimeDiscrepancyLearner(enc, np.random.default_rng(seed), adjacent_range=2)
            return float(np.mean([probe(windows).item() for _ in range(10)]))

        before = avg_loss(99)
        for _ in range(150):
            opt.zero_grad()
            loss = learner(windows)
            loss.backward()
            opt.step()
        after = avg_loss(99)
        assert after < 0.7 * before

    def test_learner_respects_ranges(self, rng):
        enc = DiscreteTimeEmbedding(64, 4, rng=rng)
        learner = TimeDiscrepancyLearner(enc, rng, adjacent_range=1, mid_range=3)
        loss = learner(_windows(4, 8) % 64)
        assert np.isfinite(loss.item())

    def test_tdl_training_produces_sequentially_ordered_table(self, rng):
        """The Fig. 12b property: optimizing L_time alone lays the slot
        embeddings out in (near-)perfect sequential order."""
        from repro.nn import Adam
        from repro.viz import ordering_score

        enc = DiscreteTimeEmbedding(48, 6, rng=rng)
        learner = TimeDiscrepancyLearner(enc, np.random.default_rng(2), adjacent_range=3)
        opt = Adam([enc.weight], lr=0.01)
        windows = np.arange(12)[None, :] + np.arange(0, 48 * 3, 5)[:, None]
        for _ in range(250):
            opt.zero_grad()
            loss = learner(windows)
            loss.backward()
            opt.step()
        assert ordering_score(enc.weight.data) > 0.95

    def test_distance_is_slot_based_for_periodic_encoders(self, rng):
        """A distant sample exactly one period after the anchor has slot
        distance <= 1 (floored), so its ratio uses the *slot* geometry —
        the coherence property the docstring documents."""
        enc = DiscreteTimeEmbedding(24, 4, rng=rng)
        samples = TimeDistanceSamples(
            anchor_values=np.array([5]),
            adjacent_values=np.array([6]),
            mid_values=np.array([10]),
            distant_values=np.array([5 + 24]),  # same slot, next day
            anchor_positions=np.array([0]),
            adjacent_positions=np.array([1]),
            mid_positions=np.array([5]),
            distant_positions=np.array([0]),
            distant_rows=np.array([0]),
        )
        # ζ for the distant pair is 0 (identical embedding); with slot
        # distance (floored at 1) its ratio is exactly 0, so the loss is
        # the sum of the other two ratios' pairwise terms -> finite and
        # consistent.  With absolute distance the pair would demand
        # ||ΔE|| ∝ 24 from an identical embedding: contradiction.
        loss = discrepancy_loss(enc, samples)
        assert np.isfinite(loss.item())
        zeta_distant = 0.0
        adj = float(np.linalg.norm(enc.weight.data[6] - enc.weight.data[5]))
        mid = float(np.linalg.norm(enc.weight.data[10] - enc.weight.data[5]))
        expected = (
            abs(adj / 1 - mid / 5) + abs(adj / 1 - zeta_distant) + abs(mid / 5 - zeta_distant)
        )
        assert loss.item() == pytest.approx(expected, rel=1e-6)
