"""Finer-grained Trainer behaviors not covered by the main training tests."""

import numpy as np
import pytest

from repro.core import TGCRN
from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs


def _model(task, seed=0):
    return TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
        rng=np.random.default_rng(seed),
    )


class TestSchedule:
    def test_lr_decays_at_milestones_during_fit(self, tiny_task):
        model = _model(tiny_task)
        config = TrainingConfig(epochs=3, batch_size=64, lr=1e-3,
                                lr_milestones=(2,), lr_gamma=0.1, patience=99)
        trainer = Trainer(config)
        # capture lr trajectory by monkey-wrapping the scheduler step
        trainer.fit(model, tiny_task)
        # After 3 epochs with milestone at 2, one decay applied; verify by
        # rebuilding: the scheduler is internal, so assert indirectly via
        # a fresh run with verbose bookkeeping.
        from repro.nn import Adam, MultiStepLR

        opt = Adam(model.parameters(), lr=1e-3)
        sched = MultiStepLR(opt, (2,), gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1e-3)
        sched.step()
        assert opt.lr == pytest.approx(1e-4)

    def test_history_lengths_consistent(self, tiny_task):
        model = _model(tiny_task)
        history = Trainer(TrainingConfig(epochs=2, batch_size=64)).fit(model, tiny_task)
        assert len(history.train_losses) == len(history.val_maes) == len(history.epoch_seconds)

    def test_best_epoch_recorded(self, tiny_task):
        model = _model(tiny_task)
        history = Trainer(TrainingConfig(epochs=2, batch_size=64)).fit(model, tiny_task)
        assert 0 <= history.best_epoch < history.epochs_run
        assert history.best_val_mae == min(history.val_maes)


class TestPredict:
    def test_custom_batch_size(self, tiny_task):
        model = _model(tiny_task)
        trainer = Trainer(TrainingConfig(batch_size=16))
        a, _ = trainer.predict(model, tiny_task, "val", batch_size=4)
        b, _ = trainer.predict(model, tiny_task, "val", batch_size=64)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_prediction_deterministic_in_eval(self, tiny_task):
        model = _model(tiny_task)
        trainer = Trainer(TrainingConfig())
        a, _ = trainer.predict(model, tiny_task, "val")
        b, _ = trainer.predict(model, tiny_task, "val")
        np.testing.assert_allclose(a, b)

    def test_predict_puts_model_in_eval_mode(self, tiny_task):
        model = _model(tiny_task)
        model.train()
        Trainer(TrainingConfig()).predict(model, tiny_task, "val")
        assert not model.training


class TestValidationDrivesSelection:
    def test_model_with_lowest_val_wins(self, tiny_task):
        """Even if later epochs get worse, the returned weights are from
        the best validation epoch."""
        model = _model(tiny_task)
        config = TrainingConfig(epochs=4, batch_size=64, lr=5e-2, patience=99)
        trainer = Trainer(config)
        history = trainer.fit(model, tiny_task)
        final_val = trainer.validate(model, tiny_task)
        assert final_val == pytest.approx(history.best_val_mae, rel=1e-6)
        assert final_val <= max(history.val_maes) + 1e-9
