"""FC-LSTM: fully-connected LSTM encoder-decoder (Sutskever et al. 2014).

The node dimension is flattened into the feature vector, so the model
captures temporal dependencies only — the paper's reference point for
"no explicit spatial modeling" (and the benchmark of Fig. 8).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, stack
from ..nn import LSTM, Linear, Module


class FCLSTM(Module):
    """Seq2seq LSTM over node-flattened inputs.

    forward(x: (B, P, N, d), time_indices ignored) -> (B, Q, N, d_out).
    """

    def __init__(
        self,
        num_nodes: int,
        in_dim: int,
        out_dim: int,
        horizon: int,
        hidden_dim: int = 64,
        num_layers: int = 2,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.num_nodes = num_nodes
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.horizon = horizon
        self.encoder = LSTM(num_nodes * in_dim, hidden_dim, num_layers, rng=rng)
        self.decoder = LSTM(num_nodes * out_dim, hidden_dim, num_layers, rng=rng)
        self.head = Linear(hidden_dim, num_nodes * out_dim, rng=rng)

    def forward(self, x: Tensor, time_indices: np.ndarray | None = None) -> Tensor:
        batch, history, _, _ = x.shape
        flat = x.reshape(batch, history, self.num_nodes * self.in_dim)
        _, states = self.encoder(flat)
        decoder_input = x[:, history - 1, :, : self.out_dim].reshape(batch, 1, -1)
        outputs = []
        for _ in range(self.horizon):
            out, states = self.decoder(decoder_input, states)
            frame = self.head(out[:, 0, :])
            outputs.append(frame.reshape(batch, self.num_nodes, self.out_dim))
            decoder_input = frame.reshape(batch, 1, -1)
        return stack(outputs, axis=1)
