"""Tests for the GCGRU cell and node-adaptive graph convolution."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, randn, softmax, zeros
from repro.core import GCGRUCell, NodeAdaptiveGraphConv


def _inputs(rng, batch=2, nodes=4, in_dim=3, embed_dim=5):
    x = randn(batch, nodes, in_dim, rng=rng)
    adjacency = softmax(randn(batch, nodes, nodes, rng=rng), axis=-1)
    embed = randn(batch, nodes, embed_dim, rng=rng)
    return x, adjacency, embed


class TestNodeAdaptiveGraphConv:
    def test_shape(self, rng):
        conv = NodeAdaptiveGraphConv(3, 6, embed_dim=5, cheb_k=2, rng=rng)
        x, adjacency, embed = _inputs(rng)
        assert conv(x, adjacency, embed).shape == (2, 4, 6)

    def test_cheb_k_one_ignores_adjacency(self, rng):
        conv = NodeAdaptiveGraphConv(3, 6, embed_dim=5, cheb_k=1, rng=rng)
        x, adjacency, embed = _inputs(rng)
        other = softmax(randn(2, 4, 4, rng=rng), axis=-1)
        np.testing.assert_allclose(
            conv(x, adjacency, embed).data, conv(x, other, embed).data
        )

    def test_node_adaptivity(self, rng):
        """Different node embeddings must produce different outputs for the
        same features — the factorized-weight property."""
        conv = NodeAdaptiveGraphConv(3, 6, embed_dim=5, cheb_k=1, rng=rng)
        x = randn(1, 2, 3, rng=rng)
        x.data[0, 1] = x.data[0, 0]  # identical features at both nodes
        adjacency = Tensor(np.eye(2)[None])
        embed = randn(1, 2, 5, rng=rng)
        out = conv(x, adjacency, embed).data
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_matches_manual_factorization(self, rng):
        """y_n = conv_n · (Ê_n W̃) + Ê_n b̃ computed by hand."""
        conv = NodeAdaptiveGraphConv(2, 3, embed_dim=4, cheb_k=2, rng=rng)
        x, adjacency, embed = _inputs(rng, batch=1, nodes=3, in_dim=2, embed_dim=4)
        out = conv(x, adjacency, embed).data
        features = np.concatenate([x.data, adjacency.data @ x.data], axis=-1)  # (1,3,4)
        for n in range(3):
            w_n = (embed.data[0, n] @ conv.weight_pool.data).reshape(4, 3)
            b_n = embed.data[0, n] @ conv.bias_pool.data
            np.testing.assert_allclose(out[0, n], features[0, n] @ w_n + b_n, rtol=1e-10)

    def test_gradients(self, rng):
        conv = NodeAdaptiveGraphConv(2, 2, embed_dim=3, cheb_k=2, rng=rng)
        x, adjacency, embed = _inputs(rng, batch=1, nodes=3, in_dim=2, embed_dim=3)
        check_gradients(
            lambda: conv(x, adjacency, embed).tanh().sum() * 0.1,
            [conv.weight_pool, conv.bias_pool],
            rtol=1e-3,
        )


class TestGCGRUCell:
    def test_shape(self, rng):
        cell = GCGRUCell(3, 6, embed_dim=5, rng=rng)
        x, adjacency, embed = _inputs(rng)
        h = cell(x, zeros(2, 4, 6), adjacency, embed)
        assert h.shape == (2, 4, 6)

    def test_hidden_bounded(self, rng):
        cell = GCGRUCell(3, 6, embed_dim=5, rng=rng)
        x, adjacency, embed = _inputs(rng)
        h = zeros(2, 4, 6)
        for _ in range(15):
            h = cell(x, h, adjacency, embed)
        assert (np.abs(h.data) <= 1.0 + 1e-9).all()

    def test_identity_update_when_z_zero(self, rng):
        """Forcing the update gate to ~0 must keep the previous hidden."""
        cell = GCGRUCell(2, 3, embed_dim=2, rng=rng)
        cell.gate_conv.weight_pool.data[...] = 0.0
        cell.gate_conv.bias_pool.data[...] = 0.0
        x, adjacency, embed = _inputs(rng, batch=1, nodes=3, in_dim=2, embed_dim=2)
        embed.data[...] = np.abs(embed.data)
        # Bias pool drives gate pre-activation; -20 -> sigmoid ~ 0 (z ~ 0).
        cell.gate_conv.bias_pool.data[...] = -20.0
        h_prev = randn(1, 3, 3, rng=rng)
        h_next = cell(x, h_prev, adjacency, embed)
        np.testing.assert_allclose(h_next.data, h_prev.data, atol=1e-6)

    def test_gradients_full_cell(self, rng):
        cell = GCGRUCell(2, 2, embed_dim=3, rng=rng)
        x, adjacency, embed = _inputs(rng, batch=1, nodes=2, in_dim=2, embed_dim=3)
        h = randn(1, 2, 2, rng=rng, requires_grad=True)
        check_gradients(
            lambda: cell(x, h, adjacency, embed).sum(),
            [h] + cell.parameters(),
            rtol=1e-3,
        )

    def test_spatial_information_flows(self, rng):
        """Perturbing node j's input must change node i's hidden state when
        the adjacency connects them (and not when it doesn't)."""
        cell = GCGRUCell(1, 4, embed_dim=2, rng=rng)
        embed = randn(1, 2, 2, rng=rng)
        h = zeros(1, 2, 4)
        connected = Tensor(np.array([[[0.5, 0.5], [0.5, 0.5]]]))
        isolated = Tensor(np.eye(2)[None])
        x1 = Tensor(np.array([[[1.0], [0.0]]]))
        x2 = Tensor(np.array([[[1.0], [5.0]]]))
        h_conn_1 = cell(x1, h, connected, embed).data[0, 0]
        h_conn_2 = cell(x2, h, connected, embed).data[0, 0]
        assert not np.allclose(h_conn_1, h_conn_2)
        h_iso_1 = cell(x1, h, isolated, embed).data[0, 0]
        h_iso_2 = cell(x2, h, isolated, embed).data[0, 0]
        np.testing.assert_allclose(h_iso_1, h_iso_2, atol=1e-12)
