"""Rolling N-1 fleet reloads: swap, rejection, refusal, reload-under-load."""

import numpy as np
import pytest

from repro.core import TGCRN
from repro.nn import save_checkpoint
from repro.obs import MetricsRegistry
from repro.resilience import Backoff, corrupt_checkpoint
from repro.serve import ForecastFleet
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _factory(sub_task, shard_id, replica_id):
    return TGCRN(
        **default_tgcrn_kwargs(sub_task, hidden_dim=4, node_dim=3, time_dim=3,
                               num_layers=1),
        rng=named_rng(3, f"fleet-{replica_id}"),
    )


def _payload(task, i, **extra):
    j = i % len(task.test)
    return {"window": task.test.inputs[j],
            "time_index": task.test.time_indices[j],
            "id": f"req-{i}", **extra}


@pytest.fixture
def clock():
    return FakeClock(t=50.0)


@pytest.fixture
def fleet(tiny_task, clock):
    return ForecastFleet(
        tiny_task, _factory, num_shards=2, replicas_per_shard=2,
        queue_depth=8, max_batch=4,
        backoff=Backoff(base=0.01, jitter=0.0), clock=clock, slo=False,
        metrics=MetricsRegistry(run="fleet-reload-test"),
    )


@pytest.fixture
def checkpoints(tiny_task, fleet, tmp_path):
    """One fresh-weights checkpoint per shard (distinct from the live models)."""
    paths = {}
    for shard in fleet.shards:
        sub_task = tiny_task.node_subset(shard.nodes)
        candidate = TGCRN(
            **default_tgcrn_kwargs(sub_task, hidden_dim=4, node_dim=3,
                                   time_dim=3, num_layers=1),
            rng=named_rng(3, f"reload-s{shard.shard_id}"),
        )
        path = tmp_path / f"shard{shard.shard_id}.npz"
        save_checkpoint(path, candidate)
        paths[shard.shard_id] = path
    return paths


class TestRollingReload:
    def test_every_replica_swaps_without_breaking_n1(self, fleet, checkpoints):
        versions_before = {r.id: r.server.model_version for r in fleet.replicas}
        records = fleet.rolling_reload(checkpoints)
        assert len(records) == 4
        assert all(r["action"] == "reloaded" for r in records)
        # During each step exactly the sibling stayed available: N-1 held.
        assert all(r["available_during"] >= 1 for r in records)
        for record in records:
            assert record["version_before"] == versions_before[record["replica"]]
            assert record["version_after"] != record["version_before"]
        # Both replicas of a shard converge on the same checkpoint.
        for shard in fleet.shards:
            assert len({r.server.model_version for r in shard.replicas}) == 1
        assert int(fleet.metrics.counter("fleet.reloads").value) == 4

    def test_corrupt_checkpoint_rejected_old_model_keeps_serving(
            self, tiny_task, fleet, clock, checkpoints):
        corrupt_checkpoint(checkpoints[1], mode="truncate")
        versions_before = {r.id: r.server.model_version for r in fleet.replicas}
        records = fleet.rolling_reload(checkpoints)
        by_shard = {0: [], 1: []}
        for record in records:
            by_shard[record["shard"]].append(record)
        assert all(r["action"] == "reloaded" for r in by_shard[0])
        assert all(r["action"] == "rejected" for r in by_shard[1])
        for record in by_shard[1]:
            assert record["version_after"] == versions_before[record["replica"]]
        assert int(fleet.metrics.counter("fleet.reload_rejected").value) == 2
        # The shard with the bad candidate still answers from its (old) model.
        fleet.submit(_payload(tiny_task, 0), now=clock())
        (response,) = fleet.drain(clock())
        assert response.source == "model"

    def test_reload_refused_below_the_n1_floor(self, fleet, checkpoints):
        shard = fleet.shards[0]
        shard.replicas[1].kill()
        versions_before = {r.id: r.server.model_version for r in shard.replicas}
        records = fleet.rolling_reload(checkpoints)
        mine = [r for r in records if r["shard"] == 0]
        by_action = {r["action"]: r for r in mine}
        assert set(by_action) == {"refused", "skipped"}
        refused = by_action["refused"]
        assert refused["replica"] == shard.replicas[0].id
        assert "N-1 floor" in refused["reason"]
        skipped = by_action["skipped"]
        assert skipped["replica"] == shard.replicas[1].id
        # Neither replica of the degraded shard was touched.
        for rep in shard.replicas:
            assert rep.server.model_version == versions_before[rep.id]
        assert int(fleet.metrics.counter("fleet.reload_refused").value) == 1
        # The healthy shard still reloads normally.
        assert all(r["action"] == "reloaded" for r in records if r["shard"] == 1)

    def test_min_available_two_refuses_with_single_redundancy(self, fleet, checkpoints):
        records = fleet.rolling_reload(checkpoints, min_available=2)
        assert records and all(r["action"] == "refused" for r in records)

    def test_reload_under_load_drains_first_and_answers_everything(
            self, tiny_task, fleet, clock, checkpoints):
        ids = [fleet.submit(_payload(tiny_task, i), now=clock()) for i in range(6)]
        # No pump yet: every sub-request is still queued when the rolling
        # reload starts, so each step must drain before swapping.
        records = fleet.rolling_reload(checkpoints, now=clock())
        assert all(r["action"] == "reloaded" for r in records)
        assert all(r["available_during"] >= 1 for r in records)
        responses = fleet.drain(clock())
        assert sorted(r.request_id for r in responses) == sorted(ids)
        assert all(r.prediction is not None and np.all(np.isfinite(r.prediction))
                   for r in responses)

    def test_partial_checkpoint_map_touches_only_named_shards(self, fleet, checkpoints):
        versions_before = {r.id: r.server.model_version for r in fleet.replicas}
        records = fleet.rolling_reload({0: checkpoints[0]})
        assert {r["shard"] for r in records} == {0}
        for rep in fleet.shards[1].replicas:
            assert rep.server.model_version == versions_before[rep.id]
