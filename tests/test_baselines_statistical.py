"""Tests for HA and the tree-boosting baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BoostingForecaster,
    GradientBoosting,
    HistoricalAverage,
    RegressionTree,
    xgboost_model,
)
from repro.baselines.boosting import window_features, window_targets
from repro.data import load_task


class TestHistoricalAverage:
    def test_exact_on_perfectly_periodic_data(self):
        """On noise-free periodic data HA must recover the pattern."""
        task = load_task("hzmetro", num_nodes=6, num_days=10, seed=1)
        # Build a synthetic perfectly periodic dataset through the task's
        # window plumbing by overwriting values with a slot lookup.
        ha = HistoricalAverage(task.steps_per_day)
        ha.fit(task)
        pred = ha.predict_windows(task.train.time_indices, task.history, task.out_dim)
        assert pred.shape == task.train.targets.shape

    def test_predicts_slot_means(self):
        ha = HistoricalAverage(steps_per_day=4)
        import types

        # Minimal fake task: values depend only on slot.
        class _WS:
            pass

        slots = np.arange(32)
        values = (slots % 4).astype(float)[:, None, None].repeat(2, axis=1)
        ws = _WS()
        ws.inputs = np.stack([values[s : s + 2] for s in range(28)])
        ws.targets = np.stack([values[s + 2 : s + 4] for s in range(28)])
        ws.time_indices = np.stack([slots[s : s + 4] for s in range(28)])
        task = types.SimpleNamespace(train=ws, history=2, out_dim=1)
        ha.fit(task)
        pred = ha.predict_windows(ws.time_indices, 2, 1)
        np.testing.assert_allclose(pred[:, :, :, 0], ws.targets[:, :, :, 0], atol=1e-9)

    def test_weekend_weekday_tables_differ(self, tiny_task):
        ha = HistoricalAverage(tiny_task.steps_per_day).fit(tiny_task)
        assert not np.allclose(ha._table[0], ha._table[1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HistoricalAverage(4).predict_windows(np.zeros((1, 4), dtype=int), 2, 1)

    def test_evaluate_contract(self, tiny_task):
        ha = HistoricalAverage(tiny_task.steps_per_day).fit(tiny_task)
        pred, target = ha.evaluate(tiny_task, "test")
        assert pred.shape == target.shape


class TestRegressionTree:
    def test_perfect_split_recovery(self):
        """A single threshold rule must be learned exactly."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = np.where(x[:, 0] <= 0.25, -1.0, 2.0)[:, None]
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(x, y)
        pred = tree.predict(x)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_leaf_is_mean_without_regularization(self):
        x = np.zeros((10, 1))
        y = np.arange(10.0)[:, None]
        tree = RegressionTree(max_depth=1, min_samples_leaf=20).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y.mean())

    def test_regularized_leaf_shrinks(self):
        x = np.zeros((4, 1))
        y = np.ones((4, 1))
        tree = RegressionTree(max_depth=1, min_samples_leaf=10, lam=4.0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), 0.5)  # 4/(4+4)

    def test_multi_output(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(100, 1))
        y = np.stack([np.sign(x[:, 0]), -np.sign(x[:, 0])], axis=1)
        tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(3), np.zeros((3, 1)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))


class TestGradientBoosting:
    def test_reduces_error_over_constant(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-2, 2, size=(300, 3))
        y = (np.sin(x[:, 0]) + 0.5 * x[:, 1])[:, None]
        model = GradientBoosting(num_trees=25, learning_rate=0.2, max_depth=3).fit(x, y)
        residual = np.mean((model.predict(x) - y) ** 2)
        baseline = np.var(y)
        assert residual < 0.2 * baseline

    def test_xgboost_variant_converges(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, size=(300, 3))
        y = (x[:, 0] * x[:, 1])[:, None]
        model = xgboost_model(num_trees=30, learning_rate=0.2).fit(x, y)
        assert np.mean((model.predict(x) - y) ** 2) < 0.5 * np.var(y)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoosting().predict(np.zeros((2, 2)))

    def test_subsample_path(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(size=(100, 2))
        y = x.sum(axis=1, keepdims=True)
        model = GradientBoosting(num_trees=5, subsample=0.5).fit(x, y)
        assert model.predict(x).shape == (100, 1)


class TestTaskAdapters:
    def test_feature_layout(self, tiny_task):
        features = window_features(tiny_task.train, tiny_task.steps_per_day)
        samples = len(tiny_task.train) * tiny_task.num_nodes
        assert features.shape == (samples, tiny_task.history * tiny_task.in_dim + 3)
        # calendar features in range
        assert (np.abs(features[:, -3:-1]) <= 1.0).all()
        assert set(np.unique(features[:, -1])) <= {0.0, 1.0}

    def test_target_layout_roundtrip(self, tiny_task):
        targets = window_targets(tiny_task.train)
        samples, horizon, nodes, dim = tiny_task.train.targets.shape
        back = targets.reshape(samples, nodes, horizon, dim).transpose(0, 2, 1, 3)
        np.testing.assert_allclose(back, tiny_task.train.targets)

    def test_forecaster_beats_global_mean(self, tiny_task):
        model = BoostingForecaster(
            GradientBoosting(num_trees=10, max_depth=3), tiny_task.steps_per_day
        ).fit(tiny_task)
        pred, target = model.evaluate(tiny_task, "test")
        mean_error = np.abs(target - target.mean()).mean()
        model_error = np.abs(target - pred).mean()
        assert model_error < mean_error
