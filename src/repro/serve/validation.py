"""Request validation: reject garbage before any model code runs.

A serving layer is only as robust as its front door.  Every incoming
forecast request is checked against a :class:`RequestSpec` derived from
the task the live model was trained on — schema (required fields
present), shape (exactly ``(history, num_nodes, in_dim)``), dtype
(numeric, castable to float64), finiteness (no NaN/Inf smuggled into the
window), and scale drift (scaled inputs should live near the training
distribution; a caller sending *unscaled* raw counts produces magnitudes
hundreds of sigma out and is rejected rather than silently forecast).
Failures raise a structured :class:`InvalidRequestError` carrying a
machine-readable ``code`` — the 4xx of this layer, never a traceback
from deep inside :mod:`repro.autodiff`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

_REQUEST_IDS = itertools.count(1)


class InvalidRequestError(ValueError):
    """A request failed validation before reaching the model (a "4xx").

    ``code`` is machine-readable (``schema`` | ``shape`` | ``dtype`` |
    ``non_finite`` | ``scale_drift`` | ``time_index``); ``detail`` is the
    human-readable reason.
    """

    def __init__(self, code: str, detail: str):
        self.code = code
        self.detail = detail
        super().__init__(f"invalid request [{code}]: {detail}")


@dataclass(frozen=True)
class RequestSpec:
    """The contract incoming windows must satisfy (derived from a task).

    ``scale_limit`` is the drift envelope: the largest |value| seen in
    the (scaled) training inputs times ``drift_factor``.  Scaled data is
    ~N(0, 1), so a request whose window blows past this is almost
    certainly unscaled or from a shifted distribution.
    """

    history: int
    horizon: int
    num_nodes: int
    in_dim: int
    scale_limit: float | None = None

    @classmethod
    def for_task(cls, task, drift_factor: float = 10.0) -> "RequestSpec":
        limit = None
        if drift_factor is not None:
            observed = float(np.abs(task.train.inputs).max())
            limit = float(drift_factor * max(observed, 1.0))
        return cls(
            history=task.history,
            horizon=task.horizon,
            num_nodes=task.num_nodes,
            in_dim=task.in_dim,
            scale_limit=limit,
        )

    @property
    def window_shape(self) -> tuple[int, int, int]:
        return (self.history, self.num_nodes, self.in_dim)

    @property
    def span(self) -> int:
        """Time indices a request must cover: history + horizon frames."""
        return self.history + self.horizon


@dataclass
class ForecastRequest:
    """A validated, admitted unit of work.

    ``deadline`` is an absolute timestamp on the service clock
    (``None`` = no deadline); requests whose deadline passes while
    queued are shed, not served.
    """

    window: np.ndarray       # (history, num_nodes, in_dim), float64, scaled
    time_index: np.ndarray   # (history + horizon,) int64, increasing
    request_id: str = ""
    deadline: float | None = None
    received_at: float = 0.0
    metadata: dict = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


def _as_float_array(value, name: str) -> np.ndarray:
    try:
        arr = np.asarray(value)
    except Exception as exc:  # ragged nested sequences, exotic objects
        raise InvalidRequestError("schema", f"{name} is not array-like ({exc})") from exc
    if arr.dtype == object or arr.dtype.kind in "USV":
        raise InvalidRequestError(
            "dtype", f"{name} has non-numeric dtype {arr.dtype}; expected float-castable"
        )
    try:
        return arr.astype(np.float64, copy=False)
    except (TypeError, ValueError) as exc:
        raise InvalidRequestError("dtype", f"{name} not castable to float64 ({exc})") from exc


def validate_request(payload, spec: RequestSpec, now: float = 0.0) -> ForecastRequest:
    """Check ``payload`` against ``spec``; return an admitted request.

    ``payload`` is a mapping with required keys ``window`` and
    ``time_index`` plus optional ``id``, ``deadline``, ``metadata``.
    Raises :class:`InvalidRequestError` (never a bare numpy/attribute
    error) on any violation.
    """
    if not isinstance(payload, dict):
        raise InvalidRequestError(
            "schema", f"payload must be a mapping, got {type(payload).__name__}"
        )
    for key in ("window", "time_index"):
        if key not in payload:
            raise InvalidRequestError("schema", f"missing required field {key!r}")
    unknown = set(payload) - {"window", "time_index", "id", "deadline", "metadata"}
    if unknown:
        raise InvalidRequestError("schema", f"unknown field(s) {sorted(unknown)}")

    window = _as_float_array(payload["window"], "window")
    if window.shape != spec.window_shape:
        raise InvalidRequestError(
            "shape",
            f"window shape {window.shape} != expected {spec.window_shape} "
            "(history, num_nodes, in_dim)",
        )
    if not np.all(np.isfinite(window)):
        bad = int(window.size - np.count_nonzero(np.isfinite(window)))
        raise InvalidRequestError("non_finite", f"window contains {bad} non-finite value(s)")
    if spec.scale_limit is not None:
        worst = float(np.abs(window).max())
        if worst > spec.scale_limit:
            raise InvalidRequestError(
                "scale_drift",
                f"window magnitude {worst:.3g} exceeds the scaled-input envelope "
                f"{spec.scale_limit:.3g} — is the caller sending unscaled data?",
            )

    time_index = _as_float_array(payload["time_index"], "time_index")
    if time_index.shape != (spec.span,):
        raise InvalidRequestError(
            "time_index",
            f"time_index shape {time_index.shape} != expected ({spec.span},) "
            "(history + horizon frames)",
        )
    if not np.all(np.isfinite(time_index)) or np.any(time_index != np.round(time_index)):
        raise InvalidRequestError("time_index", "time_index must be finite integers")
    time_index = time_index.astype(np.int64)
    if np.any(time_index < 0) or np.any(np.diff(time_index) <= 0):
        raise InvalidRequestError(
            "time_index", "time_index must be non-negative and strictly increasing"
        )

    deadline = payload.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError("schema", f"deadline not a number ({exc})") from exc

    request_id = str(payload.get("id") or f"req-{next(_REQUEST_IDS)}")
    metadata = payload.get("metadata") or {}
    if not isinstance(metadata, dict):
        raise InvalidRequestError("schema", "metadata must be a mapping")
    return ForecastRequest(
        window=window,
        time_index=time_index,
        request_id=request_id,
        deadline=deadline,
        received_at=now,
        metadata=metadata,
    )
