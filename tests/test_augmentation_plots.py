"""Tests for window augmentation and ASCII plotting."""

import numpy as np
import pytest

from repro.data import AugmentationConfig, WindowAugmenter
from repro.viz import line_plot, sparkline, training_curve


def _batch(rng, batch=6, history=8, nodes=3, dim=2):
    return rng.normal(size=(batch, history, nodes, dim))


class TestAugmenter:
    def test_disabled_is_identity(self, rng):
        augmenter = WindowAugmenter(AugmentationConfig(), rng)
        x = _batch(rng)
        np.testing.assert_allclose(augmenter(x), x)

    def test_jitter_changes_values_preserving_mean(self, rng):
        augmenter = WindowAugmenter(AugmentationConfig(jitter_std=0.1), rng)
        x = np.zeros((20, 10, 4, 2))
        out = augmenter(x)
        assert not np.allclose(out, x)
        assert abs(out.mean()) < 0.02

    def test_scaling_is_per_node(self, rng):
        augmenter = WindowAugmenter(AugmentationConfig(scale_std=0.5), rng)
        x = np.ones((2, 5, 3, 2))
        out = augmenter(x)
        # within one (sample, node) the factor is constant over time/features
        for b in range(2):
            for n in range(3):
                block = out[b, :, n, :]
                np.testing.assert_allclose(block, block[0, 0])
        # but differs across nodes
        assert not np.allclose(out[0, 0, 0], out[0, 0, 1])

    def test_crop_blanks_leading_frames_only(self):
        rng = np.random.default_rng(0)
        augmenter = WindowAugmenter(
            AugmentationConfig(crop_probability=1.0, min_crop_fraction=0.5), rng
        )
        x = np.ones((10, 8, 2, 1))
        out = augmenter(x)
        assert not np.allclose(out, x)  # some prefix was blanked
        for b in range(10):
            zero_mask = (out[b] == 0).all(axis=(1, 2))
            # zeros, if any, form a prefix
            if zero_mask.any():
                first_kept = int(np.argmin(zero_mask))
                assert zero_mask[:first_kept].all()
                assert not zero_mask[first_kept:].any()
                assert (~zero_mask).sum() >= 4  # min_crop_fraction * history

    def test_crop_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        augmenter = WindowAugmenter(AugmentationConfig(crop_probability=1.0), rng)
        x = np.ones((4, 8, 2, 1))
        augmenter(x)
        np.testing.assert_allclose(x, 1.0)

    def test_invalid_crop_fraction(self, rng):
        with pytest.raises(ValueError):
            WindowAugmenter(AugmentationConfig(min_crop_fraction=0.0), rng)

    def test_trainer_accepts_augmenter(self, tiny_task):
        from repro.core import TGCRN
        from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs

        model = TGCRN(
            **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
            rng=np.random.default_rng(0),
        )
        augmenter = WindowAugmenter(
            AugmentationConfig(jitter_std=0.05), np.random.default_rng(1)
        )
        history = Trainer(TrainingConfig(epochs=1, batch_size=64)).fit(
            model, tiny_task, augmenter=augmenter
        )
        assert history.epochs_run == 1


class TestPlots:
    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone(self):
        bars = sparkline([0, 1, 2, 3])
        assert bars == "".join(sorted(bars))

    def test_line_plot_contains_legend_and_bounds(self):
        out = line_plot({"loss": [3.0, 2.0, 1.0]}, height=5, width=20, title="t")
        assert "t" in out.splitlines()[0]
        assert "loss" in out
        assert "3" in out and "1" in out

    def test_line_plot_empty(self):
        assert line_plot({}) == "(no data)"

    def test_line_plot_single_point_series(self):
        out = line_plot({"m": [2.0]}, height=4, width=10)
        assert "m" in out

    def test_training_curve(self):
        out = training_curve([1.0, 0.5], [4.0, 3.0])
        assert "train loss" in out and "val MAE" in out
