"""Graceful inference degradation: invalid outputs fall back, loudly."""

import json

import numpy as np
import pytest

from repro.data import load_task
from repro.autodiff import Tensor
from repro.obs import RunLogger
from repro.resilience import (
    SafePrediction,
    output_bound,
    safe_predict,
    validate_input,
    validate_output,
)
from repro.training import Trainer, TrainingConfig

SEED = 7


def _task():
    return load_task("hzmetro", num_nodes=4, num_days=4, seed=SEED)


class _ConstantModel:
    """Trainer.predict-compatible stub emitting a fixed fill value."""

    def __init__(self, task, fill):
        self.task = task
        self.fill = fill

    def eval(self):
        pass

    def __call__(self, x, t):
        batch = x.data.shape[0]
        shape = (batch, self.task.horizon, self.task.num_nodes, self.task.out_dim)
        return Tensor(np.full(shape, self.fill))


class TestValidateOutput:
    def test_clean_output_passes(self):
        assert validate_output(np.ones((2, 3)), bound=10.0) is None

    def test_empty_output_fails(self):
        assert validate_output(np.empty((0, 3))) == "empty output"

    def test_nonfinite_output_fails_with_count(self):
        bad = np.ones(10)
        bad[3] = np.nan
        bad[7] = np.inf
        assert validate_output(bad) == "2 non-finite value(s)"

    def test_out_of_bound_output_fails(self):
        reason = validate_output(np.full(4, 1e30), bound=100.0)
        assert reason is not None and "sanity bound" in reason

    def test_no_bound_means_only_finiteness(self):
        assert validate_output(np.full(4, 1e30), bound=None) is None

    def test_bound_exactly_equal_to_worst_magnitude_passes(self):
        # The envelope is inclusive: only a strict exceedance fails.
        assert validate_output(np.array([3.0, -7.5]), bound=7.5) is None
        assert validate_output(np.array([3.0, -7.5000001]), bound=7.5) is not None

    def test_all_nan_array_fails_with_full_count(self):
        reason = validate_output(np.full((2, 3), np.nan))
        assert reason == "6 non-finite value(s)"

    def test_empty_batch_fails_before_bound_check(self):
        # Empty output short-circuits: no NaN/bound math on zero elements.
        assert validate_output(np.empty((0, 4, 2)), bound=1.0) == "empty output"

    def test_zero_bound_rejects_everything_nonzero(self):
        assert validate_output(np.array([0.0]), bound=0.0) is None
        assert validate_output(np.array([1e-12]), bound=0.0) is not None


class TestValidateInput:
    def test_clean_input_passes(self):
        assert validate_input(np.zeros((4, 3, 5, 2)), num_nodes=5) is None

    def test_non_finite_input_fails_with_count(self):
        bad = np.zeros((2, 3))
        bad[0, 0] = np.nan
        bad[1, 2] = -np.inf
        assert validate_input(bad) == "2 non-finite input value(s)"

    def test_node_count_mismatch(self):
        reason = validate_input(np.zeros((4, 3, 5, 2)), num_nodes=7)
        assert reason is not None and "num_nodes=7" in reason

    def test_empty_input(self):
        assert validate_input(np.empty((0, 3))) == "empty input"

    def test_non_numeric_dtype(self):
        reason = validate_input(np.array(["a", "b"], dtype=object))
        assert reason is not None and "dtype" in reason


class TestOutputBound:
    def test_bound_scales_with_training_magnitude(self):
        task = _task()
        reference = float(np.abs(task.inverse_targets(task.train.targets)).max())
        assert output_bound(task, factor=10.0) == pytest.approx(10.0 * max(reference, 1.0))
        assert output_bound(task, factor=2.0) < output_bound(task, factor=10.0)

    def test_reference_magnitude_cached_per_task(self):
        task = _task()
        first = output_bound(task, factor=10.0)
        assert task._output_bound_ref == pytest.approx(first / 10.0)
        # The cached scalar is reused: even a poisoned training split no
        # longer changes the bound for this task object.
        task.train.targets[...] = 1e9
        assert output_bound(task, factor=10.0) == pytest.approx(first)
        assert output_bound(task, factor=3.0) == pytest.approx(first * 0.3)

    def test_distinct_tasks_do_not_share_cache(self):
        a, b = _task(), _task()
        output_bound(a)
        assert not hasattr(b, "_output_bound_ref")


class TestSafePredict:
    def test_valid_output_is_passed_through(self):
        task = _task()
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        result = safe_predict(trainer, _ConstantModel(task, 0.0), task)
        assert isinstance(result, SafePrediction)
        assert not result.degraded
        assert result.source == "model"
        assert result.prediction.shape == result.target.shape

    @pytest.mark.parametrize("fill", [np.nan, 1e30])
    def test_invalid_output_falls_back_to_historical_average(self, fill, tmp_path):
        task = _task()
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        log = tmp_path / "run.jsonl"
        logger = RunLogger(path=str(log), console=False)
        with pytest.warns(UserWarning, match="historical-average"):
            result = safe_predict(trainer, _ConstantModel(task, fill), task, logger=logger)
        logger.close()

        assert result.degraded
        assert result.source == "historical_average"
        assert np.all(np.isfinite(result.prediction))
        assert result.prediction.shape == result.target.shape

        records = [json.loads(line) for line in log.open()]
        degraded = [r for r in records if r.get("event") == "degraded_inference"]
        assert len(degraded) == 1
        assert degraded[0]["fallback"] == "historical_average"

    def test_fallback_matches_historical_average_baseline(self):
        from repro.baselines.historical import HistoricalAverage

        task = _task()
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        with pytest.warns(UserWarning):
            result = safe_predict(trainer, _ConstantModel(task, np.nan), task)
        expected, _ = HistoricalAverage.for_task(task).evaluate(task, "test")
        np.testing.assert_allclose(result.prediction, expected)

    def test_degradation_reason_is_reported(self):
        task = _task()
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        with pytest.warns(UserWarning):
            result = safe_predict(trainer, _ConstantModel(task, np.inf), task)
        assert "non-finite" in result.reason

    def test_non_finite_inputs_degrade_before_the_model_runs(self):
        task = _task()
        task.test.inputs[0, 0, 0, 0] = np.nan

        class _Exploder(_ConstantModel):
            def __call__(self, x, t):  # pragma: no cover - must never run
                raise AssertionError("model ran on garbage input")

        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        with pytest.warns(UserWarning, match="historical-average"):
            result = safe_predict(trainer, _Exploder(task, 0.0), task)
        assert result.degraded and result.source == "historical_average"
        assert "invalid input" in result.reason and "non-finite" in result.reason

    def test_node_count_mismatch_degrades_gracefully(self):
        task = _task()
        model = _ConstantModel(task, 0.0)
        model.num_nodes = task.num_nodes + 3  # checkpoint for another graph
        trainer = Trainer(TrainingConfig(epochs=1, batch_size=8, seed=SEED))
        with pytest.warns(UserWarning, match="historical-average"):
            result = safe_predict(trainer, model, task)
        assert result.degraded
        assert "num_nodes" in result.reason
