"""Tests for scheduled-sampling decay and exogenous-feature forecasting."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.core import TGCRN
from repro.training import Trainer, TrainingConfig, default_tgcrn_kwargs


class TestSamplingDecay:
    def test_probability_decays_monotonically(self):
        config = TrainingConfig(scheduled_sampling_decay=5.0)
        probs = [config.sampling_probability(e) for e in range(10)]
        assert all(0 <= p <= 1 for p in probs)
        assert probs == sorted(probs, reverse=True)
        assert probs[0] > 0.7

    def test_none_when_disabled(self):
        assert TrainingConfig().sampling_probability(0) is None

    def test_trainer_updates_model_probability(self, tiny_task):
        model = TGCRN(
            **default_tgcrn_kwargs(tiny_task, hidden_dim=8, node_dim=4, time_dim=4, num_layers=1),
            scheduled_sampling=1.0,
            rng=np.random.default_rng(0),
        )
        config = TrainingConfig(epochs=2, batch_size=64, scheduled_sampling_decay=3.0)
        Trainer(config).fit(model, tiny_task)
        # After epoch 1 the trainer should have lowered the probability.
        assert model.scheduled_sampling == pytest.approx(config.sampling_probability(1))
        assert model.scheduled_sampling < 1.0


class TestExogenousFeatures:
    """in_dim > out_dim: forecast flows from flows + extra covariates."""

    def _model(self, rng):
        return TGCRN(num_nodes=4, in_dim=3, out_dim=1, horizon=2, hidden_dim=6,
                     num_layers=1, node_dim=4, time_dim=4, steps_per_day=24, rng=rng)

    def test_shapes(self, rng):
        model = self._model(rng)
        x = randn(2, 4, 4, 3, rng=rng)
        t = np.arange(6)[None, :].repeat(2, axis=0)
        assert model(x, t).shape == (2, 2, 4, 1)

    def test_covariates_affect_forecast(self, rng):
        model = self._model(rng)
        x = randn(1, 4, 4, 3, rng=rng)
        t = np.arange(6)[None, :]
        base = model(x, t).data
        perturbed = Tensor(np.array(x.data, copy=True))
        perturbed.data[..., 2] += 1.0  # only the exogenous channel
        assert not np.allclose(model(perturbed, t).data, base)

    def test_decoder_consumes_only_target_channels(self, rng):
        """The decoder feeds back its own out_dim-sized predictions, so
        the cell input dims must match — a pure shape contract, but one a
        refactor of the autoregressive loop breaks first."""
        model = self._model(rng)
        assert model.decoder_cells[0].in_dim == 1
        assert model.encoder_cells[0].in_dim == 3

    def test_training_with_exogenous_runs(self, rng):
        from repro.autodiff import mae_loss
        from repro.nn import Adam

        model = self._model(rng)
        x = randn(4, 4, 4, 3, rng=rng)
        t = np.arange(6)[None, :].repeat(4, axis=0)
        y = Tensor(np.zeros((4, 2, 4, 1)))
        opt = Adam(model.parameters(), lr=1e-2)
        first = last = None
        for _ in range(8):
            opt.zero_grad()
            loss = mae_loss(model(x, t), y)
            loss.backward()
            opt.step()
            first = first or loss.item()
            last = loss.item()
        assert last < first
