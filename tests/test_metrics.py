"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import evaluate, horizon_report, mae, mape, mse, pcc, rmse

_finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestHandValues:
    def test_mae(self):
        assert mae(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(1.5)

    def test_mse_rmse(self):
        pred, target = np.array([3.0, 0.0]), np.array([0.0, 4.0])
        assert mse(pred, target) == pytest.approx(12.5)
        assert rmse(pred, target) == pytest.approx(np.sqrt(12.5))

    def test_mape_percent(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)

    def test_mape_masks_small_targets(self):
        pred = np.array([5.0, 100.0])
        target = np.array([0.1, 100.0])  # first entry below the threshold
        assert mape(pred, target, threshold=1.0) == pytest.approx(0.0)

    def test_mape_all_masked(self):
        assert mape(np.array([1.0]), np.array([0.0])) == 0.0

    def test_pcc_perfect(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pcc(2 * x + 5, x) == pytest.approx(1.0)
        assert pcc(-x, x) == pytest.approx(-1.0)

    def test_pcc_constant_input(self):
        assert pcc(np.ones(5), np.arange(5.0)) == 0.0


class TestEvaluate:
    def test_report_consistency(self, rng):
        pred = rng.normal(size=(10, 4))
        target = rng.normal(size=(10, 4))
        report = evaluate(pred, target)
        assert report.rmse == pytest.approx(np.sqrt(report.mse))
        assert set(report.as_dict()) == {"MAE", "MSE", "RMSE", "MAPE", "PCC"}
        assert "MAE" in str(report)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate(np.zeros(3), np.zeros(4))

    def test_horizon_report(self, rng):
        pred = rng.normal(size=(8, 4, 3, 2))
        target = rng.normal(size=(8, 4, 3, 2))
        reports = horizon_report(pred, target)
        assert len(reports) == 4
        np.testing.assert_allclose(reports[2].mae, mae(pred[:, 2], target[:, 2]))

    def test_horizon_report_needs_2d(self):
        with pytest.raises(ValueError):
            horizon_report(np.zeros(3), np.zeros(3))


@given(arrays(np.float64, (12,), elements=_finite))
@settings(max_examples=40, deadline=None)
def test_mae_zero_iff_equal(a):
    assert mae(a, a.copy()) == 0.0


@given(arrays(np.float64, (12,), elements=_finite), st.floats(min_value=0.1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_mae_scales_linearly(a, scale):
    shifted = a + scale
    assert mae(shifted, a) == pytest.approx(scale, rel=1e-9)


@given(arrays(np.float64, (20,), elements=_finite))
@settings(max_examples=40, deadline=None)
def test_rmse_at_least_mae(a):
    rng = np.random.default_rng(0)
    b = a + rng.normal(size=a.shape)
    assert rmse(b, a) >= mae(b, a) - 1e-12


@given(
    arrays(np.float64, (20,), elements=_finite),
    st.floats(min_value=0.5, max_value=3),
    st.floats(min_value=-10, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_pcc_invariant_to_affine_transforms(a, scale, shift):
    rng = np.random.default_rng(1)
    b = a + rng.normal(size=a.shape)
    base = pcc(b, a)
    transformed = pcc(scale * b + shift, a)
    assert transformed == pytest.approx(base, abs=1e-8)
