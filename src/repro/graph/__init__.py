"""Graph substrate: normalizations, pre-defined builders, poly supports."""

from .adjacency import (
    normalize,
    random_walk,
    random_walk_np,
    row_softmax,
    sym_laplacian,
    sym_laplacian_np,
)
from .builders import (
    correlation_graph,
    distance_graph,
    graph_diameter,
    knn_graph,
    line_graph,
    ring_line_edges,
)
from .cheb import chebyshev_supports, diffusion_supports
from .partition import NodePartition, cut_weight, learned_adjacency, partition_nodes

__all__ = [
    "NodePartition",
    "chebyshev_supports",
    "cut_weight",
    "correlation_graph",
    "diffusion_supports",
    "distance_graph",
    "graph_diameter",
    "knn_graph",
    "learned_adjacency",
    "line_graph",
    "normalize",
    "partition_nodes",
    "random_walk",
    "random_walk_np",
    "ring_line_edges",
    "row_softmax",
    "sym_laplacian",
    "sym_laplacian_np",
]
