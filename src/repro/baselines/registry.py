"""Baseline registry: build any of the paper's thirteen comparison
methods from a :class:`~repro.data.datasets.ForecastingTask`.

Neural models share the ``forward(x, time_indices)`` contract and train
through :class:`~repro.training.trainer.Trainer`; the statistical models
(``ha``, ``gbdt``, ``xgboost``) expose ``fit(task)`` /
``evaluate(task, split)`` instead (see ``training.experiment`` which
handles both).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.datasets import ForecastingTask
from ..graph.builders import correlation_graph, distance_graph, line_graph
from .agcrn import AGCRN
from .boosting import BoostingForecaster, GradientBoosting, xgboost_model
from .ccrnn import CCRNN
from .dcrnn import DCRNN
from .esg import ESG
from .fclstm import FCLSTM
from .gts import GTS
from .gwnet import GraphWaveNet
from .historical import HistoricalAverage
from .mtgnn import MTGNN
from .pvcgn import PVCGN
from .transformers import Crossformer, Informer

#: Baselines trained with gradient descent (Trainer) vs fitted directly.
NEURAL_BASELINES = (
    "fclstm", "informer", "crossformer", "dcrnn", "gwnet",
    "agcrn", "pvcgn", "ccrnn", "gts", "esg", "mtgnn",
)
STATISTICAL_BASELINES = ("ha", "gbdt", "xgboost")
ALL_BASELINES = STATISTICAL_BASELINES + NEURAL_BASELINES


def _train_series(task: ForecastingTask) -> np.ndarray:
    """Scaled training-range series (T_train, N, d) for graph builders."""
    # Reconstruct from the train windows' first frames plus the last window.
    inputs = task.train.inputs
    frames = [inputs[i, 0] for i in range(len(task.train))]
    frames.extend(inputs[-1, 1:])
    return np.stack(frames)


def build_baseline(
    name: str,
    task: ForecastingTask,
    hidden_dim: int = 32,
    num_layers: int = 2,
    seed: int = 0,
):
    """Instantiate a baseline sized for the given task.

    ``hidden_dim``/``num_layers`` default to CPU-friendly values; pass 64/2
    to match the paper's capacity.
    """
    rng = np.random.default_rng(seed)
    common = dict(
        in_dim=task.in_dim,
        out_dim=task.out_dim,
        horizon=task.horizon,
    )
    if name == "ha":
        return HistoricalAverage(task.steps_per_day).fit(task)
    if name == "gbdt":
        return BoostingForecaster(GradientBoosting(seed=seed), task.steps_per_day).fit(task)
    if name == "xgboost":
        return BoostingForecaster(xgboost_model(seed=seed), task.steps_per_day).fit(task)
    if name == "fclstm":
        return FCLSTM(task.num_nodes, hidden_dim=hidden_dim, num_layers=num_layers, rng=rng, **common)
    if name == "informer":
        return Informer(task.num_nodes, model_dim=2 * hidden_dim, rng=rng, **common)
    if name == "crossformer":
        return Crossformer(task.num_nodes, model_dim=hidden_dim, rng=rng, **common)
    if name == "dcrnn":
        adjacency = distance_graph(task.dataset.coordinates)
        return DCRNN(adjacency, hidden_dim=hidden_dim, num_layers=num_layers, rng=rng, **common)
    if name == "gwnet":
        return GraphWaveNet(task.num_nodes, channels=hidden_dim, rng=rng, **common)
    if name == "agcrn":
        return AGCRN(task.num_nodes, hidden_dim=hidden_dim, num_layers=num_layers, rng=rng, **common)
    if name == "pvcgn":
        series = _train_series(task)
        graphs = [
            line_graph(task.dataset.line_edges, task.num_nodes),
            correlation_graph(series[..., 0]),
            distance_graph(task.dataset.coordinates),
        ]
        return PVCGN(graphs, hidden_dim=hidden_dim, num_layers=num_layers, rng=rng, **common)
    if name == "ccrnn":
        return CCRNN(task.num_nodes, hidden_dim=hidden_dim, num_layers=num_layers, rng=rng, **common)
    if name == "gts":
        features = GTS.summarize_series(_train_series(task))
        return GTS(features, hidden_dim=hidden_dim, rng=rng, **common)
    if name == "esg":
        return ESG(task.num_nodes, hidden_dim=hidden_dim, rng=rng, **common)
    if name == "mtgnn":
        return MTGNN(task.num_nodes, channels=hidden_dim, rng=rng, **common)
    raise ValueError(f"unknown baseline {name!r}; choose from {ALL_BASELINES}")
