"""Command-line interface: train, evaluate, compare, inspect, profile,
verify, chaos, serve, serve-fleet, bench-serve, obs-report.

Usage::

    python -m repro.cli train --dataset hzmetro --model tgcrn --epochs 10
    python -m repro.cli train --checkpoint run.npz --resume   # crash recovery
    python -m repro.cli compare --dataset hzmetro --models ha,agcrn,tgcrn
    python -m repro.cli inspect --dataset hzmetro
    python -m repro.cli evaluate --dataset hzmetro --checkpoint model.npz
    python -m repro.cli profile --dataset hzmetro --epochs 1   # hot-op table
    python -m repro.cli verify              # correctness harness outside pytest
    python -m repro.cli chaos               # fault-injection recovery smoke
    python -m repro.cli serve               # serving-layer containment smoke
    python -m repro.cli serve-fleet         # sharded-fleet chaos smoke
    python -m repro.cli bench-serve         # serving throughput/latency bench
    python -m repro.cli bench-serve --fleet # fleet load ramp (max QPS under SLO)
    python -m repro.cli obs-report --spans spans.jsonl   # span-tree analysis

Every command accepts ``--nodes/--days/--seed`` to control the synthetic
dataset scale, so quick experiments stay quick.  ``--quiet`` silences the
console (benchmark mode); ``--log-jsonl PATH`` records structured
per-epoch run logs; ``--trace`` profiles autodiff ops; ``--spans-jsonl
PATH`` records causal span trees (docs/observability.md).  ``train``
takes ``--checkpoint/--resume/--guard`` for fault-tolerant runs
(docs/resilience.md).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

from .baselines.registry import ALL_BASELINES
from .core import TGCRN
from .core.variants import VARIANTS
from .data import load_task
from .data.datasets import SPECS
from .nn.serialization import load_checkpoint, save_checkpoint
from .obs import Console, trace
from .training import Trainer, TrainingConfig, default_tgcrn_kwargs, run_experiment
from .training.analysis import horizon_curve_text, improvement_table
from .viz import render_heatmap, side_by_side


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=sorted(SPECS), default="hzmetro")
    parser.add_argument("--nodes", type=int, default=None, help="override node count")
    parser.add_argument("--days", type=int, default=None, help="override calendar length")
    parser.add_argument("--size", choices=("small", "paper"), default="small")
    parser.add_argument("--seed", type=int, default=0)


def _add_training_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--layers", type=int, default=1)
    parser.add_argument("--node-dim", type=int, default=8)
    parser.add_argument("--time-dim", type=int, default=8)
    parser.add_argument("--lambda-time", type=float, default=0.1)
    parser.add_argument("--compile", action="store_true",
                        help="capture each training-step signature once, then "
                             "replay the recorded plan with precompiled kernels "
                             "(bitwise-identical to eager; docs/engine.md)")


def _add_obs_args(parser: argparse.ArgumentParser, tracing: bool = False) -> None:
    parser.add_argument("--quiet", action="store_true",
                        help="suppress console chatter (for benchmark scripts)")
    parser.add_argument("--log-jsonl", default=None, metavar="PATH",
                        help="write structured per-epoch run records (JSONL)")
    parser.add_argument("--spans-jsonl", default=None, metavar="PATH",
                        help="record causal span trees (request/epoch/step) "
                             "to a JSONL file (docs/observability.md)")
    if tracing:
        parser.add_argument("--trace", action="store_true",
                            help="profile autodiff ops and print a hot-op table")
        parser.add_argument("--trace-out", default="trace.json", metavar="PATH",
                            help="Chrome-trace JSON destination (with --trace)")


def _load(args) -> "ForecastingTask":
    return load_task(args.dataset, size=args.size, seed=args.seed,
                     num_nodes=args.nodes, num_days=args.days)


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="write an atomic full-training-state checkpoint "
                             "(.npz) for crash recovery (docs/resilience.md)")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="epochs between checkpoints (default 1)")
    parser.add_argument("--resume", action="store_true",
                        help="resume bit-compatibly from --checkpoint if it exists")
    parser.add_argument("--guard", action="store_true",
                        help="wrap training in the divergence sentinel: roll back "
                             "to the last checkpoint with lr backoff on NaN/Inf "
                             "loss or exploding gradients")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="recovery attempts before a structured failure (with --guard)")
    parser.add_argument("--lr-backoff", type=float, default=0.5,
                        help="lr multiplier applied on each rollback (with --guard)")


def _config(args) -> TrainingConfig:
    return TrainingConfig(
        epochs=args.epochs, batch_size=args.batch_size,
        lambda_time=args.lambda_time, seed=args.seed,
        verbose=not getattr(args, "quiet", False),
        log_path=getattr(args, "log_jsonl", None),
        checkpoint_path=getattr(args, "checkpoint", None),
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume=getattr(args, "resume", False),
        compile=getattr(args, "compile", False),
    )


def _console(args) -> Console:
    return Console(enabled=not getattr(args, "quiet", False))


@contextlib.contextmanager
def _maybe_spans(args):
    """Install a SpanCollector for the block when ``--spans-jsonl`` is set."""
    path = getattr(args, "spans_jsonl", None)
    if not path:
        yield None
        return
    from .obs import SpanCollector

    collector = SpanCollector(path=path).install()
    try:
        yield collector
    finally:
        collector.close()


def _run_traced(args, fn):
    """Run ``fn()`` under the op tracer when ``--trace`` is set.

    Prints the hot-op table and writes the Chrome trace afterwards.
    Span collection (``--spans-jsonl``) composes: span events are merged
    into the same Chrome trace on the shared perf_counter timebase.
    """
    console = _console(args)
    if not getattr(args, "trace", False):
        with _maybe_spans(args) as collector:
            result = fn()
        if collector is not None:
            console.print(f"spans written to {args.spans_jsonl} "
                          f"({len(collector.records)} spans)")
        return result
    with trace() as tracer:
        with _maybe_spans(args) as collector:
            result = fn()
    console.print()
    console.print(tracer.table())
    extra = (collector.chrome_events(origin=tracer.origin)
             if collector is not None else None)
    path = tracer.export_chrome_trace(args.trace_out, extra_events=extra)
    merged = f" + {len(extra)} span(s)" if extra else ""
    console.print(f"chrome trace written to {path} "
                  f"({len(tracer.events)} events{merged}; open in chrome://tracing)")
    return result


def _trainer(args) -> "Trainer":
    """Build the trainer from CLI args: guarded when ``--guard`` is set."""
    config = _config(args)
    if getattr(args, "guard", False):
        from .resilience import DivergenceSentinel, GuardedTrainer

        if config.checkpoint_path is None:
            raise SystemExit("--guard needs --checkpoint PATH (rollback target)")
        return GuardedTrainer(
            Trainer(config), sentinel=DivergenceSentinel(),
            max_retries=args.max_retries, lr_backoff=args.lr_backoff,
        )
    return Trainer(config)


def _train_once(args, task, keep_model: bool = True, trainer=None):
    """Shared train/profile path: run one experiment from CLI args."""
    trainer = trainer if trainer is not None else _trainer(args)
    if args.model == "tgcrn" or args.model in VARIANTS:
        return run_experiment(
            args.model, task, hidden_dim=args.hidden,
            model_kwargs=dict(node_dim=args.node_dim, time_dim=args.time_dim,
                              num_layers=args.layers),
            keep_model=keep_model, trainer=trainer,
        )
    return run_experiment(
        args.model, task, hidden_dim=args.hidden,
        num_layers=args.layers, keep_model=keep_model, trainer=trainer,
    )


def cmd_train(args) -> int:
    console = _console(args)
    task = _load(args)
    trainer = _trainer(args)
    result = _run_traced(args, lambda: _train_once(args, task, trainer=trainer))
    console.print(f"\n{args.model} on {args.dataset}: {result.overall}")
    console.print(f"parameters: {result.num_parameters:,}  time/epoch: {result.seconds_per_epoch:.2f}s")
    engine = getattr(getattr(trainer, "trainer", trainer), "last_engine", None)
    if engine is not None:
        stats = engine.stats
        console.print(f"engine: {stats['captures']} plan(s) captured, "
                      f"{stats['replays']} replay(s), {stats['eager_steps']} "
                      f"eager step(s), {stats['invalidations']} invalidation(s)")
    if args.summary and hasattr(result.model, "summary"):
        console.print()
        console.print(result.model.summary())
    if result.history is not None and result.history.val_maes:
        from .viz import training_curve

        console.print()
        console.print(training_curve(result.history.train_losses, result.history.val_maes))
    if args.save and hasattr(result.model, "state_dict"):
        save_checkpoint(args.save, result.model, metadata={
            "model": args.model, "dataset": args.dataset,
            "hidden": args.hidden, "layers": args.layers,
            "node_dim": args.node_dim, "time_dim": args.time_dim,
            "nodes": task.num_nodes, "test_mae": result.overall.mae,
        })
        console.print(f"checkpoint written to {args.save}")
    return 0


def cmd_profile(args) -> int:
    """Train briefly under the op tracer; report the hot-op table."""
    console = _console(args)
    task = _load(args)
    with trace(max_events=args.max_events) as tracer:
        result = _train_once(args, task, keep_model=False)
    console.print(f"\nprofile: {args.model} on {args.dataset}, "
                  f"{result.epochs_run} epoch(s), "
                  f"{result.seconds_per_epoch:.2f}s/epoch")
    console.print()
    console.print(tracer.table(args.top_k))
    path = tracer.export_chrome_trace(args.trace_out)
    console.print(f"\nchrome trace written to {path} "
                  f"({len(tracer.events)} events"
                  + (f", {tracer.events_dropped} dropped" if tracer.events_dropped else "")
                  + "; open in chrome://tracing)")
    return 0


def cmd_evaluate(args) -> int:
    from .metrics import evaluate as evaluate_metrics
    from .metrics import horizon_report
    from .nn.serialization import CheckpointCorruptionError
    from .resilience import safe_predict

    console = _console(args)
    task = _load(args)
    model = TGCRN(
        **default_tgcrn_kwargs(task, hidden_dim=args.hidden, node_dim=args.node_dim,
                               time_dim=args.time_dim, num_layers=args.layers),
        rng=np.random.default_rng(args.seed),
    )
    try:
        metadata = load_checkpoint(args.checkpoint, model)
    except FileNotFoundError:
        console.print(f"error: checkpoint {args.checkpoint} does not exist")
        return 2
    except CheckpointCorruptionError as exc:
        console.print(f"error: {exc}")
        console.print("the file is damaged (truncated write, bit rot, or manual "
                      "edit) — re-train or restore it from a backup; checkpoints "
                      "written by this version are atomic and integrity-hashed")
        return 2
    trainer = Trainer(TrainingConfig(batch_size=args.batch_size))
    result = safe_predict(trainer, model, task, "test")
    if result.degraded:
        console.print(f"WARNING: model output invalid ({result.reason}); metrics "
                      "below come from the historical-average fallback")
    overall = evaluate_metrics(result.prediction, result.target)
    per_horizon = horizon_report(result.prediction, result.target)
    console.print(f"checkpoint metadata: {metadata}")
    console.print(f"test: {overall}")
    for q, report in enumerate(per_horizon, start=1):
        console.print(f"  t+{q}: MAE {report.mae:.3f}  RMSE {report.rmse:.3f}")
    return 0


def cmd_compare(args) -> int:
    console = _console(args)
    task = _load(args)
    config = _config(args)
    config.verbose = False
    logger = None
    if args.log_jsonl:
        from .obs import RunLogger

        logger = RunLogger(path=args.log_jsonl, console=False,
                           metadata={"command": "compare", "dataset": args.dataset,
                                     "models": args.models})
    results = []

    def _run_all():
        for name in args.models.split(","):
            name = name.strip()
            kwargs = {}
            if name == "tgcrn" or name in VARIANTS:
                kwargs["model_kwargs"] = dict(
                    node_dim=args.node_dim, time_dim=args.time_dim, num_layers=args.layers
                )
            else:
                kwargs["num_layers"] = args.layers
            console.print(f"running {name}...", flush=True)
            if logger is not None:
                logger.log("model_start", model=name)
            results.append(run_experiment(name, task, config, hidden_dim=args.hidden,
                                          logger=logger, **kwargs))

    try:
        _run_traced(args, _run_all)
    finally:
        if logger is not None:
            logger.close()
    console.print(f"\n{'model':<14} {'MAE':>8} {'RMSE':>8} {'MAPE%':>7} {'PCC':>7} {'#params':>10}")
    for r in results:
        o = r.overall
        console.print(f"{r.model_name:<14} {o.mae:8.3f} {o.rmse:8.3f} {o.mape:7.2f} {o.pcc:7.4f} "
                      f"{r.num_parameters:10,d}")
    console.print()
    console.print(horizon_curve_text(results))
    if any(r.model_name == "tgcrn" for r in results) and len(results) > 1:
        console.print()
        console.print(improvement_table(results))
    return 0


def cmd_inspect(args) -> int:
    console = _console(args)
    task = _load(args)
    ds = task.dataset
    console.print(f"{args.dataset}: {task.num_nodes} nodes, {ds.num_steps} steps "
                  f"({task.steps_per_day}/day), P={task.history} Q={task.horizon}")
    console.print(f"windows: train {len(task.train)}, val {len(task.val)}, test {len(task.test)}")
    areas = {0: "residential", 1: "business", 2: "shopping"}
    counts = {areas[a]: int((ds.areas == a).sum()) for a in np.unique(ds.areas)}
    console.print(f"functional areas: {counts}")
    spd = task.steps_per_day
    slot = spd // 6
    console.print("\nGround-truth OD transfer (weekday vs weekend, same morning slot):")
    console.print(side_by_side(
        render_heatmap(ds.od_matrix(0 * spd + slot), title="Monday"),
        render_heatmap(ds.od_matrix(5 * spd + slot), title="Saturday"),
    ))
    return 0


def cmd_experiments(args) -> int:
    from .experiments import SMOKE, list_experiments, run

    if args.name is None:
        print("available experiments:")
        for name in list_experiments():
            print(f"  {name}")
        return 0
    print(run(args.name, SMOKE if args.smoke else None))
    return 0


def cmd_chaos(args) -> int:
    """Fault-injection smoke harness: prove the recovery paths fire.

    Two staged scenarios on a tiny synthetic task (docs/resilience.md):

    A. **kill/resume determinism** — a run aborted mid-training (simulated
       SIGTERM between epochs) and resumed from its checkpoint must finish
       with the *same* final ``state_hash`` and loss curve as an
       uninterrupted twin;
    B. **divergence recovery** — NaN gradients injected mid-run must
       trigger sentinel → rollback → lr backoff → completed training, with
       every event visible in the JSONL run log.
    """
    import json as _json
    from pathlib import Path

    from .nn import state_hash
    from .obs import RunLogger
    from .resilience import (
        AbortInjector,
        DivergenceSentinel,
        GuardedTrainer,
        NaNGradientInjector,
        SimulatedCrash,
    )
    from .verify import named_rng

    console = _console(args)
    task = _load(args)
    ckpt_dir = Path(args.checkpoint_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    failures = 0

    def build_model():
        return TGCRN(
            **default_tgcrn_kwargs(task, hidden_dim=args.hidden, node_dim=args.node_dim,
                                   time_dim=args.time_dim, num_layers=args.layers),
            rng=named_rng(args.seed, "chaos-model-init"),
        )

    def config(**overrides):
        base = dict(epochs=args.epochs, batch_size=args.batch_size,
                    lambda_time=args.lambda_time, seed=args.seed, verbose=False)
        base.update(overrides)
        return TrainingConfig(**base)

    # -- scenario A: kill between epochs, resume, demand bit-compatibility
    console.print("chaos A: SIGTERM-style abort + resume vs uninterrupted twin")
    straight = build_model()
    straight_history = Trainer(config()).fit(straight, task)
    straight_hash = state_hash(straight)

    ckpt_a = str(ckpt_dir / "chaos_resume.npz")
    killed = build_model()
    try:
        Trainer(config(checkpoint_path=ckpt_a)).fit(
            killed, task, fault_hook=AbortInjector(epoch=args.epochs // 2))
        console.print("  FAIL injected abort never fired")
        failures += 1
    except SimulatedCrash:
        resumed = build_model()
        resumed_history = Trainer(config(checkpoint_path=ckpt_a, resume=True)).fit(resumed, task)
        hash_ok = state_hash(resumed) == straight_hash
        curve_ok = (resumed_history.train_losses == straight_history.train_losses
                    and resumed_history.val_maes == straight_history.val_maes)
        console.print(f"  {'ok  ' if hash_ok else 'FAIL'} final state_hash "
                      f"{'matches' if hash_ok else 'differs from'} uninterrupted run")
        console.print(f"  {'ok  ' if curve_ok else 'FAIL'} loss curves "
                      f"{'identical' if curve_ok else 'diverged'}")
        failures += (0 if hash_ok else 1) + (0 if curve_ok else 1)

    # -- scenario B: NaN gradients -> sentinel -> rollback -> recovery
    console.print("chaos B: injected NaN gradients, rollback + lr backoff recovery")
    ckpt_b = str(ckpt_dir / "chaos_guard.npz")
    logger = RunLogger(path=args.log_jsonl, console=False,
                       metadata={"command": "chaos", "scenario": "nan_rollback"})
    guarded = GuardedTrainer(
        Trainer(config(checkpoint_path=ckpt_b)),
        sentinel=DivergenceSentinel(), max_retries=args.max_retries,
        lr_backoff=args.lr_backoff,
    )
    model_b = build_model()
    try:
        history = guarded.fit(model_b, task, logger=logger,
                              fault_hook=NaNGradientInjector(epoch=args.epochs // 2, batch=0))
    finally:
        logger.close()
    recovered = history.epochs_run == args.epochs and len(guarded.events) == 1
    console.print(f"  {'ok  ' if recovered else 'FAIL'} run completed after "
                  f"{len(guarded.events)} divergence event(s)")
    failures += 0 if recovered else 1
    if args.log_jsonl:
        events = [_json.loads(line)["event"] for line in Path(args.log_jsonl).open()]
        needed = {"divergence", "rollback", "resume", "lr_backoff", "recovered"}
        logged = needed.issubset(set(events))
        console.print(f"  {'ok  ' if logged else 'FAIL'} run log records "
                      f"{sorted(needed & set(events))}")
        failures += 0 if logged else 1

    # -- scenario C: NaN model at serve time -> breaker -> fallback -> recovery
    console.print("chaos C: NaN-emitting model behind the serving layer")
    from .serve import CircuitBreaker, ForecastServer, NaNModel

    serve_logger = RunLogger(path=args.log_jsonl, console=False, mode="a",
                             metadata={"command": "chaos",
                                       "scenario": "serve_containment"})
    nan_model = NaNModel(build_model(), failing=True)
    server = ForecastServer(
        nan_model, task, max_batch=2, queue_depth=32,
        breaker=CircuitBreaker(failure_threshold=2, cooldown=5.0),
        logger=serve_logger,
    )

    def fire(count, now, tag):
        for i in range(count):
            j = i % len(task.test)
            server.submit({"window": task.test.inputs[j],
                           "time_index": task.test.time_indices[j],
                           "id": f"{tag}-{i}"}, now=now)
        return server.drain(now=now)

    first = fire(6, now=0.0, tag="nanreq")
    calls_at_trip = nan_model.calls
    answered = all(r.source in ("model", "historical_average") for r in first)
    contained = answered and all(r.source == "historical_average" for r in first)
    tripped = server.breaker.state == "open" and calls_at_trip == 2
    console.print(f"  {'ok  ' if contained else 'FAIL'} every request answered by "
                  "an explicitly-marked fallback (no 5xx, no NaN served)")
    console.print(f"  {'ok  ' if tripped else 'FAIL'} breaker tripped open after "
                  f"{calls_at_trip} failing batch(es) (threshold 2)")
    failures += (0 if contained else 1) + (0 if tripped else 1)

    nan_model.failing = False
    during_cooldown = fire(2, now=1.0, tag="cooldown")
    held = all(r.source == "historical_average" for r in during_cooldown)
    after_cooldown = fire(2, now=10.0, tag="probe")
    recovered = (server.breaker.state == "closed"
                 and all(r.source == "model" for r in after_cooldown))
    console.print(f"  {'ok  ' if held else 'FAIL'} open breaker kept serving the "
                  "fallback during cooldown")
    console.print(f"  {'ok  ' if recovered else 'FAIL'} half-open probe closed the "
                  "breaker after the fault cleared")
    failures += (0 if held else 1) + (0 if recovered else 1)

    # -- scenario D: checkpoint corrupted between write and warm reload
    console.print("chaos D: corrupted checkpoint rejected at warm reload")
    from .resilience import corrupt_checkpoint

    fresh = build_model()
    fresh.parameters()[0].data[...] += 0.5  # analyze: allow[RL007] distinguishable version hash
    good_ckpt = str(ckpt_dir / "serve_good.npz")
    bad_ckpt = str(ckpt_dir / "serve_bad.npz")
    save_checkpoint(good_ckpt, fresh)
    save_checkpoint(bad_ckpt, fresh)
    corrupt_checkpoint(bad_ckpt, mode="truncate")
    version_before = server.model_version
    rejected = (not server.reload_checkpoint(bad_ckpt)
                and server.model_version == version_before)
    still_serving = fire(1, now=20.0, tag="post-reject")[0].source == "model"
    swapped = (server.reload_checkpoint(good_ckpt)
               and server.model_version != version_before)
    serve_logger.close()
    console.print(f"  {'ok  ' if rejected else 'FAIL'} integrity hash rejected the "
                  "corrupt checkpoint; live model untouched")
    console.print(f"  {'ok  ' if still_serving else 'FAIL'} previously-live model "
                  "kept serving after the rejected reload")
    console.print(f"  {'ok  ' if swapped else 'FAIL'} intact checkpoint swapped in "
                  "atomically afterwards")
    failures += (0 if rejected else 1) + (0 if still_serving else 1) + (0 if swapped else 1)

    if args.log_jsonl:
        events = {_json.loads(line)["event"] for line in Path(args.log_jsonl).open()}
        serve_needed = {"breaker_open", "breaker_half_open", "breaker_closed",
                        "fallback_served", "checkpoint_rejected", "model_reloaded"}
        serve_logged = serve_needed.issubset(events)
        console.print(f"  {'ok  ' if serve_logged else 'FAIL'} serve log records "
                      f"{sorted(serve_needed & events)}")
        failures += 0 if serve_logged else 1

    console.print(f"\nchaos: {'FAILED' if failures else 'PASSED'}")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Serving-layer smoke: prove containment under hostile traffic.

    One thread-driven :class:`~repro.serve.ForecastServer` on a tiny
    synthetic task, walked through six phases (docs/serving.md): healthy
    traffic, malformed payloads, dead-on-arrival deadlines, a NaN-emitting
    model (breaker trip + fallback), fault clearance (half-open recovery),
    and a warm reload with a corrupted-then-intact checkpoint.  Exit 0
    only if every containment property holds.
    """
    import time as _time
    from pathlib import Path

    from .obs import RunLogger
    from .resilience import corrupt_checkpoint
    from .serve import (
        CircuitBreaker,
        DeadlineExceededError,
        ForecastServer,
        InvalidRequestError,
        NaNModel,
        malformed_payloads,
    )
    from .verify import named_rng

    console = _console(args)
    task = _load(args)
    model = NaNModel(
        TGCRN(**default_tgcrn_kwargs(task, hidden_dim=args.hidden, node_dim=args.node_dim,
                                     time_dim=args.time_dim, num_layers=args.layers),
              rng=named_rng(args.seed, "serve-model-init")),
        failing=False,
    )
    logger = None
    if args.log_jsonl:
        logger = RunLogger(path=args.log_jsonl, console=False,
                           metadata={"command": "serve", "dataset": args.dataset})
    server = ForecastServer(
        model, task, queue_depth=args.queue_depth, max_batch=args.max_batch,
        breaker=CircuitBreaker(failure_threshold=args.failure_threshold,
                               cooldown=args.cooldown),
        logger=logger, compile=getattr(args, "compile", False),
    )
    collector = None
    if getattr(args, "spans_jsonl", None):
        from .obs import SpanCollector

        collector = SpanCollector(path=args.spans_jsonl).install()
    server.start()
    failures = 0
    collected = []

    def payload(i, tag, **extra):
        j = i % len(task.test)
        return {"window": task.test.inputs[j],
                "time_index": task.test.time_indices[j],
                "id": f"{tag}-{i}", **extra}

    def await_responses(expected, timeout=15.0):
        stop_at = _time.monotonic() + timeout
        while len(collected) < expected and _time.monotonic() < stop_at:
            collected.extend(server.take_responses())
            _time.sleep(0.005)
        collected.extend(server.take_responses())

    def check(ok, label):
        nonlocal failures
        console.print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failures += 0 if ok else 1

    console.print(f"serve smoke: {task.num_nodes} nodes, queue {args.queue_depth}, "
                  f"micro-batch {args.max_batch}, breaker threshold "
                  f"{args.failure_threshold}, cooldown {args.cooldown}s")

    # 1. healthy traffic is served by the model
    for i in range(args.requests):
        server.submit(payload(i, "valid"))
    await_responses(args.requests)
    healthy = [r for r in collected if r.request_id.startswith("valid-")]
    check(len(healthy) == args.requests and all(r.source == "model" for r in healthy),
          f"{len(healthy)}/{args.requests} healthy requests served by the model")

    # 2. malformed payloads are rejected at the front door, per-check
    catalog = malformed_payloads(server.spec)
    rejected = 0
    for code, bad in catalog:
        try:
            server.submit(bad)
        except InvalidRequestError as exc:
            rejected += int(exc.code == code)
    check(rejected == len(catalog),
          f"{rejected}/{len(catalog)} malformed payloads rejected with the right code")

    # 3. dead-on-arrival deadlines are shed at admission
    doa = 0
    for i in range(3):
        try:
            server.submit(payload(i, "expired", deadline=_time.monotonic() - 1.0))
        except DeadlineExceededError:
            doa += 1
    check(doa == 3, f"{doa}/3 past-deadline requests shed at admission")

    # 4. NaN-emitting model: contained, breaker trips
    model.failing = True
    nan_count = args.failure_threshold * args.max_batch
    for i in range(nan_count):
        server.submit(payload(i, "nan"))
    await_responses(args.requests + nan_count)
    nan_resp = [r for r in collected if r.request_id.startswith("nan-")]
    check(len(nan_resp) == nan_count
          and all(r.source == "historical_average" for r in nan_resp),
          f"{len(nan_resp)}/{nan_count} NaN-era requests answered by the marked fallback")
    check(server.breaker.state == "open", "breaker tripped open")

    # 5. fault clears; half-open probe closes the breaker
    model.failing = False
    _time.sleep(args.cooldown + 0.05)
    for i in range(args.max_batch):
        server.submit(payload(i, "probe"))
    await_responses(args.requests + nan_count + args.max_batch)
    probe_resp = [r for r in collected if r.request_id.startswith("probe-")]
    check(server.breaker.state == "closed"
          and any(r.source == "model" for r in probe_resp),
          "breaker recovered closed via half-open probe")

    # 6. warm reload: corrupted checkpoint rejected, intact one swapped
    ckpt_dir = Path(args.checkpoint_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    fresh = TGCRN(**default_tgcrn_kwargs(task, hidden_dim=args.hidden,
                                         node_dim=args.node_dim, time_dim=args.time_dim,
                                         num_layers=args.layers),
                  rng=named_rng(args.seed + 1, "serve-reload-init"))
    good_ckpt, bad_ckpt = str(ckpt_dir / "good.npz"), str(ckpt_dir / "bad.npz")
    save_checkpoint(good_ckpt, fresh)
    save_checkpoint(bad_ckpt, fresh)
    corrupt_checkpoint(bad_ckpt, mode="truncate")
    version_before = server.model_version
    check(not server.reload_checkpoint(bad_ckpt)
          and server.model_version == version_before,
          "corrupt checkpoint rejected by integrity hash; live model untouched")
    check(server.reload_checkpoint(good_ckpt)
          and server.model_version != version_before,
          "intact checkpoint swapped in atomically")

    server.stop(drain=True)
    if collector is not None:
        # 7. every request produced one complete, single-rooted span tree
        collector.close()
        from .obs.report import assemble_traces, check_request_traces

        trees = assemble_traces(collector.records)
        tcheck = check_request_traces(trees)
        check(tcheck.ok and tcheck.total > 0,
              f"{tcheck.complete}/{tcheck.total} request span trees complete "
              f"({tcheck.orphan_spans} orphan, {tcheck.unfinished_spans} "
              f"unfinished span(s))")
        console.print(f"  spans written to {args.spans_jsonl} "
                      f"({len(collector.records)} spans)")
    if logger is not None:
        logger.close()
    health = server.health()
    latency = server.metrics.histogram("serve.latency_ms")
    console.print(f"\nhealth: {health['status']}  breaker {health['breaker']}  "
                  f"model {health['model_version']}")
    console.print(f"latency p50 {latency.quantile(0.5):.2f}ms  "
                  f"p95 {latency.quantile(0.95):.2f}ms  over {latency.count} responses")
    console.print(f"counters: { {k: int(v) for k, v in health['counters'].items()} }")
    console.print(f"\nserve: {'FAILED' if failures else 'PASSED'}")
    return 1 if failures else 0


def cmd_serve_fleet(args) -> int:
    """Fleet chaos smoke: prove failure containment above one server.

    A thread-driven :class:`~repro.serve.ForecastFleet` (graph-partition
    sharding, consistent-hash routing, retries, hedging, N-1 rolling
    reloads) on a tiny task, walked through the scenarios in
    docs/serving.md: healthy traffic, a replica crash mid-batch, a
    one-shard brownout via :class:`~repro.serve.SlowModel`, degraded
    health aggregation, rolling reload with a corrupt checkpoint, and
    the N-1 refusal.  Exit 0 only if every answer is a model output or a
    *marked* fallback — zero wrong answers — and every request is
    answered or explicitly shed.
    """
    import time as _time
    from pathlib import Path

    from .obs import RunLogger
    from .resilience import Backoff, corrupt_checkpoint
    from .serve import CircuitBreaker, ForecastFleet, SlowModel
    from .verify import named_rng

    console = _console(args)
    task = _load(args)
    sanitizer = None
    if getattr(args, "lockorder", None):
        # install before any server/fleet construction: only locks
        # created while patched are tracked
        from .analyze.lockorder import LockOrderSanitizer

        sanitizer = LockOrderSanitizer().install()
    if getattr(args, "procs", False):
        rc = _serve_fleet_procs(args, console, task)
        if sanitizer is not None:
            report = _finish_lockorder(sanitizer, args.lockorder, console)
            ok = report["ok"]
            console.print(f"  {'ok  ' if ok else 'FAIL'} lock-order sanitizer: "
                          f"{len(report['cycles'])} cycle(s), "
                          f"{len(report['checkpoint_violations'])} "
                          f"checkpoint violation(s)")
            if not ok and rc == 0:
                rc = 1
        return rc

    def tgcrn_for(sub_task, name):
        return TGCRN(**default_tgcrn_kwargs(sub_task, hidden_dim=args.hidden,
                                            node_dim=args.node_dim,
                                            time_dim=args.time_dim,
                                            num_layers=args.layers),
                     rng=named_rng(args.seed, name))

    # Partition on a learned-style adjacency: the TagSL static backbone
    # of a full-graph model (random-init here — the smoke exercises the
    # partition path, not forecast quality).
    from .graph import learned_adjacency, partition_nodes

    adjacency = learned_adjacency(tgcrn_for(task, "fleet-partition-model"))
    partition = partition_nodes(adjacency, args.shards)

    slow_models: dict[str, SlowModel] = {}

    def factory(sub_task, shard_id, replica_id):
        wrapped = SlowModel(tgcrn_for(sub_task, f"fleet-{replica_id}"), delay=0.0)
        slow_models[replica_id] = wrapped
        return wrapped

    logger = None
    if args.log_jsonl:
        logger = RunLogger(path=args.log_jsonl, console=False,
                           metadata={"command": "serve-fleet",
                                     "dataset": args.dataset})
    collector = None
    if getattr(args, "spans_jsonl", None):
        from .obs import SpanCollector

        collector = SpanCollector(path=args.spans_jsonl).install()
    fleet = ForecastFleet(
        task, factory,
        num_shards=args.shards, replicas_per_shard=args.replicas,
        partition=partition,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        max_attempts=3, backoff=Backoff(base=0.01, max_delay=0.1),
        replica_timeout=args.replica_timeout, hedge_after=args.hedge_after,
        breaker_factory=lambda rid: CircuitBreaker(
            failure_threshold=3, cooldown=0.5),
        logger=logger,
    )
    fleet.start()
    failures = 0
    collected = []

    def payload(i, tag, **extra):
        j = i % len(task.test)
        return {"window": task.test.inputs[j],
                "time_index": task.test.time_indices[j],
                "id": f"{tag}-{i}", **extra}

    def await_responses(expected, timeout=20.0):
        stop_at = _time.monotonic() + timeout
        while len(collected) < expected and _time.monotonic() < stop_at:
            collected.extend(fleet.take_responses())
            _time.sleep(0.005)
        collected.extend(fleet.take_responses())

    def check(ok, label):
        nonlocal failures
        console.print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failures += 0 if ok else 1

    def contained(responses):
        """True when every response is a model answer, a *marked*
        fallback, or an explicit shed — never silence, never an
        unmarked degraded prediction (the zero-wrong-answers bar)."""
        for r in responses:
            if r.source == "shed":
                if r.prediction is not None:
                    return False
            elif r.prediction is None or not np.all(np.isfinite(r.prediction)):
                return False
            elif (r.source != "model") != r.degraded:
                return False
        return True

    console.print(
        f"fleet smoke: {task.num_nodes} nodes -> {args.shards} shards x "
        f"{args.replicas} replicas, cut fraction "
        f"{fleet.partition.cut_fraction:.3f}")

    # 1. healthy traffic: every shard answers from its model
    n1 = args.requests
    for i in range(n1):
        fleet.submit(payload(i, "healthy"))
    await_responses(n1)
    healthy = [r for r in collected if r.request_id.startswith("healthy-")]
    check(len(healthy) == n1 and all(r.source == "model" for r in healthy),
          f"{len(healthy)}/{n1} healthy requests answered entirely by models")

    # 2. replica crash mid-batch: the victim wedges (accepts work,
    #    answers nothing), then dies holding requests — everything it
    #    swallowed must fail over, nothing may go unanswered
    n2 = args.requests
    victim = fleet.replicas[0]
    victim.pause()
    for i in range(n2 // 2):
        fleet.submit(payload(i, "crash"))
    _time.sleep(0.1)  # let the router hand sub-requests to the wedged replica
    victim.kill()     # ... which now dies holding them
    for i in range(n2 // 2, n2):
        fleet.submit(payload(i, "crash"))
    await_responses(n1 + n2)
    crash = [r for r in collected if r.request_id.startswith("crash-")]
    failovers = int(fleet.metrics.counter("fleet.failovers").value)
    check(len(crash) == n2 and contained(crash) and failovers >= 1,
          f"{len(crash)}/{n2} answered across the crash of {victim.id} "
          f"(failovers={failovers}, "
          f"retries={int(fleet.metrics.counter('fleet.retries').value)})")

    # 3. one-shard brownout: SlowModel on every replica of the last shard
    brown_shard = fleet.shards[-1]
    for rep in brown_shard.replicas:
        slow_models[rep.id].delay = args.brownout_delay
    n3 = args.requests
    deadline_s = args.brownout_deadline
    t0 = _time.monotonic()
    for i in range(n3):
        fleet.submit(payload(i, "brown", deadline=_time.monotonic() + deadline_s))
    await_responses(n1 + n2 + n3)
    tail = _time.monotonic() - t0
    for rep in brown_shard.replicas:
        slow_models[rep.id].delay = 0.0
    brown = [r for r in collected if r.request_id.startswith("brown-")]
    answered = [r for r in brown if r.source != "shed"]
    check(len(brown) == n3 and contained(brown),
          f"{len(brown)}/{n3} answered-or-shed through shard-"
          f"{brown_shard.shard_id} brownout ({len(answered)} answered, "
          f"{n3 - len(answered)} shed)")
    bound = deadline_s + args.brownout_delay + 2.0
    check(tail < bound,
          f"brownout tail bounded: {tail:.2f}s for {n3} requests < {bound:.2f}s")

    # 4. fleet health: degraded (a replica is dead) but still available
    health = fleet.health()
    check(health["status"] in ("degraded", "ok") and fleet.ready(),
          f"fleet {health['status']} and ready with {victim.id} down "
          "(every shard keeps a live replica)")

    # 5. rolling reload under light load: corrupt candidate rejected,
    #    the swap never drops a shard below N-1
    ckpt_dir = Path(args.checkpoint_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    victim.revive()
    victim.resume()  # un-wedge too, or it sits routable-but-silent forever
    checkpoints = {}
    for shard in fleet.shards:
        sub_task = task.node_subset(shard.nodes)
        fresh = tgcrn_for(sub_task, f"fleet-reload-s{shard.shard_id}")
        path = str(ckpt_dir / f"shard{shard.shard_id}.npz")
        save_checkpoint(path, fresh)
        checkpoints[shard.shard_id] = path
    corrupt_checkpoint(checkpoints[fleet.shards[-1].shard_id], mode="truncate")
    for i in range(args.requests):
        fleet.submit(payload(i, "reload"))
    versions_before = {r.id: r.server.model_version for r in fleet.replicas}
    records = fleet.rolling_reload(checkpoints)
    await_responses(n1 + n2 + n3 + args.requests)
    good = [r for r in records if r["action"] == "reloaded"]
    bad = [r for r in records if r["action"] == "rejected"]
    check(len(good) == (args.shards - 1) * args.replicas
          and all(r["available_during"] >= 1 for r in records),
          f"rolling reload swapped {len(good)} replica(s), never below N-1")
    last = [r.id for r in fleet.shards[-1].replicas]
    check(len(bad) == args.replicas
          and all(fleet.replica(rid).server.model_version == versions_before[rid]
                  for rid in last),
          f"corrupt checkpoint rejected on {len(bad)} replica(s); "
          "old models kept serving")
    reloads = [r for r in collected if r.request_id.startswith("reload-")]
    check(len(reloads) == args.requests and contained(reloads),
          f"{len(reloads)}/{args.requests} requests answered during the reload")

    # 6. N-1 floor: with one replica left in a shard, reload is refused
    spare = fleet.shards[0]
    for rep in spare.replicas[1:]:
        rep.kill()
    refused = fleet.rolling_reload({spare.shard_id: checkpoints[spare.shard_id]})
    check(any(r["action"] == "refused" for r in refused)
          and all(r["action"] in ("refused", "skipped") for r in refused),
          f"reload refused for the last replica of shard {spare.shard_id} "
          "(structured N-1 refusal; dead replicas skipped)")
    for rep in spare.replicas[1:]:
        rep.revive()

    fleet.stop(drain=True)
    if collector is not None:
        # 7. every fleet request produced one complete router->replica tree
        collector.close()
        from .obs.report import assemble_traces, check_fleet_traces

        trees = assemble_traces(collector.records)
        tcheck = check_fleet_traces(trees)
        check(tcheck.ok and tcheck.total > 0,
              f"{tcheck.complete}/{tcheck.total} fleet span trees complete "
              f"({tcheck.orphan_spans} orphan, {tcheck.unfinished_spans} "
              f"unfinished span(s))")
        console.print(f"  spans written to {args.spans_jsonl} "
                      f"({len(collector.records)} spans)")
    if sanitizer is not None:
        # 8. no interleaving of the observed critical sections can
        #    deadlock, and no fault fired inside one
        report = _finish_lockorder(sanitizer, args.lockorder, console)
        check(report["ok"],
              f"lock-order sanitizer: {report['edges']} edge(s), "
              f"{len(report['cycles'])} cycle(s), "
              f"{len(report['checkpoint_violations'])} checkpoint violation(s)")
    if logger is not None:
        logger.close()
    health = fleet.health()
    latency = fleet.metrics.histogram("fleet.latency_ms")
    console.print(f"\nhealth: {health['status']}  "
                  f"shards {[(s['shard_id'], s['healthy_replicas']) for s in health['shards']]}")
    console.print(f"latency p50 {latency.quantile(0.5):.2f}ms  "
                  f"p95 {latency.quantile(0.95):.2f}ms  over {latency.count} responses")
    console.print(f"counters: { {k: int(v) for k, v in health['counters'].items()} }")
    console.print(f"\nserve-fleet: {'FAILED' if failures else 'PASSED'}")
    return 1 if failures else 0


def _finish_lockorder(sanitizer, path, console) -> dict:
    """Uninstall the sanitizer, export the witness graph, return the report."""
    sanitizer.uninstall()
    report = sanitizer.report()
    sanitizer.export_jsonl(path)
    console.print(f"  lock-order graph: {path} "
                  f"({report['locks']} lock(s), {report['edges']} edge(s))")
    return report


def _serve_fleet_procs(args, console, task) -> int:
    """Kill-based chaos smoke against the process-isolated fleet.

    Unlike the thread-mode smoke (which stages faults through
    router-side seams), every fault here is *real*: replicas are forked
    children behind the socket transport (docs/serving.md, "Process
    isolation"), the crash is a genuine ``SIGKILL`` mid-batch, the wedge
    is a child that stops heartbeating *and* ignores SIGTERM (forcing
    the supervisor's kill escalation), the crash loop is repeated kills
    until the restart budget parks the replica, and the wire corruption
    is damaged bytes on the socket.  Exit 0 requires 100%
    answered-or-shed, supervisor recovery within budget, the
    crash-looper parked, complete cross-process span trees, and zero
    orphan replica processes after ``fleet.stop()``.
    """
    import os as _os
    import signal as _signal
    import time as _time

    from .obs import RunLogger
    from .resilience import Backoff, RestartPolicy
    from .serve import ForecastFleet
    from .verify import named_rng

    def factory(sub_task, shard_id, replica_id):
        # Runs in the forked child: the model never crosses the wire.
        return TGCRN(**default_tgcrn_kwargs(sub_task, hidden_dim=args.hidden,
                                            node_dim=args.node_dim,
                                            time_dim=args.time_dim,
                                            num_layers=args.layers),
                     rng=named_rng(args.seed, f"fleet-{replica_id}"))

    logger = None
    if args.log_jsonl:
        logger = RunLogger(path=args.log_jsonl, console=False,
                           metadata={"command": "serve-fleet --procs",
                                     "dataset": args.dataset})
    collector = None
    if getattr(args, "spans_jsonl", None):
        from .obs import SpanCollector

        collector = SpanCollector(path=args.spans_jsonl).install()

    policy = RestartPolicy(max_restarts=3, window_s=20.0,
                           ready_deadline_s=60.0,
                           heartbeat_timeout_s=1.0, term_deadline_s=1.0)
    fleet = ForecastFleet(
        task, factory,
        num_shards=args.shards, replicas_per_shard=args.replicas,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        max_attempts=3, backoff=Backoff(base=0.01, max_delay=0.1),
        replica_timeout=args.replica_timeout, hedge_after=args.hedge_after,
        transport="process", restart_policy=policy,
        proc_kwargs={"heartbeat_interval": 0.1, "ack_timeout": 5.0,
                     "ready_timeout": 120.0},
        logger=logger,
    )
    fleet.start()
    failures = 0
    collected = []
    seen_pids = set()

    def snapshot_pids():
        for rep in fleet.replicas:
            pid = getattr(rep.server, "pid", None)
            if pid:
                seen_pids.add(pid)

    def payload(i, tag, **extra):
        j = i % len(task.test)
        return {"window": task.test.inputs[j],
                "time_index": task.test.time_indices[j],
                "id": f"{tag}-{i}", **extra}

    def await_responses(expected, timeout=60.0):
        stop_at = _time.monotonic() + timeout
        while len(collected) < expected and _time.monotonic() < stop_at:
            collected.extend(fleet.take_responses())
            _time.sleep(0.005)
        collected.extend(fleet.take_responses())

    def await_state(replica_id, predicate, timeout=30.0):
        stop_at = _time.monotonic() + timeout
        while _time.monotonic() < stop_at:
            if predicate():
                return True
            _time.sleep(0.02)
        return predicate()

    def check(ok, label):
        nonlocal failures
        console.print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        failures += 0 if ok else 1

    def contained(responses):
        for r in responses:
            if r.source == "shed":
                if r.prediction is not None:
                    return False
            elif r.prediction is None or not np.all(np.isfinite(r.prediction)):
                return False
            elif (r.source != "model") != r.degraded:
                return False
        return True

    def sup_counter(name):
        return int(fleet.metrics.counter(name).value)

    snapshot_pids()
    console.print(
        f"process-fleet smoke: {task.num_nodes} nodes -> {args.shards} shards "
        f"x {args.replicas} replicas, pids "
        f"{[rep.server.pid for rep in fleet.replicas]}")

    # 1. healthy traffic across the socket transport
    n1 = args.requests
    for i in range(n1):
        fleet.submit(payload(i, "healthy"))
    await_responses(n1)
    healthy = [r for r in collected if r.request_id.startswith("healthy-")]
    check(len(healthy) == n1 and all(r.source == "model" for r in healthy),
          f"{len(healthy)}/{n1} healthy requests answered entirely by models")

    # 2. real SIGKILL mid-batch: submit, kill the child holding work,
    #    submit more — everything answered-or-shed, supervisor restarts
    victim = fleet.shards[0].replicas[0]
    victim_pid = victim.server.pid
    n2 = args.requests
    for i in range(n2 // 2):
        fleet.submit(payload(i, "crash"))
    _os.kill(victim_pid, _signal.SIGKILL)
    for i in range(n2 // 2, n2):
        fleet.submit(payload(i, "crash"))
    await_responses(n1 + n2)
    crash = [r for r in collected if r.request_id.startswith("crash-")]
    check(len(crash) == n2 and contained(crash),
          f"{len(crash)}/{n2} answered-or-shed across SIGKILL of {victim.id} "
          f"(pid {victim_pid}, failovers="
          f"{int(fleet.metrics.counter('fleet.failovers').value)})")
    recovered = await_state(
        victim.id,
        lambda: (fleet.supervisor.state(victim.id) == "running"
                 and not victim.killed and victim.server.pid != victim_pid))
    snapshot_pids()
    check(recovered and fleet.supervisor.restart_count(victim.id) >= 1,
          f"supervisor restarted {victim.id} within budget "
          f"(pid {victim_pid} -> {victim.server.pid}, "
          f"restarts={fleet.supervisor.restart_count(victim.id)})")

    # 3. wedged child ignoring SIGTERM: heartbeats stop, the watchdog
    #    TERMs, the deadline passes, SIGKILL escalation recovers it
    wedged = fleet.shards[-1].replicas[0]
    wedged_pid = wedged.server.pid
    wedged.server.inject_wedge(ignore_term=True)
    n3 = args.requests
    for i in range(n3):
        fleet.submit(payload(i, "wedge"))
    await_responses(n1 + n2 + n3)
    wedge_rs = [r for r in collected if r.request_id.startswith("wedge-")]
    check(len(wedge_rs) == n3 and contained(wedge_rs),
          f"{len(wedge_rs)}/{n3} answered-or-shed around the wedged {wedged.id}")
    escalated = await_state(
        wedged.id,
        lambda: (sup_counter("supervisor.kill_escalations") >= 1
                 and fleet.supervisor.state(wedged.id) == "running"
                 and wedged.server.pid != wedged_pid))
    snapshot_pids()
    check(escalated,
          f"watchdog TERMed the silent {wedged.id}, escalated to SIGKILL "
          f"(escalations={sup_counter('supervisor.kill_escalations')}), "
          "and restarted it")

    # 4. crash loop: keep killing one replica until the restart budget
    #    parks it; its shard keeps serving on the surviving replica
    looper = fleet.shards[0].replicas[1]
    kills = 0
    stop_at = _time.monotonic() + 90.0
    while (not fleet.supervisor.is_parked(looper.id)
           and _time.monotonic() < stop_at):
        pid = looper.server.pid
        if (pid and looper.server.is_alive()
                and fleet.supervisor.state(looper.id) == "running"):
            seen_pids.add(pid)
            try:
                _os.kill(pid, _signal.SIGKILL)
                kills += 1
            except OSError:  # analyze: allow[RL006] victim already dead: exactly what we want
                pass
        _time.sleep(0.02)  # analyze: allow[RL010] chaos kill pacing, not a retry loop
    check(fleet.supervisor.is_parked(looper.id)
          and sup_counter("supervisor.parked") == 1,
          f"crash-looping {looper.id} parked after {kills} kills "
          f"(budget {policy.max_restarts} restarts/{policy.window_s:.0f}s)")
    n4 = args.requests
    for i in range(n4):
        fleet.submit(payload(i, "parked"))
    await_responses(n1 + n2 + n3 + n4)
    parked_rs = [r for r in collected if r.request_id.startswith("parked-")]
    check(len(parked_rs) == n4 and contained(parked_rs) and fleet.ready(),
          f"{len(parked_rs)}/{n4} answered with {looper.id} parked "
          "(shard held by its surviving replica)")

    # 5. corrupt wire frames: recoverable tiers are dropped and counted
    #    by the child, which keeps serving
    target = fleet.shards[-1].replicas[-1]
    target.server.inject_corrupt_frame("crc")
    target.server.inject_corrupt_frame("payload")
    n5 = args.requests
    for i in range(n5):
        fleet.submit(payload(i, "wire"))
    await_responses(n1 + n2 + n3 + n4 + n5)
    wire_rs = [r for r in collected if r.request_id.startswith("wire-")]
    counted = await_state(
        target.id,
        lambda: target.server.health().get("corrupt_frames", 0) >= 2,
        timeout=10.0)
    check(len(wire_rs) == n5 and contained(wire_rs) and counted
          and target.server.is_alive(),
          f"{len(wire_rs)}/{n5} answered through wire corruption "
          f"({target.server.health().get('corrupt_frames', 0)} corrupt "
          f"frame(s) dropped by {target.id}, child alive)")

    # 6. drain, stop, stitched traces, zero orphans
    snapshot_pids()
    fleet.stop(drain=True)
    if collector is not None:
        collector.close()
        from .obs.report import assemble_traces, check_fleet_traces

        trees = assemble_traces(collector.records)
        tcheck = check_fleet_traces(trees)
        check(tcheck.ok and tcheck.total > 0,
              f"{tcheck.complete}/{tcheck.total} cross-process span trees "
              f"complete ({tcheck.orphan_spans} orphan, "
              f"{tcheck.unfinished_spans} unfinished span(s))")
        console.print(f"  spans written to {args.spans_jsonl} "
                      f"({len(collector.records)} spans)")
    orphans = []
    for pid in sorted(seen_pids):
        try:
            _os.kill(pid, 0)
        except OSError:
            continue
        try:
            with open(f"/proc/{pid}/stat") as fh:
                state = fh.read().rsplit(")", 1)[1].split()[0]
        except OSError:
            continue
        if state != "Z":
            orphans.append(pid)
    check(not orphans,
          f"zero orphan replica processes across {len(seen_pids)} pid(s)"
          + (f" -- still alive: {orphans}" if orphans else ""))
    if logger is not None:
        logger.close()
    console.print(
        f"\nsupervisor: restarts={sup_counter('supervisor.restarts')} "
        f"kill_escalations={sup_counter('supervisor.kill_escalations')} "
        f"parked={sup_counter('supervisor.parked')} "
        f"unresponsive={sup_counter('supervisor.unresponsive')}")
    console.print(f"\nserve-fleet --procs: {'FAILED' if failures else 'PASSED'}")
    return 1 if failures else 0


def _bench_fleet(args, console, task) -> int:
    """Closed-loop load generator against a ForecastFleet.

    Ramps offered concurrency level by level; each level keeps a fixed
    number of requests in flight (closed loop: a completion immediately
    funds the next submission) and reports p50/p95/p99 latency,
    throughput, and the degraded/shed rate.  The headline is
    ``max_sustainable_qps``: the highest measured throughput among
    levels that still meet the latency SLO with essentially no sheds.
    """
    import json as _json
    import time as _time

    from .resilience import Backoff
    from .serve import FleetOverloadedError, ForecastFleet
    from .verify import named_rng

    def factory(sub_task, shard_id, replica_id):
        return TGCRN(**default_tgcrn_kwargs(sub_task, hidden_dim=args.hidden,
                                            node_dim=args.node_dim,
                                            time_dim=args.time_dim,
                                            num_layers=args.layers),
                     rng=named_rng(args.seed, f"bench-fleet-{replica_id}"))

    fleet = ForecastFleet(
        task, factory,
        num_shards=args.shards, replicas_per_shard=args.replicas,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        backoff=Backoff(base=0.005, max_delay=0.05),
        replica_timeout=2.0,
    )
    levels = [int(v) for v in str(args.concurrency).split(",") if v.strip()]
    deadline_s = args.deadline_ms / 1000.0
    results = []
    console.print(f"bench-serve --fleet: {args.shards} shards x {args.replicas} "
                  f"replicas, {args.requests} requests/level, "
                  f"SLO p95 <= {args.slo_p95_ms:.0f}ms")
    for concurrency in levels:
        latencies = []
        shed = degraded = rejected = completed = 0
        submitted = 0
        seq = 0
        started = _time.perf_counter()
        while completed < args.requests:
            while (submitted - completed) < concurrency and submitted < args.requests:
                j = seq % len(task.test)
                seq += 1
                try:
                    fleet.submit({
                        "window": task.test.inputs[j],
                        "time_index": task.test.time_indices[j],
                        "deadline": fleet._clock() + deadline_s,
                    })
                    submitted += 1
                except FleetOverloadedError:
                    rejected += 1
                    break
            for response in fleet.process_once():
                completed += 1
                if response.source == "shed":
                    shed += 1
                    continue
                if response.degraded:
                    degraded += 1
                latencies.append(response.latency_ms)
        elapsed = _time.perf_counter() - started
        latencies.sort()

        def pct(p):
            if not latencies:
                return float("nan")
            return latencies[min(len(latencies) - 1,
                                 int(p / 100.0 * len(latencies)))]

        qps = completed / elapsed if elapsed > 0 else 0.0
        bad_rate = (shed + rejected) / max(1, completed + rejected)
        sustainable = (bool(latencies) and pct(95) <= args.slo_p95_ms
                       and bad_rate <= args.max_shed_rate)
        level = {
            "concurrency": concurrency,
            "requests": completed,
            "seconds": elapsed,
            "throughput_qps": qps,
            "latency_ms": {"p50": pct(50), "p95": pct(95), "p99": pct(99)},
            "shed": shed,
            "rejected": rejected,
            "degraded": degraded,
            "sustainable": sustainable,
        }
        results.append(level)
        console.print(
            f"  c={concurrency:<3d} {qps:8.1f} qps  p50 {pct(50):7.2f}ms  "
            f"p95 {pct(95):7.2f}ms  p99 {pct(99):7.2f}ms  "
            f"shed {shed}  degraded {degraded}  "
            f"{'OK' if sustainable else 'over SLO'}")
    sustainable_qps = [r["throughput_qps"] for r in results if r["sustainable"]]
    payload = {
        "name": "fleet_serve",
        "scale": "quick",
        "ts": _time.time(),
        "data": {
            "topology": {"shards": args.shards, "replicas": args.replicas,
                         "nodes": task.num_nodes, "max_batch": args.max_batch,
                         "cut_fraction": fleet.partition.cut_fraction},
            "slo": {"p95_ms": args.slo_p95_ms,
                    "max_shed_rate": args.max_shed_rate,
                    "deadline_ms": args.deadline_ms},
            "levels": results,
            "max_sustainable_qps": max(sustainable_qps) if sustainable_qps else 0.0,
        },
    }
    console.print(f"max sustainable QPS under SLO: "
                  f"{payload['data']['max_sustainable_qps']:.1f}")
    if args.out:
        from .ioutil import atomic_write_text

        atomic_write_text(args.out, _json.dumps(payload, indent=2) + "\n")
        console.print(f"result written to {args.out}")
    return 0 if sustainable_qps else 1


def cmd_bench_serve(args) -> int:
    """Closed-loop serving benchmark: throughput and latency percentiles.

    Drives the synchronous core directly (no worker thread) so the
    numbers measure validation + batching + inference, not thread
    scheduling jitter.  With ``--fleet`` the target is a sharded
    :class:`~repro.serve.ForecastFleet` and the run ramps concurrency to
    find the max sustainable QPS under the latency SLO.
    """
    import json as _json
    import time as _time

    from .obs import SpanCollector
    from .obs.report import assemble_traces, stage_breakdown
    from .serve import ForecastServer
    from .verify import named_rng

    console = _console(args)
    task = _load(args)
    if getattr(args, "fleet", False):
        return _bench_fleet(args, console, task)
    model = TGCRN(**default_tgcrn_kwargs(task, hidden_dim=args.hidden,
                                         node_dim=args.node_dim, time_dim=args.time_dim,
                                         num_layers=args.layers),
                  rng=named_rng(args.seed, "bench-serve-init"))
    server = ForecastServer(model, task, queue_depth=args.queue_depth,
                            max_batch=args.max_batch)
    # Spans stay on for the whole bench: the per-stage breakdown (queue
    # wait vs batch assembly vs predict) comes straight from the trees.
    collector = SpanCollector(path=getattr(args, "spans_jsonl", None)).install()
    submitted = 0
    started = _time.perf_counter()
    try:
        while submitted < args.requests:
            wave = min(args.max_batch, args.requests - submitted)
            for i in range(wave):
                j = (submitted + i) % len(task.test)
                server.submit({"window": task.test.inputs[j],
                               "time_index": task.test.time_indices[j]})
            server.drain()
            submitted += wave
        elapsed = _time.perf_counter() - started
    finally:
        collector.close()
    responses = server.take_responses()
    model_served = sum(r.source == "model" for r in responses)
    latency = server.metrics.histogram("serve.latency_ms")
    batch = server.metrics.histogram("serve.batch_size")
    breakdown = stage_breakdown(assemble_traces(collector.records))
    stages = {
        "queue_wait": breakdown.get("queue_wait"),
        "batch_assembly": breakdown.get("batch_assembly"),
        "predict": breakdown.get("predict"),
        "total": breakdown.get("request"),
    }
    result = {
        "requests": args.requests,
        "seconds": elapsed,
        "throughput_rps": args.requests / elapsed,
        "latency_ms": {"p50": latency.quantile(0.5), "p95": latency.quantile(0.95),
                       "mean": latency.mean},
        "stages": stages,
        "mean_batch_size": batch.mean,
        "model_served": model_served,
        "nodes": task.num_nodes,
        "max_batch": args.max_batch,
    }
    console.print(f"bench-serve: {args.requests} requests in {elapsed:.2f}s "
                  f"= {result['throughput_rps']:.1f} req/s")
    console.print(f"latency p50 {result['latency_ms']['p50']:.2f}ms  "
                  f"p95 {result['latency_ms']['p95']:.2f}ms  "
                  f"mean batch {batch.mean:.1f}")
    for name in ("queue_wait", "batch_assembly", "predict", "total"):
        stats = stages.get(name)
        if stats:
            console.print(f"  {name:<15} p50 {stats['p50']:8.3f}ms  "
                          f"p95 {stats['p95']:8.3f}ms  p99 {stats['p99']:8.3f}ms  "
                          f"(n={stats['count']})")
    if args.out:
        from .ioutil import atomic_write_text

        atomic_write_text(args.out, _json.dumps(result, indent=2) + "\n")
        console.print(f"result written to {args.out}")
    return 0 if model_served == args.requests else 1


def cmd_verify(args) -> int:
    """Run the repro.verify harness: cross-checks, gradient oracle, golden trace."""
    from pathlib import Path

    from .autodiff import Tensor, mae_loss
    from .verify import (
        check_module_gradients,
        compare_traces,
        load_trace,
        named_rng,
        run_all,
        run_golden_trace,
        save_trace,
    )

    console = _console(args)
    failures = 0

    console.print("reference-vs-production cross-checks:")
    for result in run_all(seed=args.seed):
        console.print(f"  {result}")
        failures += 0 if result.passed else 1

    console.print("\ngradient oracle (tiny TGCRN, sampled coordinates):")
    rng = named_rng(args.seed, "cli-verify-oracle")
    model = TGCRN(
        num_nodes=3, in_dim=1, out_dim=1, horizon=2, hidden_dim=3, num_layers=1,
        node_dim=3, time_dim=3, steps_per_day=8, rng=rng,
    )
    x = Tensor(rng.normal(size=(2, 3, 3, 1)))
    t = np.arange(5)[None, :].repeat(2, axis=0)
    y = Tensor(rng.normal(size=(2, 2, 3, 1)))
    report = check_module_gradients(
        model,
        lambda: mae_loss(model(x, t), y),
        max_coords_per_param=args.sample if args.sample > 0 else None,
        rng=np.random.default_rng(args.seed),
    )
    for line in str(report).splitlines():
        console.print(f"  {line}")
    failures += 0 if report.passed else 1

    golden_path = Path(args.golden)
    if args.update_golden:
        golden_trace = run_golden_trace()
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        save_trace(golden_path, golden_trace)
        console.print(f"\ngolden trace regenerated at {golden_path}")
    elif golden_path.exists():
        console.print(f"\ngolden trace ({golden_path}):")
        problems = compare_traces(run_golden_trace(), load_trace(golden_path))
        if problems:
            failures += 1
            for problem in problems:
                console.print(f"  FAIL {problem}")
        else:
            console.print("  ok   loss curve matches the committed fixture")
    else:
        console.print(f"\ngolden trace: fixture {golden_path} not found, skipping "
                      "(regenerate with --update-golden)")

    console.print(f"\nverify: {'FAILED' if failures else 'PASSED'}")
    return 1 if failures else 0


def cmd_analyze(args) -> int:
    """Static analysis: repo lint + symbolic shape/gradflow over the model catalog."""
    from pathlib import Path

    from .analyze import (
        Baseline,
        max_severity,
        render_json,
        render_text,
        run_analysis,
        severity_rank,
    )
    from .ioutil import atomic_write_text

    console = _console(args)
    baseline_path = Path(args.baseline)
    rules = [r.strip() for r in args.rules.split(",") if r.strip()] if args.rules else None
    paths = args.paths or None
    include_models = not args.no_models

    if args.changed_only:
        # fast pre-commit mode: lint exactly the python files git says
        # changed (staged, unstaged, or untracked); model checks are
        # whole-catalog and don't scope to files, so they are skipped
        import subprocess

        def _git_lines(*cmd: str) -> list[str]:
            proc = subprocess.run(
                ["git", *cmd], cwd=args.root, capture_output=True, text=True
            )
            if proc.returncode != 0:
                return []
            return [line.strip() for line in proc.stdout.splitlines() if line.strip()]

        changed = set(_git_lines("diff", "--name-only", "HEAD", "--", "*.py"))
        changed |= set(_git_lines("ls-files", "--others", "--exclude-standard", "--", "*.py"))
        root_dir = Path(args.root)
        paths = sorted(str(root_dir / name) for name in changed if (root_dir / name).is_file())
        include_models = False
        if not paths:
            console.print("analyze: no changed python files")
            return 0

    if args.fix:
        from .analyze import apply_fixes

        fix_paths = paths if paths is not None else [Path(args.root) / "src" / "repro"]
        fixed = apply_fixes(fix_paths, root=args.root, rules=rules)
        for entry in fixed:
            detail = ", ".join(f"{rule} x{n}" for rule, n in sorted(entry["fixes"].items()))
            console.print(f"fixed {entry['display']}: {detail}")
        console.print(f"--fix rewrote {len(fixed)} file(s)")

    report = run_analysis(
        root=args.root,
        paths=paths,
        rules=rules,
        include_models=include_models,
        baseline=Baseline.load(baseline_path),
        seed=args.seed,
    )

    if args.update_baseline:
        Baseline.from_findings(report.all_findings).save(baseline_path)
        console.print(f"baseline updated: {baseline_path} now accepts "
                      f"{len(report.all_findings)} finding(s)")
        return 0

    if args.json:
        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(json_path, render_json(
            report.findings, suppressed=report.suppressed, metrics=report.metrics) + "\n")
        console.print(f"json report: {json_path}")
    console.print(render_text(report.findings, suppressed=report.suppressed))

    if args.fail_on != "never":
        worst = max_severity(report.findings)
        if worst is not None and severity_rank(worst) >= severity_rank(args.fail_on):
            console.print(f"\nanalyze: FAILED (new {worst}-severity findings; "
                          f"fix them or re-baseline with --update-baseline)")
            return 1
    console.print("\nanalyze: PASSED")
    return 0


def cmd_compile_smoke(args) -> int:
    """Prove compiled training matches eager bitwise; report the speedup.

    Trains the same tiny TGCRN twice from identical seeds — once eager,
    once through the capture/replay engine (docs/engine.md) — then
    compares loss curves and final parameter hashes with zero tolerance
    and writes a before/after epoch-time artifact for CI.
    """
    import json
    from pathlib import Path

    from .ioutil import atomic_write_text
    from .verify import named_rng, state_hash

    console = _console(args)
    task = load_task("hzmetro", num_nodes=args.nodes, num_days=args.days,
                     seed=args.seed)

    def run(compile: bool):
        model = TGCRN(
            num_nodes=task.num_nodes, in_dim=task.in_dim, out_dim=task.out_dim,
            horizon=task.horizon, hidden_dim=args.hidden, num_layers=1,
            node_dim=4, time_dim=4, steps_per_day=task.steps_per_day,
            rng=named_rng(args.seed, "compile-smoke-model"),
        )
        trainer = Trainer(TrainingConfig(
            epochs=args.epochs, batch_size=16, seed=args.seed,
            verbose=False, compile=compile))
        history = trainer.fit(model, task)
        return history, state_hash(model), trainer.last_engine

    eager_hist, eager_hash, _ = run(False)
    compiled_hist, compiled_hash, engine = run(True)

    mismatches = []
    if eager_hist.train_losses != compiled_hist.train_losses:
        mismatches.append("train_losses")
    if eager_hist.val_maes != compiled_hist.val_maes:
        mismatches.append("val_maes")
    if eager_hash != compiled_hash:
        mismatches.append("final_state_hash")

    eager_s = float(np.mean(eager_hist.epoch_seconds))
    compiled_s = float(np.mean(compiled_hist.epoch_seconds))
    artifact = {
        "epochs": args.epochs,
        "seed": args.seed,
        "bitwise_match": not mismatches,
        "mismatches": mismatches,
        "eager": {"seconds_per_epoch": eager_s,
                  "epoch_seconds": list(eager_hist.epoch_seconds),
                  "train_losses": list(eager_hist.train_losses),
                  "state_hash": eager_hash},
        "compiled": {"seconds_per_epoch": compiled_s,
                     "epoch_seconds": list(compiled_hist.epoch_seconds),
                     "train_losses": list(compiled_hist.train_losses),
                     "state_hash": compiled_hash,
                     "engine": engine.stats if engine is not None else {}},
        "compiled_over_eager": compiled_s / eager_s if eager_s else None,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    console.print(f"eager:    {eager_s:.3f}s/epoch")
    console.print(f"compiled: {compiled_s:.3f}s/epoch "
                  f"({compiled_s / eager_s:.2f}x eager, "
                  f"{engine.stats['replays']} replay(s))")
    console.print(f"artifact: {out}")
    if mismatches:
        console.print(f"\ncompile-smoke: FAILED ({', '.join(mismatches)} diverged "
                      f"between eager and compiled)")
        return 1
    console.print("\ncompile-smoke: PASSED (loss curves and parameters "
                  "bitwise-identical)")
    return 0


def cmd_obs_report(args) -> int:
    """Span-tree analysis + the noise-aware bench regression sentinel.

    With ``--spans``, reconstructs every trace from the JSONL stream,
    checks request-tree completeness, and prints the per-stage latency
    breakdown plus the slowest request's critical path.  With
    ``--bench-current/--bench-history``, compares a fresh
    ``bench_table8_cost`` artifact against committed history with
    machine-speed-invariant normalization.  ``--fail-on`` gates CI.
    """
    import json as _json
    from pathlib import Path

    from .obs.report import (
        assemble_traces,
        check_bench_regression,
        check_request_traces,
        critical_path,
        load_spans,
        render_regressions,
        render_report,
        slowest_request,
        stage_breakdown,
    )

    console = _console(args)
    payload: dict = {}
    gates_hit: set[str] = set()

    if args.spans:
        records = load_spans(args.spans)
        trees = assemble_traces(records)
        tcheck = check_request_traces(trees)
        breakdown = stage_breakdown(trees)
        console.print(render_report(trees, tcheck, breakdown))
        payload["spans"] = {"path": args.spans, "check": tcheck.to_dict(),
                            "stages": breakdown}
        slowest = slowest_request(trees)
        if slowest is not None and slowest.root is not None:
            payload["spans"]["critical_path"] = critical_path(slowest.root)
        if not tcheck.ok:
            gates_hit.add("incomplete")

    if args.bench_current and args.bench_history:
        current = _json.loads(Path(args.bench_current).read_text())
        history = _json.loads(Path(args.bench_history).read_text())
        findings = check_bench_regression(
            current, history, threshold=args.threshold)
        if args.spans:
            console.print()
        console.print(render_regressions(findings))
        payload["bench"] = {"current": args.bench_current,
                            "history": args.bench_history,
                            "threshold": args.threshold,
                            "findings": [f.to_dict() for f in findings]}
        if any(f.is_regression for f in findings):
            gates_hit.add("regression")
    elif args.bench_current or args.bench_history:
        raise SystemExit("--bench-current and --bench-history go together")

    if not payload:
        raise SystemExit("nothing to report: pass --spans and/or "
                         "--bench-current/--bench-history")

    if args.out:
        from .ioutil import atomic_write_text

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(out, _json.dumps(payload, indent=2) + "\n")
        console.print(f"\nreport written to {out}")

    if args.fail_on == "never":
        return 0
    gating = gates_hit if args.fail_on == "any" else gates_hit & {args.fail_on}
    if gating:
        console.print(f"\nobs-report: FAILED ({', '.join(sorted(gating))})")
        return 1
    console.print("\nobs-report: PASSED")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train one model and report test metrics")
    _add_dataset_args(train)
    _add_training_args(train)
    _add_obs_args(train, tracing=True)
    _add_resilience_args(train)
    train.add_argument("--model", default="tgcrn",
                       help=f"tgcrn, a variant {sorted(VARIANTS)}, or one of {ALL_BASELINES}")
    train.add_argument("--save", default=None, help="write a .npz checkpoint")
    train.add_argument("--summary", action="store_true",
                       help="print a per-module parameter table")
    train.set_defaults(fn=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved TGCRN checkpoint")
    _add_dataset_args(evaluate)
    _add_training_args(evaluate)
    _add_obs_args(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.set_defaults(fn=cmd_evaluate)

    compare = sub.add_parser("compare", help="train several models and rank them")
    _add_dataset_args(compare)
    _add_training_args(compare)
    _add_obs_args(compare, tracing=True)
    compare.add_argument("--models", default="ha,agcrn,tgcrn", help="comma-separated names")
    compare.set_defaults(fn=cmd_compare)

    profile = sub.add_parser(
        "profile",
        help="train briefly under the op tracer and report the hot-op table",
    )
    _add_dataset_args(profile)
    _add_training_args(profile)
    _add_obs_args(profile)
    profile.add_argument("--model", default="tgcrn",
                         help=f"tgcrn, a variant {sorted(VARIANTS)}, or one of {ALL_BASELINES}")
    profile.add_argument("--top-k", type=int, default=12,
                         help="rows in the hot-op table")
    profile.add_argument("--trace-out", default="trace.json", metavar="PATH",
                         help="Chrome-trace JSON destination")
    profile.add_argument("--max-events", type=int, default=200_000,
                         help="Chrome-trace event cap")
    profile.set_defaults(fn=cmd_profile, epochs=1)

    inspect = sub.add_parser("inspect", help="describe a dataset and its OD dynamics")
    _add_dataset_args(inspect)
    _add_obs_args(inspect)
    inspect.set_defaults(fn=cmd_inspect)

    experiments = sub.add_parser(
        "experiments", help="regenerate a paper table/figure (or list them)"
    )
    experiments.add_argument("name", nargs="?", default=None,
                             help="experiment id, e.g. table6 or fig8; omit to list")
    experiments.add_argument("--smoke", action="store_true",
                             help="run at smoke-test scale (1 epoch, 6 nodes)")
    experiments.set_defaults(fn=cmd_experiments)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection smoke harness: abort+resume determinism and "
             "NaN-gradient rollback recovery on a tiny task",
    )
    _add_dataset_args(chaos)
    _add_training_args(chaos)
    _add_obs_args(chaos)
    chaos.add_argument("--checkpoint-dir", default="artifacts/chaos",
                       help="directory for the scenario checkpoints")
    chaos.add_argument("--max-retries", type=int, default=2)
    chaos.add_argument("--lr-backoff", type=float, default=0.5)
    chaos.set_defaults(fn=cmd_chaos, epochs=4, nodes=5, days=4,
                       hidden=4, node_dim=3, time_dim=3, layers=1)

    serve = sub.add_parser(
        "serve",
        help="serving-layer containment smoke: valid, malformed, past-deadline, "
             "NaN-chaos, and warm-reload traffic through the forecast server",
    )
    _add_dataset_args(serve)
    _add_obs_args(serve)
    serve.add_argument("--requests", type=int, default=8,
                       help="healthy requests in the first phase")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission bound (ServiceOverloadedError beyond it)")
    serve.add_argument("--max-batch", type=int, default=4,
                       help="micro-batch coalescing budget")
    serve.add_argument("--failure-threshold", type=int, default=2,
                       help="consecutive failing batches before the breaker opens")
    serve.add_argument("--cooldown", type=float, default=0.25,
                       help="seconds the breaker stays open before half-open probing")
    serve.add_argument("--checkpoint-dir", default="artifacts/serve",
                       help="directory for the warm-reload scenario checkpoints")
    serve.add_argument("--compile", action="store_true",
                       help="serve through the capture/replay engine: one plan "
                            "per micro-batch shape bucket, bitwise-identical "
                            "predictions (docs/engine.md)")
    serve.set_defaults(fn=cmd_serve, nodes=6, days=5,
                       hidden=8, node_dim=4, time_dim=4, layers=1)

    serve_fleet = sub.add_parser(
        "serve-fleet",
        help="fleet chaos smoke: sharded/replicated serving with a replica "
             "crash, a one-shard brownout, and rolling N-1 reloads",
    )
    _add_dataset_args(serve_fleet)
    _add_obs_args(serve_fleet)
    serve_fleet.add_argument("--requests", type=int, default=8,
                             help="requests per scenario phase")
    serve_fleet.add_argument("--shards", type=int, default=2,
                             help="node-partition shards")
    serve_fleet.add_argument("--replicas", type=int, default=2,
                             help="replicas per shard")
    serve_fleet.add_argument("--queue-depth", type=int, default=64)
    serve_fleet.add_argument("--max-batch", type=int, default=4)
    serve_fleet.add_argument("--replica-timeout", type=float, default=1.0,
                             help="seconds before an unanswered dispatch fails over")
    serve_fleet.add_argument("--hedge-after", type=float, default=0.5,
                             help="seconds before a dispatch is hedged to the "
                                  "next replica in the ring")
    serve_fleet.add_argument("--brownout-delay", type=float, default=0.2,
                             help="SlowModel delay injected into one shard")
    serve_fleet.add_argument("--brownout-deadline", type=float, default=1.5,
                             help="request deadline budget during the brownout")
    serve_fleet.add_argument("--checkpoint-dir", default="artifacts/serve-fleet",
                             help="directory for the rolling-reload checkpoints")
    serve_fleet.add_argument("--procs", action="store_true",
                             help="run the kill-based chaos tier instead: "
                                  "process-isolated replicas over the socket "
                                  "transport, real SIGKILL mid-batch, a wedged "
                                  "child ignoring SIGTERM, crash-loop parking, "
                                  "and corrupt wire frames (docs/serving.md)")
    serve_fleet.add_argument("--lockorder", default=None, metavar="PATH",
                             help="install the runtime lock-order sanitizer and "
                                  "export the witness graph (JSONL) to PATH; any "
                                  "acquisition-order cycle or lock held across a "
                                  "chaos/fault checkpoint fails the smoke")
    serve_fleet.set_defaults(fn=cmd_serve_fleet, nodes=8, days=5,
                             hidden=8, node_dim=4, time_dim=4, layers=1)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-loop serving benchmark: throughput and latency percentiles",
    )
    _add_dataset_args(bench_serve)
    _add_obs_args(bench_serve)
    bench_serve.add_argument("--requests", type=int, default=64)
    bench_serve.add_argument("--max-batch", type=int, default=8)
    bench_serve.add_argument("--queue-depth", type=int, default=128)
    bench_serve.add_argument("--out", default=None, metavar="PATH",
                             help="write the machine-readable JSON result here")
    bench_serve.add_argument("--fleet", action="store_true",
                             help="target a sharded fleet and ramp closed-loop "
                                  "concurrency to find max sustainable QPS "
                                  "under the latency SLO")
    bench_serve.add_argument("--shards", type=int, default=2,
                             help="fleet shards (with --fleet)")
    bench_serve.add_argument("--replicas", type=int, default=2,
                             help="replicas per shard (with --fleet)")
    bench_serve.add_argument("--concurrency", default="1,2,4,8",
                             help="comma-separated closed-loop concurrency "
                                  "levels to ramp through (with --fleet)")
    bench_serve.add_argument("--slo-p95-ms", type=float, default=250.0,
                             help="p95 latency objective defining 'sustainable'")
    bench_serve.add_argument("--max-shed-rate", type=float, default=0.01,
                             help="max tolerated shed+reject fraction per level")
    bench_serve.add_argument("--deadline-ms", type=float, default=2000.0,
                             help="per-request deadline budget (with --fleet)")
    bench_serve.set_defaults(fn=cmd_bench_serve, nodes=6, days=5,
                             hidden=8, node_dim=4, time_dim=4, layers=1)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: AST lint over src/repro plus symbolic shape "
             "and gradient-flow checks over the whole model catalog",
    )
    analyze.add_argument("--rules", default=None,
                         help="comma-separated rule-id prefixes to run "
                              "(e.g. 'RL' or 'SH001,GF'); default: all rules")
    analyze.add_argument("--paths", nargs="*", default=None,
                         help="files/directories to lint (default: src/repro)")
    analyze.add_argument("--root", default=".",
                         help="repo root findings are reported relative to")
    analyze.add_argument("--json", default=None, metavar="PATH",
                         help="also write the machine-readable report to PATH")
    analyze.add_argument("--baseline", default="analyze-baseline.json",
                         help="accepted-findings file; new findings gate, "
                              "baselined ones don't")
    analyze.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline to accept every current finding")
    analyze.add_argument("--fail-on", default="error",
                         choices=["info", "warning", "error", "never"],
                         help="exit 1 when a NEW finding at/above this severity "
                              "exists (default: error)")
    analyze.add_argument("--no-models", action="store_true",
                         help="skip the symbolic model checks (lint only)")
    analyze.add_argument("--fix", action="store_true",
                         help="apply the mechanical autofixes (RL003 "
                              "write_text->atomic_write_text, RL006 silent "
                              "except->logged handler) before linting")
    analyze.add_argument("--changed-only", action="store_true",
                         help="lint only files changed vs git HEAD "
                              "(fast pre-commit mode; skips model checks)")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--quiet", action="store_true",
                         help="suppress console output (exit code still gates)")
    analyze.set_defaults(fn=cmd_analyze)

    verify = sub.add_parser(
        "verify",
        help="run the correctness harness (reference cross-checks, gradient "
             "oracle, golden trace) outside pytest",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--sample", type=int, default=8,
                        help="finite-difference coordinates per parameter "
                             "(0 = exhaustive)")
    verify.add_argument("--golden", default="tests/golden/tiny_tgcrn_loss.json",
                        help="golden loss-curve fixture to compare against")
    verify.add_argument("--update-golden", action="store_true",
                        help="regenerate the golden fixture instead of comparing")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress console output (exit code still reports pass/fail)")
    verify.set_defaults(fn=cmd_verify)

    compile_smoke = sub.add_parser(
        "compile-smoke",
        help="train tiny TGCRN eager and compiled; gate on bitwise-identical "
             "loss curves and write an epoch-time artifact (docs/engine.md)",
    )
    compile_smoke.add_argument("--epochs", type=int, default=3)
    compile_smoke.add_argument("--seed", type=int, default=0)
    compile_smoke.add_argument("--nodes", type=int, default=4)
    compile_smoke.add_argument("--days", type=int, default=4)
    compile_smoke.add_argument("--hidden", type=int, default=8)
    compile_smoke.add_argument("--out", default="compile_smoke.json", metavar="PATH",
                               help="JSON artifact with eager/compiled epoch "
                                    "times and the match verdict")
    compile_smoke.add_argument("--quiet", action="store_true",
                               help="suppress console output (exit code still gates)")
    compile_smoke.set_defaults(fn=cmd_compile_smoke)

    obs_report = sub.add_parser(
        "obs-report",
        help="reconstruct span trees (completeness, per-stage latency, "
             "critical paths) and run the bench perf-regression sentinel",
    )
    obs_report.add_argument("--spans", default=None, metavar="PATH",
                            help="span JSONL stream (from --spans-jsonl or a "
                                 "SpanCollector)")
    obs_report.add_argument("--bench-current", default=None, metavar="PATH",
                            help="fresh bench_table8_cost artifact to judge")
    obs_report.add_argument("--bench-history", default=None, metavar="PATH",
                            help="committed bench history to compare against")
    obs_report.add_argument("--threshold", type=float, default=2.0,
                            help="normalized per-model slowdown that counts as "
                                 "a regression (default 2.0)")
    obs_report.add_argument("--out", default=None, metavar="PATH",
                            help="write the machine-readable JSON report here")
    obs_report.add_argument("--fail-on", default="never",
                            choices=["never", "incomplete", "regression", "any"],
                            help="exit 1 on incomplete span trees and/or bench "
                                 "regressions (default: never)")
    obs_report.add_argument("--quiet", action="store_true",
                            help="suppress console output (exit code still gates)")
    obs_report.set_defaults(fn=cmd_obs_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
