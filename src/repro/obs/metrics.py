"""A tiny metrics registry: counters, gauges, histograms, timers → JSONL.

One schema for every emitter (trainer, benchmarks, CLI)::

    {"ts": 1720000000.0, "run": "train-hzmetro", "counters": {...},
     "gauges": {...}, "histograms": {"epoch_seconds": {"count": 8, ...}}}

Usage::

    from repro.obs import MetricsRegistry

    m = MetricsRegistry(run="train-hzmetro")
    m.counter("batches").inc()
    m.gauge("lr").set(1e-3)
    with m.timer("epoch"):
        ...
    m.emit("metrics.jsonl")     # appends one JSONL record
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from pathlib import Path


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for signed values")
        self.value += amount


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary (count/sum/min/max/mean/std/last) of observations.

    Also keeps a bounded ring of the most recent ``sample_size``
    observations so :meth:`quantile` can report p50/p95-style latency
    percentiles without unbounded memory — recency-biased by design, the
    window that matters for serving dashboards.
    """

    __slots__ = ("count", "total", "sumsq", "low", "high", "last",
                 "sample_size", "_sample")

    def __init__(self, sample_size: int = 512):
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.low = math.inf
        self.high = -math.inf
        self.last = float("nan")
        self.sample_size = sample_size
        self._sample: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        self.low = min(self.low, value)
        self.high = max(self.high, value)
        self.last = value
        if self.sample_size > 0:
            if len(self._sample) >= self.sample_size:
                # This is the count-th observation (count already
                # incremented), so the ring slot is (count - 1) mod size —
                # without the -1 the first slot is skipped on wraparound
                # and keeps its stale oldest value for a whole extra lap.
                self._sample[(self.count - 1) % self.sample_size] = value
            else:
                self._sample.append(value)

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the retained sample window.

        ``q`` in [0, 1]; NaN before any observation.  The boundaries are
        exact over *all* observations, not just the sample window:
        ``q=0.0`` returns the true minimum and ``q=1.0`` the true
        maximum, so tail reporting never understates an outlier that has
        already rotated out of the ring.  A single-sample histogram
        returns that sample for every ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.count:
            return float("nan")
        if q == 0.0:
            return self.low
        if q == 1.0:
            return self.high
        if not self._sample:  # sample_size=0: summary-only histogram
            return float("nan")
        ordered = sorted(self._sample)
        position = q * (len(ordered) - 1)
        lo = int(math.floor(position))
        hi = min(lo + 1, len(ordered) - 1)
        fraction = position - lo
        return ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction

    def percentiles(self) -> dict:
        """The standard p50/p95/p99 dict used across serve/bench/report."""
        return {"p50": self.quantile(0.5), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        if not self.count:
            return float("nan")
        variance = max(self.sumsq / self.count - self.mean ** 2, 0.0)
        return math.sqrt(variance)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.low if self.count else float("nan"),
            "max": self.high if self.count else float("nan"),
            "mean": self.mean,
            "std": self.std,
            "last": self.last,
            **self.percentiles(),
        }


class MetricsRegistry:
    """Get-or-create store of named metrics with JSONL emission."""

    def __init__(self, run: str | None = None):
        self.run = run
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access --------------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    @contextmanager
    def timer(self, name: str):
        """Time a block into the histogram ``name`` (seconds)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    # -- emission ------------------------------------------------------- #

    def snapshot(self) -> dict:
        """One JSON-ready record of every metric's current state."""
        record = {
            "ts": time.time(),  # analyze: allow[RL009] wall timestamp for correlation, not a duration
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.summary() for k, h in self._histograms.items()},
        }
        if self.run is not None:
            record["run"] = self.run
        return record

    def emit(self, path: str | Path) -> dict:
        """Append one snapshot record to a JSONL file; returns the record."""
        record = self.snapshot()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(json.dumps(record, allow_nan=True) + "\n")
        return record

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL file (as written by ``emit`` / ``RunLogger``)."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
