"""Tests for recurrent cells and sequence wrappers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, mse_loss, randn, zeros
from repro.nn import GRU, LSTM, Adam, GRUCell, LSTMCell


class TestGRUCell:
    def test_shape(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        h = cell(randn(4, 3, rng=rng), zeros(4, 5))
        assert h.shape == (4, 5)

    def test_hidden_bounded(self, rng):
        cell = GRUCell(3, 5, rng=rng)
        h = zeros(2, 5)
        for _ in range(20):
            h = cell(randn(2, 3, rng=rng), h)
        assert (np.abs(h.data) <= 1.0 + 1e-9).all()

    def test_gradient(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        x = randn(2, 2, rng=rng)
        h0 = randn(2, 3, rng=rng, requires_grad=True)
        check_gradients(lambda: cell(x, h0).sum(), [h0] + cell.parameters(), rtol=1e-3)


class TestLSTMCell:
    def test_shapes(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        h, c = cell(randn(4, 3, rng=rng), (zeros(4, 5), zeros(4, 5)))
        assert h.shape == (4, 5)
        assert c.shape == (4, 5)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        np.testing.assert_allclose(cell.bias.data[5:10], 1.0)

    def test_gradient(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        x = randn(2, 2, rng=rng)
        h0 = randn(2, 3, rng=rng, requires_grad=True)
        c0 = randn(2, 3, rng=rng, requires_grad=True)
        check_gradients(lambda: cell(x, (h0, c0))[0].sum(), [h0, c0], rtol=1e-3)


class TestSequenceWrappers:
    @pytest.mark.parametrize("cls", [GRU, LSTM])
    def test_output_shapes(self, cls, rng):
        net = cls(3, 6, num_layers=2, rng=rng)
        out, state = net(randn(4, 7, 3, rng=rng))
        assert out.shape == (4, 7, 6)

    def test_gru_state_continuity(self, rng):
        """Running 2 steps at once equals running 1+1 with carried state."""
        net = GRU(2, 4, rng=rng)
        x = randn(3, 2, 2, rng=rng)
        full, _ = net(x)
        first, state = net(x[:, 0:1, :])
        second, _ = net(x[:, 1:2, :], state)
        np.testing.assert_allclose(full.data[:, 1], second.data[:, 0], atol=1e-10)

    def test_lstm_state_continuity(self, rng):
        net = LSTM(2, 4, rng=rng)
        x = randn(3, 2, 2, rng=rng)
        full, _ = net(x)
        _, state = net(x[:, 0:1, :])
        second, _ = net(x[:, 1:2, :], state)
        np.testing.assert_allclose(full.data[:, 1], second.data[:, 0], atol=1e-10)

    def test_lstm_learns_to_remember_first_input(self, rng):
        """Convergence check: recall x[0] after 5 steps of noise."""
        net = LSTM(1, 16, rng=rng)
        from repro.nn import Linear

        head = Linear(16, 1, rng=rng)
        params = net.parameters() + head.parameters()
        opt = Adam(params, lr=0.01)
        losses = []
        for step in range(150):
            x = rng.normal(size=(16, 6, 1))
            target = x[:, 0, :]
            opt.zero_grad()
            out, _ = net(Tensor(x))
            loss = mse_loss(head(out[:, -1, :]), Tensor(target))
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < 0.5 * np.mean(losses[:10])
