"""Tests for the dataset split protocol (paper §IV-A-1 partitions)."""

import numpy as np
import pytest

from repro.data import load_task
from repro.data.datasets import SPECS, _split_fractions


class TestSplitFractions:
    def test_hzmetro_day_counts(self):
        """Paper re-split: Jan 1-19 train / Jan 20-21 val / rest test."""
        train, val = _split_fractions(SPECS["hzmetro"], days=25)
        assert train == pytest.approx(19 / 25)
        assert val == pytest.approx(2 / 25)

    def test_fraction_specs_pass_through(self):
        train, val = _split_fractions(SPECS["nyc_bike"], days=28)
        assert train == pytest.approx(0.7)
        assert val == pytest.approx(0.15)

    def test_shmetro_62_9_20(self):
        train, val = _split_fractions(SPECS["shmetro"], days=92)
        assert train == pytest.approx(62 / 91)
        assert val == pytest.approx(9 / 91)


class TestSplitRealization:
    def test_hzmetro_split_proportions(self):
        task = load_task("hzmetro", num_nodes=6, seed=0)  # full 25-day calendar
        steps = task.dataset.num_steps
        train_steps = task.train.time_indices[-1, -1] + 1
        assert train_steps / steps == pytest.approx(19 / 25, abs=0.02)

    def test_no_window_straddles_split_boundaries(self):
        """Day-exact splitting windows each segment separately, so no
        training window may contain validation-period steps."""
        task = load_task("hzmetro", num_nodes=6, num_days=10, seed=0)
        train_max = task.train.time_indices.max()
        val_min = task.val.time_indices.min()
        assert train_max < val_min

    def test_window_counts_account_for_boundary_loss(self):
        """Each segment loses P+Q-1 windows relative to naive sliding."""
        task = load_task("hzmetro", num_nodes=6, num_days=10, seed=0)
        span = task.history + task.horizon
        total_steps = task.dataset.num_steps
        total_windows = len(task.train) + len(task.val) + len(task.test)
        naive = total_steps - span + 1
        assert total_windows == naive - 2 * (span - 1)
