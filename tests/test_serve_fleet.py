"""ForecastFleet: sharding, routing, failover, hedging, deadlines, traces.

Everything runs on an injected :class:`FakeClock` with ``jitter=0``
backoff, so retry schedules, timeouts, and hedges are exact — no test
sleeps.  Replica faults are staged through the router-side seams
(``kill``/``pause``) rather than thread timing.
"""

import os
import time

import numpy as np
import pytest

from repro.core import TGCRN
from repro.graph import partition_nodes
from repro.obs import MetricsRegistry
from repro.obs.report import assemble_traces, check_fleet_traces
from repro.obs.spans import collect_spans
from repro.resilience import Backoff, RestartPolicy
from repro.serve import (
    ConsistentHashRing,
    DeadlineExceededError,
    FleetOverloadedError,
    ForecastFleet,
    InvalidRequestError,
)
from repro.training import default_tgcrn_kwargs
from repro.verify import named_rng


@pytest.fixture(autouse=True)
def lockorder_sanitizer():
    """Run every fleet test under the lock-order sanitizer.

    Any two tests' threads taking fleet/server locks in opposite orders
    — or a replica kill/pause seam firing while a lock is held — fails
    the test at teardown, whether or not the schedule deadlocked here.
    """
    from repro.analyze import LockOrderSanitizer

    sanitizer = LockOrderSanitizer().install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
    sanitizer.check()


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _factory(sub_task, shard_id, replica_id):
    return TGCRN(
        **default_tgcrn_kwargs(sub_task, hidden_dim=4, node_dim=3, time_dim=3,
                               num_layers=1),
        rng=named_rng(3, f"fleet-{replica_id}"),
    )


def _payload(task, i, rid=None, **extra):
    j = i % len(task.test)
    return {"window": task.test.inputs[j],
            "time_index": task.test.time_indices[j],
            "id": rid or f"req-{i}", **extra}


def _make_fleet(task, clock, **overrides):
    kwargs = dict(
        num_shards=2, replicas_per_shard=2, queue_depth=8, max_batch=4,
        max_attempts=3, backoff=Backoff(base=0.01, factor=2.0, jitter=0.0),
        replica_timeout=1.0, clock=clock, slo=False,
        metrics=MetricsRegistry(run="fleet-test"),
    )
    kwargs.update(overrides)
    return ForecastFleet(task, _factory, **kwargs)


def _run(fleet, clock, want, step=0.05, rounds=200):
    """Pump the router on the fake clock until ``want`` responses land.

    Reads the response sink, so answers produced by earlier
    ``process_once`` calls in the same test are counted too.
    """
    collected = []
    for _ in range(rounds):
        fleet.process_once(clock())
        collected.extend(fleet.take_responses())
        if len(collected) >= want:
            return collected
        clock.advance(step)
    raise AssertionError(f"only {len(collected)}/{want} responses after {rounds} rounds")


def _make_proc_fleet(task, **overrides):
    """Process-transport twin of ``_make_fleet``: real clock, real kills.

    The supervisor's heartbeat watchdog is parked at 30 s so a wedged
    replica stays wedged for the duration of a test (mirroring the
    thread-mode ``pause`` seam) instead of being TERM/KILL-cycled out
    from under the assertions; liveness (dead process -> restart) is
    unaffected.
    """
    kwargs = dict(
        num_shards=2, replicas_per_shard=2, queue_depth=8, max_batch=4,
        max_attempts=3, backoff=Backoff(base=0.01, factor=2.0, jitter=0.0),
        replica_timeout=0.6, slo=False,
        metrics=MetricsRegistry(run="fleet-proc-test"),
        transport="process",
        restart_policy=RestartPolicy(max_restarts=3, window_s=10.0,
                                     ready_deadline_s=15.0,
                                     heartbeat_timeout_s=30.0,
                                     term_deadline_s=1.0),
        proc_kwargs={"heartbeat_interval": 0.05, "ack_timeout": 2.0,
                     "ready_timeout": 60.0},
    )
    kwargs.update(overrides)
    return ForecastFleet(task, _factory, **kwargs)


def _run_real(fleet, want, budget=30.0):
    """Real-clock pump loop for process-transport fleets."""
    collected = []
    end = time.monotonic() + budget
    while time.monotonic() < end:
        fleet.process_once()
        collected.extend(fleet.take_responses())
        if len(collected) >= want:
            return collected
        time.sleep(0.005)
    raise AssertionError(f"only {len(collected)}/{want} responses after {budget}s")


def _assert_no_orphans(pids):
    for pid in pids:
        if pid is None:
            continue
        try:
            os.kill(pid, 0)
        except OSError:
            continue  # gone entirely
        try:
            with open(f"/proc/{pid}/stat") as fh:
                state = fh.read().rsplit(")", 1)[1].split()[0]
        except OSError:
            continue
        assert state == "Z", f"replica pid {pid} survived fleet.stop()"


def _counter(fleet, name):
    return int(fleet.metrics.counter(name).value)


@pytest.fixture
def clock():
    return FakeClock(t=100.0)


@pytest.fixture
def fleet(tiny_task, clock):
    return _make_fleet(tiny_task, clock)


def _assert_contained(task, responses):
    """The zero-wrong-answers contract: model, marked fallback, or shed."""
    for r in responses:
        if r.source == "shed":
            assert r.prediction is None and r.degraded
            continue
        assert r.source in ("model", "mixed", "historical_average")
        assert r.prediction.shape == (task.horizon, task.num_nodes, task.out_dim)
        assert np.all(np.isfinite(r.prediction))
        assert r.degraded == (r.source != "model")
        assert set(r.shard_sources.values()) <= {"model", "historical_average"}


class TestTopology:
    def test_shards_cover_nodes_exactly_once(self, tiny_task, fleet):
        covered = sorted(int(n) for s in fleet.shards for n in s.nodes)
        assert covered == list(range(tiny_task.num_nodes))
        assert [len(s.replicas) for s in fleet.shards] == [2, 2]
        assert [r.id for r in fleet.shards[0].replicas] == ["s0r0", "s0r1"]

    def test_graph_aware_partition_beats_contiguous_cut(self, tiny_task, clock):
        # Two 4-node cliques, nodes interleaved so the contiguous split
        # is maximally wrong; the graph-aware partition recovers them.
        n = tiny_task.num_nodes
        adj = np.zeros((n, n))
        groups = [list(range(0, n, 2)), list(range(1, n, 2))]
        for group in groups:
            for a in group:
                for b in group:
                    if a != b:
                        adj[a, b] = 1.0
        fleet = _make_fleet(tiny_task, clock, adjacency=adj)
        assert fleet.partition.cut_fraction == 0.0
        assert sorted(sorted(s) for s in fleet.partition.shards) == sorted(groups)

    def test_explicit_partition_and_coverage_validation(self, tiny_task, clock):
        n = tiny_task.num_nodes
        fleet = _make_fleet(tiny_task, clock,
                            partition=[list(range(n // 2)), list(range(n // 2, n))])
        assert [len(s.nodes) for s in fleet.shards] == [n // 2, n // 2]
        with pytest.raises(ValueError, match="cover every node"):
            _make_fleet(tiny_task, clock, partition=[[0, 1], [2, 3]])

    def test_partition_nodes_is_deterministic(self, tiny_task):
        rng = np.random.default_rng(11)
        adj = rng.random((tiny_task.num_nodes,) * 2)
        assert partition_nodes(adj, 2) == partition_nodes(adj, 2)


class TestConsistentHashRing:
    KEYS = [f"key-{i}" for i in range(1000)]

    def test_owner_is_deterministic_and_successors_cover_members(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.owner("x") == ring.owner("x")
        chain = ring.successors("x")
        assert sorted(chain) == ["a", "b", "c"]
        assert chain[0] == ring.owner("x")

    def test_remove_moves_only_the_removed_members_keys(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {k: ring.owner(k) for k in self.KEYS}
        ring.remove("c")
        after = {k: ring.owner(k) for k in self.KEYS}
        moved = [k for k in self.KEYS if before[k] != after[k]]
        # Consistent hashing: only keys the departed member owned remap.
        assert all(before[k] == "c" for k in moved)
        assert 0.10 < len(moved) / len(self.KEYS) < 0.45

    def test_add_steals_a_bounded_fraction(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {k: ring.owner(k) for k in self.KEYS}
        ring.add("e")
        after = {k: ring.owner(k) for k in self.KEYS}
        moved = [k for k in self.KEYS if before[k] != after[k]]
        assert all(after[k] == "e" for k in moved)
        assert 0.05 < len(moved) / len(self.KEYS) < 0.40

    def test_duplicate_and_missing_members_raise(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(KeyError):
            ring.remove("zz")
        with pytest.raises(KeyError):
            ConsistentHashRing([]).owner("x")


class TestServing:
    def test_healthy_requests_answered_entirely_by_models(self, tiny_task, fleet, clock):
        ids = [fleet.submit(_payload(tiny_task, i), now=clock()) for i in range(5)]
        responses = _run(fleet, clock, want=5)
        assert sorted(r.request_id for r in responses) == sorted(ids)
        for r in responses:
            assert r.source == "model" and not r.degraded
            assert r.shard_sources == {0: "model", 1: "model"}
        _assert_contained(tiny_task, responses)
        assert _counter(fleet, "fleet.model") == 5

    def test_routing_follows_the_ring_owner(self, tiny_task, fleet, clock):
        rid = "pinned-request"
        owner = fleet.shards[0].ring.owner(rid)
        for rep in fleet.shards[0].replicas:  # park the shard so subs queue
            rep.pause()
        fleet.submit(_payload(tiny_task, 0, rid=rid), now=clock())
        fleet.process_once(clock())
        holder = fleet.replica(owner)
        assert len(holder.server.queue) == 1
        others = [r for r in fleet.shards[0].replicas if r.id != owner]
        assert all(len(r.server.queue) == 0 for r in others)

    def test_invalid_and_doa_requests_rejected_at_admission(self, tiny_task, fleet, clock):
        with pytest.raises(InvalidRequestError):
            fleet.submit({"window": "nope"}, now=clock())
        with pytest.raises(DeadlineExceededError):
            fleet.submit(_payload(tiny_task, 0, deadline=clock() - 1.0), now=clock())
        assert _counter(fleet, "fleet.rejected") == 2


class TestFailover:
    def test_killed_replica_fails_over_to_model_answer(self, tiny_task, fleet, clock):
        victim = fleet.replicas[0]
        victim.pause()  # wedge first, so dispatches land and sit there
        ids = [fleet.submit(_payload(tiny_task, i, rid=f"crash-{i}"), now=clock())
               for i in range(6)]
        victim_owned = [rid for rid in ids
                        if fleet.shards[0].ring.owner(rid) == victim.id]
        assert victim_owned, "hash spread left the victim idle; widen the batch"
        fleet.process_once(clock())  # dispatch: victim now holds its share
        victim.kill()                # and dies holding it
        responses = _run(fleet, clock, want=6)
        assert len(responses) == 6
        assert all(r.source == "model" for r in responses)
        _assert_contained(tiny_task, responses)
        assert _counter(fleet, "fleet.failovers") >= len(victim_owned)
        assert _counter(fleet, "fleet.retries") >= len(victim_owned)

    def test_whole_shard_down_serves_marked_fallback_slice(self, tiny_task, fleet, clock):
        for rep in fleet.shards[0].replicas:
            rep.kill()
        fleet.submit(_payload(tiny_task, 0), now=clock())
        (response,) = _run(fleet, clock, want=1)
        assert response.source == "mixed" and response.degraded
        assert response.shard_sources == {0: "historical_average", 1: "model"}
        assert np.all(np.isfinite(response.prediction))
        assert "no replica available" in response.reason
        assert _counter(fleet, "fleet.shard_fallbacks") == 1

    def test_retries_are_bounded_and_backoff_scheduled(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, replica_timeout=0.1,
                            backoff=Backoff(base=0.01, factor=2.0, jitter=0.0))
        for rep in fleet.shards[1].replicas:  # the whole shard wedges
            rep.pause()
        fleet.submit(_payload(tiny_task, 0), now=clock())
        (response,) = _run(fleet, clock, want=1, step=0.05)
        # attempts 1..max_attempts all time out; the first two reschedule
        # (retries), the last exhausts the budget into the marked fallback.
        assert response.source == "mixed"
        assert response.shard_sources[1] == "historical_average"
        assert response.retries == fleet.max_attempts - 1
        assert _counter(fleet, "fleet.failovers") == fleet.max_attempts
        assert "replica timeout" in response.reason

    def test_retry_waits_out_the_backoff_delay(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, replica_timeout=0.1,
                            backoff=Backoff(base=10.0, factor=1.0,
                                            max_delay=30.0, jitter=0.0))
        for rep in fleet.shards[0].replicas:
            rep.pause()
        fleet.submit(_payload(tiny_task, 0), now=clock())
        fleet.process_once(clock())          # dispatch
        clock.advance(0.2)
        fleet.process_once(clock())          # timeout -> retry in 10s
        t_retry = clock()
        sub = next(iter(fleet._entries.values())).subs[0]
        assert sub.status == "pending"
        assert sub.not_before == pytest.approx(t_retry + 10.0)
        # The wedged primary still holds the stale attempt — the router
        # cannot reach into a wedged process; only *new* dispatches count.
        queued_before = sum(len(r.server.queue) for r in fleet.shards[0].replicas)
        clock.advance(5.0)
        fleet.process_once(clock())          # still inside the backoff window
        assert sum(len(r.server.queue)
                   for r in fleet.shards[0].replicas) == queued_before
        clock.advance(6.0)
        fleet.process_once(clock())          # due: redispatched
        assert sum(len(r.server.queue)
                   for r in fleet.shards[0].replicas) == queued_before + 1


class TestHedging:
    def test_wedged_primary_is_hedged_and_the_hedge_wins(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, hedge_after=0.5, replica_timeout=30.0)
        rid = "hedge-me"
        for shard in fleet.shards:  # wedge every primary for this key
            fleet.replica(shard.ring.owner(rid)).pause()
        fleet.submit(_payload(tiny_task, 0, rid=rid), now=clock())
        fleet.process_once(clock())
        clock.advance(0.6)  # past hedge_after, far from replica_timeout
        responses = _run(fleet, clock, want=1)
        (response,) = responses
        assert response.source == "model" and response.hedged
        assert response.retries == 0
        assert _counter(fleet, "fleet.hedges") == 2
        assert _counter(fleet, "fleet.hedge_wins") == 2

    def test_no_hedge_before_the_threshold(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, hedge_after=5.0, replica_timeout=30.0)
        for rep in fleet.replicas:
            rep.pause()
        fleet.submit(_payload(tiny_task, 0), now=clock())
        fleet.process_once(clock())
        clock.advance(1.0)
        fleet.process_once(clock())
        assert _counter(fleet, "fleet.hedges") == 0


class TestBackpressureAndDeadlines:
    def test_saturated_shard_sheds_at_admission(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, backpressure_limit=2)
        for rep in fleet.replicas:
            rep.pause()
        for i in range(2):
            fleet.submit(_payload(tiny_task, i), now=clock())
        with pytest.raises(FleetOverloadedError) as excinfo:
            fleet.submit(_payload(tiny_task, 9), now=clock())
        assert excinfo.value.shard_id in (0, 1)
        assert "saturated" in str(excinfo.value)
        assert _counter(fleet, "fleet.shed_backpressure") == 1

    def test_deadline_budget_propagates_minus_gather_margin(self, tiny_task, clock):
        fleet = _make_fleet(tiny_task, clock, gather_margin=0.25)
        for rep in fleet.replicas:
            rep.pause()
        deadline = clock() + 2.0
        fleet.submit(_payload(tiny_task, 0, deadline=deadline), now=clock())
        fleet.process_once(clock())
        queued = [req for rep in fleet.replicas
                  for req in rep.server.queue.clear()]
        assert len(queued) == 2  # one sub-request per shard
        assert all(req.deadline == pytest.approx(deadline - 0.25) for req in queued)

    def test_expired_request_is_shed_not_dropped(self, tiny_task, clock):
        # replica_timeout > deadline: the deadline expires while the
        # subs are still outstanding, hitting the shed path (a shorter
        # timeout would fail over into the marked fallback instead).
        fleet = _make_fleet(tiny_task, clock, replica_timeout=30.0)
        for rep in fleet.replicas:
            rep.pause()
        fleet.submit(_payload(tiny_task, 0, deadline=clock() + 1.0), now=clock())
        fleet.process_once(clock())
        clock.advance(1.5)
        (response,) = fleet.process_once(clock())
        assert response.source == "shed" and response.prediction is None
        assert response.deadline_missed
        assert set(response.shard_sources.values()) == {"unanswered"}
        assert _counter(fleet, "fleet.shed") == 1
        _assert_contained(tiny_task, [response])

    def test_draining_fleet_refuses_new_work(self, tiny_task, fleet, clock):
        fleet.stop(drain=True)
        with pytest.raises(FleetOverloadedError, match="draining"):
            fleet.submit(_payload(tiny_task, 0), now=clock())
        assert not fleet.ready()


class TestHealthAndReadiness:
    def test_full_redundancy_is_ok_and_ready(self, fleet):
        report = fleet.health()
        assert report["status"] == "ok"
        assert [s["healthy_replicas"] for s in report["shards"]] == [2, 2]
        assert fleet.ready()

    def test_one_dead_replica_degrades_but_stays_ready(self, fleet):
        fleet.replicas[0].kill()
        assert fleet.health()["status"] == "degraded"
        assert fleet.ready()

    def test_empty_shard_is_unavailable_and_not_ready(self, fleet):
        for rep in fleet.shards[1].replicas:
            rep.kill()
        assert fleet.health()["status"] == "unavailable"
        assert not fleet.ready()
        for rep in fleet.shards[1].replicas:
            rep.revive()
        assert fleet.health()["status"] == "ok" and fleet.ready()


@pytest.mark.parametrize("transport", ["thread", "process"])
class TestChaosContainment:
    """Same fault matrix, both transports.

    Thread mode stays on the FakeClock with router-side fault seams;
    process mode runs real children on the real clock, so ``kill`` is a
    genuine SIGKILL and ``pause`` is a wedge RPC into the child.  The
    invariants asserted are identical.
    """

    def test_mixed_faults_never_produce_a_wrong_answer(self, tiny_task, transport):
        """Crash + wedge across shards: every answer is model, marked
        fallback, or an explicit shed — nothing silent, nothing bogus."""
        if transport == "thread":
            clock = FakeClock(t=100.0)
            fleet = _make_fleet(tiny_task, clock, replica_timeout=0.2,
                                hedge_after=0.1,
                                backoff=Backoff(base=0.01, factor=2.0, jitter=0.0))
        else:
            fleet = _make_proc_fleet(tiny_task, hedge_after=0.3)
        try:
            fleet.shards[0].replicas[0].kill()
            fleet.shards[1].replicas[0].pause()
            n = 8
            if transport == "thread":
                for i in range(n):
                    fleet.submit(_payload(tiny_task, i, deadline=clock() + 5.0),
                                 now=clock())
                responses = _run(fleet, clock, want=n, step=0.05)
            else:
                for i in range(n):
                    fleet.submit(_payload(tiny_task, i,
                                          deadline=time.monotonic() + 20.0))
                responses = _run_real(fleet, want=n)
            assert len(responses) == n
            _assert_contained(tiny_task, responses)
            answered = [r for r in responses if r.source != "shed"]
            assert answered, "every request shed: containment held but nothing served"
        finally:
            if transport == "process":
                pids = [getattr(rep.server, "pid", None) for rep in fleet.replicas]
                fleet.stop(drain=False)
                _assert_no_orphans(pids)

    def test_fleet_traces_are_complete_across_chaos(self, tiny_task, transport):
        if transport == "process":
            self._traces_process(tiny_task)
            return
        clock = FakeClock(t=100.0)
        with collect_spans() as collector:
            fleet = _make_fleet(tiny_task, clock, replica_timeout=0.2)
            fleet.submit(_payload(tiny_task, 0, rid="trace-ok"), now=clock())
            _run(fleet, clock, want=1)
            victim = fleet.replicas[0]
            victim.pause()
            fleet.submit(_payload(tiny_task, 1, rid="trace-crash"), now=clock())
            fleet.process_once(clock())
            victim.kill()
            _run(fleet, clock, want=1)
            for rep in fleet.replicas:  # everything wedged -> shed path
                if not rep.killed:
                    rep.pause()
            fleet.submit(_payload(tiny_task, 2, rid="trace-shed",
                                  deadline=clock() + 0.5), now=clock())
            fleet.process_once(clock())
            clock.advance(1.0)
            fleet.process_once(clock())
            # Un-wedge so the servers close out the stale work they
            # still hold (late responses); otherwise their replica-side
            # span trees are honestly — but unhelpfully — unfinished.
            for rep in fleet.replicas:
                rep.resume()
            for _ in range(5):
                fleet.process_once(clock())
                clock.advance(0.1)
        assert _counter(fleet, "fleet.late_responses") >= 1
        trees = assemble_traces(collector.records)
        fleet_check = check_fleet_traces(trees)
        assert fleet_check.total == 3
        assert fleet_check.incomplete == []
        assert fleet_check.complete == 3

    @staticmethod
    def _traces_process(tiny_task):
        """Cross-process variant: child span records ship back over the
        wire and must stitch into complete router->replica trees even
        when one child is SIGKILLed mid-flight and a request sheds."""
        with collect_spans() as collector:
            fleet = _make_proc_fleet(tiny_task)
            try:
                fleet.submit(_payload(tiny_task, 0, rid="trace-ok"))
                _run_real(fleet, want=1)
                victim = fleet.replicas[0]
                victim.pause()
                fleet.submit(_payload(tiny_task, 1, rid="trace-crash"))
                fleet.process_once()
                victim.kill()  # real SIGKILL with the sub possibly in flight
                _run_real(fleet, want=1)
                for rep in fleet.replicas:  # everything wedged -> shed path
                    if not rep.killed:
                        rep.pause()
                fleet.submit(_payload(tiny_task, 2, rid="trace-shed",
                                      deadline=time.monotonic() + 0.4))
                _run_real(fleet, want=1, budget=10.0)
                for rep in fleet.replicas:
                    rep.resume()
                # Pump until the un-wedged children flush their stale
                # work back (late responses carry the closing spans).
                end = time.monotonic() + 10.0
                while (_counter(fleet, "fleet.late_responses") < 1
                       and time.monotonic() < end):
                    fleet.process_once()
                    time.sleep(0.01)
                fleet.process_once()
            finally:
                pids = [getattr(rep.server, "pid", None) for rep in fleet.replicas]
                fleet.stop(drain=False)
                _assert_no_orphans(pids)
        assert _counter(fleet, "fleet.late_responses") >= 1
        trees = assemble_traces(collector.records)
        fleet_check = check_fleet_traces(trees)
        assert fleet_check.total == 3
        assert fleet_check.incomplete == []
        assert fleet_check.complete == 3
