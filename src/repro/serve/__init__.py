"""Fault-contained inference serving (docs/serving.md).

Four pillars:

* **request validation** — :mod:`.validation` checks schema, shape,
  dtype, finiteness, and scale drift against a :class:`RequestSpec`
  before any model code runs; violations raise a structured
  :class:`InvalidRequestError`;
* **admission control + micro-batching** — :mod:`.queueing` bounds the
  request queue (:class:`ServiceOverloadedError` when full), sheds
  past-deadline work on both ends, and coalesces compatible requests
  into one forward pass;
* **fault containment** — :mod:`.breaker` counts validation failures and
  timeouts per model and, once tripped, routes traffic to the
  historical-average fallback until a half-open probe proves the fault
  cleared;
* **lifecycle** — :mod:`.server` ties it together: a synchronous core
  (deterministic under test) with a worker thread, health/readiness
  probes, integrity-verified warm checkpoint reload with atomic model
  swap, and graceful drain.  Every admission/shed/trip/fallback/reload
  event emits through :mod:`repro.obs`.

Above the single server, :mod:`.fleet` scales the same contract out to a
sharded, replicated fleet: graph-partitioned node shards, consistent-hash
routing with per-replica circuit breakers, bounded retries with jittered
backoff, hedged requests, deadline budget propagation, backpressure
shedding, and rolling N-1 checkpoint reloads.

:mod:`.chaos` stages serve-side faults (NaN model, slow model, malformed
payloads) so tests prove every containment path fires.

:mod:`.proc` moves each fleet replica into its own OS process behind a
length-prefixed socket transport that speaks the identical router
contract — ``ForecastFleet(transport="process")`` gets real crash
isolation (SIGKILL-able children, supervised restarts, cross-process
span stitching) with zero router-logic changes.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerTransition, CircuitBreaker
from .chaos import NaNModel, SlowModel, malformed_payloads
from .fleet import (
    ConsistentHashRing,
    FleetOverloadedError,
    FleetResponse,
    ForecastFleet,
    Replica,
    ReplicaDownError,
)
from .proc import (
    ProcReplicaClient,
    ReplicaStartupError,
    WireCorruptFrameError,
    WireDesyncError,
)
from .queueing import (
    DeadlineExceededError,
    MicroBatcher,
    RequestQueue,
    ServiceOverloadedError,
)
from .server import ForecastResponse, ForecastServer
from .validation import (
    ForecastRequest,
    InvalidRequestError,
    RequestSpec,
    validate_request,
)

__all__ = [
    "BreakerTransition",
    "CLOSED",
    "CircuitBreaker",
    "ConsistentHashRing",
    "DeadlineExceededError",
    "FleetOverloadedError",
    "FleetResponse",
    "ForecastFleet",
    "ForecastRequest",
    "ForecastResponse",
    "ForecastServer",
    "HALF_OPEN",
    "InvalidRequestError",
    "MicroBatcher",
    "NaNModel",
    "OPEN",
    "ProcReplicaClient",
    "Replica",
    "ReplicaDownError",
    "ReplicaStartupError",
    "RequestQueue",
    "RequestSpec",
    "ServiceOverloadedError",
    "SlowModel",
    "WireCorruptFrameError",
    "WireDesyncError",
    "malformed_payloads",
    "validate_request",
]
