"""Deeper behavioral tests: each baseline must actually use its defining
mechanism, not just produce the right shapes."""

import numpy as np
import pytest

from repro.autodiff import Tensor, randn
from repro.baselines import (
    AGCRN,
    DCRNN,
    FCLSTM,
    GTS,
    GraphWaveNet,
    PVCGN,
    build_baseline,
)
from repro.baselines.cells import (
    DynamicGraphConv,
    FixedGraphGRUCell,
    MultiGraphGRUCell,
    SupportGraphConv,
)


class TestSupportGraphConv:
    def test_identity_hop_included(self, rng):
        """With zero supports-weights and identity input weights the layer
        reduces to a per-node linear map (the x term of Σ S_k x W_k)."""
        conv = SupportGraphConv([np.zeros((3, 3))], 2, 2, rng=rng)
        conv.weight.data[...] = 0.0
        conv.weight.data[:2] = np.eye(2)  # identity on the x block
        conv.bias.data[...] = 0.0
        x = randn(1, 3, 2, rng=rng)
        np.testing.assert_allclose(conv(x).data, x.data, atol=1e-12)

    def test_neighbour_aggregation(self, rng):
        """A one-hot support row makes node 0's conv see only node 1."""
        support = np.zeros((3, 3))
        support[0, 1] = 1.0
        conv = SupportGraphConv([support], 1, 1, rng=rng)
        conv.weight.data[...] = 0.0
        conv.weight.data[1] = 1.0  # only the S x block active
        conv.bias.data[...] = 0.0
        x = Tensor(np.array([[[10.0], [20.0], [30.0]]]))
        out = conv(x).data
        assert out[0, 0, 0] == pytest.approx(20.0)
        assert out[0, 2, 0] == pytest.approx(0.0)


class TestDynamicGraphConv:
    def test_hops_apply_adjacency_powers(self, rng):
        conv = DynamicGraphConv(1, 1, hops=2, rng=rng)
        conv.weight.data[...] = 0.0
        conv.weight.data[2] = 1.0  # pick out the A^2 x block
        conv.bias.data[...] = 0.0
        adjacency = Tensor(np.array([[[0.0, 1.0], [0.0, 0.0]]]))  # 0 <- 1
        x = Tensor(np.array([[[1.0], [2.0]]]))
        out = conv(x, adjacency).data
        # A^2 = 0 for this nilpotent adjacency -> output must be 0.
        np.testing.assert_allclose(out, 0.0, atol=1e-12)


class TestGRUCells:
    def test_fixed_cell_gate_split(self, rng):
        cell = FixedGraphGRUCell([np.eye(3)], 2, 4, rng=rng)
        h = cell(randn(2, 3, 2, rng=rng), randn(2, 3, 4, rng=rng).tanh())
        assert h.shape == (2, 3, 4)
        assert (np.abs(h.data) <= 1.0 + 1e-9).all()

    def test_multi_graph_cell_sums_contributions(self, rng):
        """With two identical graphs the gate pre-activations double
        relative to one graph when weights are mirrored."""
        graph = [np.eye(3)]
        single = MultiGraphGRUCell([graph], 1, 2, rng=np.random.default_rng(0))
        double = MultiGraphGRUCell([graph, graph], 1, 2, rng=np.random.default_rng(0))
        # mirror the single cell's weights into both branches of the double
        for i in (0, 1):
            double.gate_convs[i].weight.data[...] = single.gate_convs[0].weight.data
            double.gate_convs[i].bias.data[...] = single.gate_convs[0].bias.data
            double.candidate_convs[i].weight.data[...] = single.candidate_convs[0].weight.data
            double.candidate_convs[i].bias.data[...] = single.candidate_convs[0].bias.data
        x = randn(1, 3, 1, rng=rng)
        h = randn(1, 3, 2, rng=rng).tanh()
        out_single = single(x, h).data
        out_double = double(x, h).data
        assert not np.allclose(out_single, out_double)


class TestBaselineMechanisms:
    def test_fclstm_is_spatially_blind(self, rng):
        """Permuting nodes permutes FC-LSTM's *weights'* inputs, so with a
        freshly initialized net outputs change — but crucially the model
        has no graph: two nodes with identical history and weights tied
        produce identical outputs regardless of 'distance'."""
        model = FCLSTM(2, 1, 1, horizon=2, hidden_dim=8, num_layers=1,
                       rng=np.random.default_rng(0))
        x = Tensor(np.ones((1, 3, 2, 1)))
        out = model(x, None)
        assert out.shape == (1, 2, 2, 1)

    def test_dcrnn_diffusion_steps_affect_params(self, rng):
        a = DCRNN(np.eye(4), 1, 1, horizon=2, hidden_dim=8, num_layers=1,
                  max_diffusion_step=1, rng=np.random.default_rng(0))
        b = DCRNN(np.eye(4), 1, 1, horizon=2, hidden_dim=8, num_layers=1,
                  max_diffusion_step=3, rng=np.random.default_rng(0))
        assert b.num_parameters() > a.num_parameters()

    def test_agcrn_embedding_dim_scales_params(self):
        small = AGCRN(4, 1, 1, horizon=2, hidden_dim=8, embed_dim=2,
                      rng=np.random.default_rng(0))
        large = AGCRN(4, 1, 1, horizon=2, hidden_dim=8, embed_dim=8,
                      rng=np.random.default_rng(0))
        assert large.num_parameters() > small.num_parameters()

    def test_gwnet_receptive_field_grows_with_blocks(self, rng):
        model = GraphWaveNet(3, 1, 1, horizon=2, channels=8, num_blocks=3,
                             rng=np.random.default_rng(0))
        fields = [block.filter_conv.receptive_field for block in model.tcn_blocks]
        assert fields == sorted(fields)
        assert fields[-1] > fields[0]

    def test_pvcgn_rejects_empty_graph_list(self, rng):
        with pytest.raises(ValueError):
            PVCGN([], 1, 1, horizon=2, rng=rng)

    def test_gts_summarize_series_shape(self, rng):
        series = rng.normal(size=(50, 7, 2))
        summary = GTS.summarize_series(series)
        assert summary.shape == (7, 4)
        np.testing.assert_allclose(summary[:, :2], series.mean(axis=0))

    def test_gts_respects_node_count_from_features(self, rng):
        model = GTS(rng.normal(size=(5, 4)), 1, 1, horizon=2, hidden_dim=8, rng=rng)
        assert model.num_nodes == 5


class TestRegistryTrainSeries:
    def test_train_series_reconstruction(self, tiny_task):
        """_train_series must reproduce the exact scaled training range."""
        from repro.baselines.registry import _train_series

        series = _train_series(tiny_task)
        # first frame of the first window and last frame of the last window
        np.testing.assert_allclose(series[0], tiny_task.train.inputs[0, 0])
        np.testing.assert_allclose(series[-1], tiny_task.train.inputs[-1, -1])
        expected_len = len(tiny_task.train) + tiny_task.history - 1
        assert series.shape[0] == expected_len
