"""Module/Parameter system mirroring ``torch.nn.Module``.

Modules own named :class:`Parameter` tensors and child modules; they expose
``parameters()`` for optimizers, ``state_dict()`` for checkpointing, and a
train/eval switch consulted by stochastic layers (dropout).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autodiff import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by ``Module``."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child under a dynamic name (e.g. from a list)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "", _memo: set[int] | None = None) -> Iterator[tuple[str, Parameter]]:
        """Yield (path, parameter) pairs, visiting shared parameters once.

        Modules may be reachable through several attribute paths (e.g. a
        time encoder owned by both the model and its TagSL child); the
        memo guarantees each parameter appears exactly once — under its
        first-encountered path — so optimizers never double-step shared
        weights and ``num_parameters`` never double-counts them.
        """
        memo = _memo if _memo is not None else set()
        for name, param in self._parameters.items():
            if id(param) not in memo:
                memo.add(id(param))
                yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.", _memo=memo)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self, _memo: set[int] | None = None) -> Iterator["Module"]:
        """Yield self and all descendants, visiting shared modules once."""
        memo = _memo if _memo is not None else set()
        if id(self) in memo:
            return
        memo.add(id(self))
        yield self
        for child in self._modules.values():
            yield from child.modules(_memo=memo)

    def num_parameters(self) -> int:
        """Total number of trainable scalars (Table VIII's '# Parameters')."""
        return sum(p.size for p in self.parameters())

    def summary(self, max_depth: int = 2) -> str:
        """Parameter-count table grouped by submodule path.

        ``max_depth`` controls how deep the grouping goes (1 = direct
        children only); the final line is the Table VIII-style total.
        """
        groups: "OrderedDict[str, int]" = OrderedDict()
        for name, param in self.named_parameters():
            parts = name.split(".")
            key = ".".join(parts[: max_depth]) if len(parts) > max_depth else name
            groups[key] = groups.get(key, 0) + param.size
        width = max((len(k) for k in groups), default=10)
        lines = [f"{'module':<{width}}  {'# params':>10}", "-" * (width + 12)]
        for key, count in groups.items():
            lines.append(f"{key:<{width}}  {count:>10,d}")
        lines.append("-" * (width + 12))
        lines.append(f"{'total':<{width}}  {self.num_parameters():>10,d}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # modes / grads
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict((name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data[...] = value

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Hold an ordered list of sub-modules, registering each."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
