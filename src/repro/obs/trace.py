"""Op-level profiler for the autodiff engine.

Usage::

    from repro.obs import trace

    with trace() as tr:
        loss = model(x, t).sum()
        loss.backward()
    print(tr.table())                 # top-K hot-op table
    tr.export_chrome_trace("t.json")  # open in chrome://tracing / Perfetto

Three instrumentation channels feed one :class:`Tracer`:

* **forward wall-time** — while at least one trace is active, the hot
  ``Tensor`` methods (matmul, add, mul, ...) are swapped for timing
  wrappers.  Self-time is separated from child-time via a frame stack,
  so composites (``mean`` = sum·mul) don't double-bill their primitives.
* **op counts / bytes** — ``Tensor._make`` fires a hook on *every* op
  result (including module-level ops like ``concat`` and functional ops
  like ``softmax`` whose call sites hold direct references and therefore
  cannot be patched); the op name is derived from the backward closure's
  qualname.
* **backward wall-time** — ``Tensor.backward`` times each closure and
  reports it through a second hook, again attributed by qualname.

When no trace is active everything is restored: the methods are the
originals and both hooks are ``None``, so the disabled overhead is one
global None-check inside ``_make`` (far below the 5% budget).
"""

from __future__ import annotations

import contextlib
import functools
import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from ..autodiff.tensor import Tensor, set_backward_op_hook, set_make_hook
from ..ioutil import atomic_write_text

# ---------------------------------------------------------------------- #
# op-name resolution
# ---------------------------------------------------------------------- #

#: dunder method -> canonical op label
_CANONICAL = {
    "__add__": "add",
    "__radd__": "add",
    "__sub__": "sub",
    "__rsub__": "sub",
    "__mul__": "mul",
    "__rmul__": "mul",
    "__truediv__": "div",
    "__rtruediv__": "div",
    "__neg__": "neg",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "__rmatmul__": "matmul",
    "__getitem__": "getitem",
}

_NAME_CACHE: dict[str, str] = {}


def _closure_op_name(backward_fn) -> str:
    """Map a backward closure to its op label via the enclosing qualname.

    ``Tensor.__matmul__.<locals>.backward_fn`` -> ``matmul``,
    ``softmax.<locals>.backward_fn`` -> ``softmax``, etc.
    """
    if backward_fn is None:
        return "leaf"
    qual = getattr(backward_fn, "__qualname__", "") or "op"
    cached = _NAME_CACHE.get(qual)
    if cached is not None:
        return cached
    # The closure's immediately enclosing function sits before the *last*
    # "<locals>" marker (closures defined inside nested helpers included).
    name = qual
    parts = qual.split(".")
    for i in range(len(parts) - 1, 0, -1):
        if parts[i] == "<locals>":
            name = _CANONICAL.get(parts[i - 1], parts[i - 1].strip("_"))
            break
    _NAME_CACHE[qual] = name
    return name


# ---------------------------------------------------------------------- #
# per-op statistics
# ---------------------------------------------------------------------- #


@dataclass
class OpStats:
    """Accumulated statistics for one op label."""

    calls: int = 0                  # op results created (via Tensor._make)
    bytes_allocated: int = 0        # sum of output nbytes over all calls
    forward_calls: int = 0          # timed forward invocations (patched methods)
    forward_seconds: float = 0.0    # inclusive forward wall-time
    forward_self_seconds: float = 0.0  # forward time minus timed children
    backward_calls: int = 0
    backward_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Ranking key for the hot-op table (self fwd + bwd)."""
        return self.forward_self_seconds + self.backward_seconds


class Tracer:
    """Collects per-op statistics and Chrome-trace events for one region."""

    def __init__(self, max_events: int = 200_000):
        self.stats: dict[str, OpStats] = {}
        self.events: list[dict] = []
        self.max_events = max_events
        self.events_dropped = 0
        self.graph_nodes = 0            # total op results created
        self.bytes_allocated = 0        # total output bytes over all ops
        self.backward_passes = 0
        self.backward_total_seconds = 0.0
        # Per-plan replay timings reported by repro.autodiff.engine
        # (label -> count / total / min / max seconds).
        self.replays: dict[str, dict] = {}
        self._origin = perf_counter()
        self.wall_seconds = 0.0

    # -- recording (called by the module-level dispatchers) ------------- #

    def _stat(self, name: str) -> OpStats:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStats()
        return stat

    def _event(self, name: str, category: str, started: float, seconds: float) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append({
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": (started - self._origin) * 1e6,
            "dur": seconds * 1e6,
            "pid": 1,
            "tid": 1,
        })

    def _record_make(self, name: str, nbytes: int) -> None:
        stat = self._stat(name)
        stat.calls += 1
        stat.bytes_allocated += nbytes
        self.graph_nodes += 1
        self.bytes_allocated += nbytes

    def _record_forward(self, name: str, started: float, seconds: float, self_seconds: float) -> None:
        stat = self._stat(name)
        stat.forward_calls += 1
        stat.forward_seconds += seconds
        stat.forward_self_seconds += self_seconds
        self._event(name, "forward", started, seconds)

    def _record_backward(self, name: str, started: float, seconds: float) -> None:
        stat = self._stat(name)
        stat.backward_calls += 1
        stat.backward_seconds += seconds
        self._event(name, "backward", started, seconds)

    def _record_backward_pass(self, started: float, seconds: float) -> None:
        self.backward_passes += 1
        self.backward_total_seconds += seconds
        self._event("backward", "backward-pass", started, seconds)

    def _record_replay(self, label: str, started: float, seconds: float) -> None:
        entry = self.replays.get(label)
        if entry is None:
            entry = self.replays[label] = {
                "count": 0, "seconds": 0.0,
                "min_seconds": seconds, "max_seconds": seconds,
            }
        entry["count"] += 1
        entry["seconds"] += seconds
        entry["min_seconds"] = min(entry["min_seconds"], seconds)
        entry["max_seconds"] = max(entry["max_seconds"], seconds)
        self._event(f"replay:{label}", "replay", started, seconds)

    # -- reporting ------------------------------------------------------ #

    def hot_ops(self, top_k: int = 12) -> list[tuple[str, OpStats]]:
        """Ops ranked by self forward + backward wall-time, then by calls."""
        ranked = sorted(
            self.stats.items(),
            key=lambda item: (item[1].total_seconds, item[1].calls),
            reverse=True,
        )
        return ranked[:top_k]

    def table(self, top_k: int = 12) -> str:
        """Human-readable top-K hot-op table."""
        header = (
            f"{'op':<14} {'calls':>9} {'fwd ms':>9} {'fwd self':>9} "
            f"{'bwd ms':>9} {'MB out':>8}"
        )
        lines = [header, "-" * len(header)]
        for name, s in self.hot_ops(top_k):
            lines.append(
                f"{name:<14} {s.calls:>9,d} {s.forward_seconds * 1e3:>9.1f} "
                f"{s.forward_self_seconds * 1e3:>9.1f} {s.backward_seconds * 1e3:>9.1f} "
                f"{s.bytes_allocated / 1e6:>8.1f}"
            )
        lines.append(
            f"{'total':<14} {self.graph_nodes:>9,d} "
            f"{sum(s.forward_seconds for s in self.stats.values()) * 1e3:>9.1f} "
            f"{sum(s.forward_self_seconds for s in self.stats.values()) * 1e3:>9.1f} "
            f"{sum(s.backward_seconds for s in self.stats.values()) * 1e3:>9.1f} "
            f"{self.bytes_allocated / 1e6:>8.1f}"
        )
        lines.append(
            f"traced {self.wall_seconds:.2f}s wall, {self.backward_passes} backward "
            f"pass(es) totalling {self.backward_total_seconds * 1e3:.1f} ms"
        )
        for label, entry in sorted(self.replays.items()):
            lines.append(
                f"plan replays [{label}]: {entry['count']} × "
                f"{entry['seconds'] / entry['count'] * 1e3:.2f} ms avg "
                f"(min {entry['min_seconds'] * 1e3:.2f}, "
                f"max {entry['max_seconds'] * 1e3:.2f})"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """JSON-friendly snapshot of everything the tracer saw."""
        return {
            "wall_seconds": self.wall_seconds,
            "graph_nodes": self.graph_nodes,
            "bytes_allocated": self.bytes_allocated,
            "backward_passes": self.backward_passes,
            "backward_total_seconds": self.backward_total_seconds,
            "events": len(self.events),
            "events_dropped": self.events_dropped,
            "replays": {label: dict(entry) for label, entry in self.replays.items()},
            "ops": {
                name: {
                    "calls": s.calls,
                    "bytes_allocated": s.bytes_allocated,
                    "forward_calls": s.forward_calls,
                    "forward_seconds": s.forward_seconds,
                    "forward_self_seconds": s.forward_self_seconds,
                    "backward_calls": s.backward_calls,
                    "backward_seconds": s.backward_seconds,
                }
                for name, s in self.stats.items()
            },
        }

    @property
    def origin(self) -> float:
        """``perf_counter`` instant this trace started (event timebase).

        Pass it to :meth:`repro.obs.spans.SpanCollector.chrome_events`
        so causal spans and op events align in one merged trace.
        """
        return self._origin

    def chrome_trace(self, extra_events: list[dict] | None = None) -> dict:
        """Chrome-trace (``chrome://tracing``) JSON object.

        ``extra_events`` (e.g. span events from a
        :class:`~repro.obs.spans.SpanCollector`, converted against
        :attr:`origin`) are merged alongside the op events, so one trace
        shows request → batch → replay → individual ops.
        """
        events = list(self.events)
        if extra_events:
            events.extend(extra_events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str | Path,
                            extra_events: list[dict] | None = None) -> Path:
        """Write the (optionally merged) Chrome-trace JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(self.chrome_trace(extra_events)))
        return path


# ---------------------------------------------------------------------- #
# activation: method patching + engine hooks
# ---------------------------------------------------------------------- #

#: attribute on Tensor -> op label; only methods that call ``_make`` exactly
#: once are listed, so wrapper timing and ``_make`` counting agree.  The
#: composites (mean, min, squeeze, ...) are billed as their primitives.
_TIMED_METHODS = {
    "__add__": "add",
    "__radd__": "add",
    "__sub__": "sub",
    "__mul__": "mul",
    "__rmul__": "mul",
    "__truediv__": "div",
    "__neg__": "neg",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "__getitem__": "getitem",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "leaky_relu": "leaky_relu",
    "abs": "abs",
    "clip": "clip",
    "sum": "sum",
    "max": "max",
    "reshape": "reshape",
    "transpose": "transpose",
    "broadcast_to": "broadcast_to",
}

_ACTIVE: list[Tracer] = []
_ORIGINALS: dict[str, object] = {}
_FRAMES: list[list[float]] = []  # per-wrapped-call child-time accumulators


def _method_wrapper(op_name: str, orig):
    @functools.wraps(orig)
    def wrapped(*args, **kwargs):
        if not _ACTIVE:  # pragma: no cover - methods are unpatched when idle
            return orig(*args, **kwargs)
        frame = [0.0]
        _FRAMES.append(frame)
        started = perf_counter()
        try:
            out = orig(*args, **kwargs)
        finally:
            seconds = perf_counter() - started
            _FRAMES.pop()
            if _FRAMES:
                _FRAMES[-1][0] += seconds
        self_seconds = max(seconds - frame[0], 0.0)
        for tracer in _ACTIVE:
            tracer._record_forward(op_name, started, seconds, self_seconds)
        return out

    return wrapped


def _backward_wrapper(orig):
    @functools.wraps(orig)
    def wrapped(self, grad=None):
        started = perf_counter()
        try:
            return orig(self, grad)
        finally:
            seconds = perf_counter() - started
            for tracer in _ACTIVE:
                tracer._record_backward_pass(started, seconds)

    return wrapped


def _on_make(data, backward_fn) -> None:
    name = _closure_op_name(backward_fn)
    nbytes = int(getattr(data, "nbytes", 0))
    for tracer in _ACTIVE:
        tracer._record_make(name, nbytes)


def _on_backward_op(backward_fn, started: float, seconds: float) -> None:
    name = _closure_op_name(backward_fn)
    for tracer in _ACTIVE:
        tracer._record_backward(name, started, seconds)


def _patch() -> None:
    for attr, op_name in _TIMED_METHODS.items():
        orig = getattr(Tensor, attr)
        _ORIGINALS[attr] = orig
        setattr(Tensor, attr, _method_wrapper(op_name, orig))
    _ORIGINALS["backward"] = Tensor.backward
    Tensor.backward = _backward_wrapper(Tensor.backward)
    set_make_hook(_on_make)
    set_backward_op_hook(_on_backward_op)


def _unpatch() -> None:
    for attr, orig in _ORIGINALS.items():
        setattr(Tensor, attr, orig)
    _ORIGINALS.clear()
    _FRAMES.clear()
    set_make_hook(None)
    set_backward_op_hook(None)


def is_tracing() -> bool:
    """Whether at least one :func:`trace` region is currently active."""
    return bool(_ACTIVE)


def record_replay(label: str, seconds: float) -> None:
    """Report one engine plan replay to every active tracer.

    Called by :class:`repro.autodiff.ExecutionEngine` after each
    successful replay.  Replayed steps bypass the patched ``Tensor``
    methods (the plan installs its own dispatch), so without this seam a
    compiled training region would look almost empty in the trace.
    """
    if not _ACTIVE:
        return
    started = perf_counter() - seconds
    for tracer in _ACTIVE:
        tracer._record_replay(label, started, seconds)


@contextlib.contextmanager
def trace(max_events: int = 200_000):
    """Profile every autodiff op in the enclosed region.

    Yields a :class:`Tracer`.  Regions nest: an inner ``trace()`` sees only
    its own ops while the outer one keeps accumulating.  On exit of the
    outermost region all instrumentation is removed.
    """
    tracer = Tracer(max_events=max_events)
    if not _ACTIVE:
        _patch()
    _ACTIVE.append(tracer)
    started = perf_counter()
    try:
        yield tracer
    finally:
        tracer.wall_seconds = perf_counter() - started
        _ACTIVE.remove(tracer)
        if not _ACTIVE:
            _unpatch()
