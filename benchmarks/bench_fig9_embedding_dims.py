"""Fig. 9: sensitivity to the node (d_ν) and time (d_τ) embedding sizes.

Sweeps both dimensionalities on HZMetro.  Expected shape (paper):
performance improves as either dimensionality grows, with diminishing
returns / slight fluctuation at the top end — alongside a parameter-count
growth that motivates the Table VIII trade-off discussion.
"""

from __future__ import annotations

from bench_utils import report, scale

from repro.data import load_task
from repro.training import TrainingConfig, run_experiment

NODE_DIMS = (4, 8, 16, 32)
TIME_DIMS = (4, 8, 16)


def _run() -> str:
    s = scale()
    task = load_task("hzmetro", num_nodes=s.metro_nodes, num_days=s.metro_days, seed=0)
    config = TrainingConfig(epochs=s.epochs, batch_size=16, seed=0)
    lines = [f"{'d_v':>5} {'d_t':>5} | {'MAE':>7} {'RMSE':>8} {'#params':>9}"]
    lines.append("-" * 42)
    for dv in NODE_DIMS:
        for dt in TIME_DIMS:
            result = run_experiment(
                "tgcrn", task, config, hidden_dim=s.hidden_dim,
                model_kwargs=dict(node_dim=dv, time_dim=dt, num_layers=s.num_layers),
            )
            lines.append(
                f"{dv:>5} {dt:>5} | {result.overall.mae:7.2f} "
                f"{result.overall.rmse:8.2f} {result.num_parameters:9,d}"
            )
    return "\n".join(lines)


def test_fig9_embedding_dims(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig9_embedding_dims", out)
