"""Optimizers, learning-rate schedules, and gradient clipping.

The paper trains with Adam (lr 1e-3, L2 penalty 1e-4) and decays the rate
by 0.3 at epochs [5, 20, 40, 70, 90]; :class:`MultiStepLR` reproduces that
schedule exactly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with L2 penalty folded into the gradient,
    matching the paper's setup (``weight_decay`` = L2 penalty 1e-4)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step_count
        bias2 = 1.0 - beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Full resumable state: step count, lr, and copies of the moments."""
        return {
            "step_count": self._step_count,
            "lr": self.lr,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (shapes must match)."""
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError(
                f"optimizer slot count mismatch: saved {len(state['m'])}, "
                f"expected {len(self._m)}"
            )
        for i, (saved_m, saved_v) in enumerate(zip(state["m"], state["v"])):
            if np.shape(saved_m) != self._m[i].shape:
                raise ValueError(
                    f"optimizer slot {i}: shape {np.shape(saved_m)} != {self._m[i].shape}"
                )
            self._m[i][...] = saved_m
            self._v[i][...] = saved_v
        self._step_count = int(state["step_count"])
        self.lr = float(state["lr"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class MultiStepLR:
    """Decay the optimizer's lr by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.3):
        self.optimizer = optimizer
        self.milestones = sorted(milestones)
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def step(self) -> None:
        """Advance one epoch and update the optimizer's lr."""
        self._epoch += 1
        self._apply()

    def _apply(self) -> None:
        passed = sum(1 for m in self.milestones if self._epoch >= m)
        self.optimizer.lr = self._base_lr * (self.gamma ** passed)

    def scale_lr(self, factor: float) -> None:
        """Multiply the base (and hence current) lr — divergence backoff."""
        if factor <= 0.0:
            raise ValueError("lr scale factor must be positive")
        self._base_lr *= factor
        self._apply()

    def state_dict(self) -> dict:
        return {"epoch": self._epoch, "base_lr": self._base_lr}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])
        self._base_lr = float(state["base_lr"])
        self._apply()


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for monitoring divergence).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm
