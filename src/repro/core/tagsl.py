"""Time-aware Graph Structure Learning (TagSL, §III-A, Eq. 6–9).

The adjacency at time *t* blends three signals:

* ``A_v = ⟨E_v, E_v^T⟩`` — static self-learning correlations (Eq. 6);
* ``η_t = ⟨E_τ^t, E_τ^{t-1}⟩`` — the scalar *trend factor* measuring how
  the time representation evolves between consecutive steps (Eq. 7);
* ``A_p = tanh(⟨X, X^T⟩)`` — the *periodic discriminant* that tells
  periods apart from the current node state (Eq. 8);

combined as ``A^t = (1 + α·σ(A_p)) ⊙ (A_v + η_t)`` (Eq. 9).

Ablation flags reproduce the Table VII variants: ``use_trend=False`` drops
Eq. 7, ``use_pdf=False`` drops the periodic factor, and
``static_only=True`` degenerates to AGCRN's self-learning graph
(the *w/o tagsl* row).

Any optimization of this path must keep
``repro.verify.crosscheck.check_tagsl`` green — the forward is diffed
elementwise against a naive loop-based rendition of Eq. 6–9.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..graph.adjacency import normalize
from ..nn import Module, Parameter, init
from .time_encoding import TimeEncoder


class TagSL(Module):
    """Generate a batch of time-aware adjacency matrices.

    Parameters
    ----------
    num_nodes:
        N, the number of time series.
    node_dim:
        d_ν, node-embedding dimensionality.
    time_encoder:
        Shared Φ(·); also used by the GCGRU's node-adaptive weights.
    alpha:
        Saturation factor of the periodic discriminant (paper: 0.3).
    use_trend / use_pdf / static_only:
        Ablation switches (see module docstring).
    trend_mode:
        ``"scalar"`` — the paper's ⟨E_τ^t, E_τ^{t-1}⟩ scalar; ``"vector"``
        — an extension where the trend contributes a rank-1 per-edge term
        ⟨E_τ^t ⊙ E_v, E_τ^{t-1} ⊙ E_v⟩-style outer product (ablated in
        ``bench_ablation_extras``).
    top_k:
        Optional per-row sparsification: keep only each node's ``top_k``
        strongest correlations before normalization (Graph WaveNet-style
        pruning; an extension the self-learning-graph literature uses to
        control over-smoothing).  ``None`` keeps the dense graph (paper).
    """

    def __init__(
        self,
        num_nodes: int,
        node_dim: int,
        time_encoder: TimeEncoder,
        alpha: float = 0.3,
        use_trend: bool = True,
        use_pdf: bool = True,
        static_only: bool = False,
        trend_mode: str = "scalar",
        top_k: int | None = None,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        if trend_mode not in ("scalar", "vector"):
            raise ValueError(f"unknown trend_mode {trend_mode!r}")
        if top_k is not None and not 1 <= top_k <= num_nodes:
            raise ValueError(f"top_k must be in [1, {num_nodes}], got {top_k}")
        self.top_k = top_k
        self.num_nodes = num_nodes
        self.node_dim = node_dim
        self.alpha = alpha
        self.use_trend = use_trend and not static_only
        self.use_pdf = use_pdf and not static_only
        self.static_only = static_only
        self.trend_mode = trend_mode
        self.time_encoder = time_encoder
        self.node_embedding = Parameter(init.normal((num_nodes, node_dim), rng, std=1.0 / np.sqrt(node_dim)))
        if trend_mode == "vector":
            # Projects the time embedding onto per-node coefficients.
            self.trend_proj = Parameter(
                init.xavier_uniform((time_encoder.dim, num_nodes), rng)
            )

    # ------------------------------------------------------------------ #

    def static_adjacency(self) -> Tensor:
        """A_v = ⟨E_v, E_v^T⟩ (Eq. 6), shape (N, N)."""
        return self.node_embedding @ self.node_embedding.T

    def trend_factor(self, time_indices: np.ndarray) -> Tensor:
        """η_t = ⟨E_τ^t, E_τ^{t-1}⟩ (Eq. 7), shape (B, 1, 1) or (B, N, N)."""
        t = np.asarray(time_indices, dtype=np.int64)
        current = self.time_encoder(t)
        previous = self.time_encoder(t - 1)
        if self.trend_mode == "scalar":
            eta = (current * previous).sum(axis=-1)  # (B,)
            return eta.reshape(-1, 1, 1)
        # vector mode: rank-1 per-edge modulation from the two embeddings
        cur_nodes = current @ self.trend_proj  # (B, N)
        prev_nodes = previous @ self.trend_proj  # (B, N)
        return cur_nodes.unsqueeze(-1) * prev_nodes.unsqueeze(-2)  # (B, N, N)

    def periodic_discriminant(self, node_state: Tensor) -> Tensor:
        """A_p = tanh(⟨X, X^T⟩) (Eq. 8), shape (B, N, N)."""
        return (node_state @ node_state.swapaxes(-1, -2)).tanh()

    def forward(self, node_state: Tensor | None, time_indices: np.ndarray) -> Tensor:
        """Compute A^t (Eq. 9) for a batch.

        Parameters
        ----------
        node_state:
            (B, N, C) current node features / hidden state; only needed
            when the periodic discriminant is enabled.
        time_indices:
            (B,) absolute time-step indices of the current step.

        Returns
        -------
        Tensor
            (B, N, N) *unnormalized* adjacency batch; pass through
            :func:`normalized` (or ``graph.adjacency.normalize``) before
            convolution (Eq. 11).
        """
        time_indices = np.asarray(time_indices)
        batch = int(time_indices.shape[0]) if time_indices.ndim else 1
        base = self.static_adjacency()  # (N, N)
        base = base.unsqueeze(0).broadcast_to((batch, self.num_nodes, self.num_nodes))
        if self.static_only:
            return base
        adjacency = base
        if self.use_trend:
            adjacency = adjacency + self.trend_factor(time_indices)
        if self.use_pdf:
            if node_state is None:
                raise ValueError("periodic discriminant requires the current node state")
            gate = 1.0 + self.alpha * self.periodic_discriminant(node_state).sigmoid()
            adjacency = gate * adjacency
        if self.top_k is not None and self.top_k < self.num_nodes:
            adjacency = self._sparsify(adjacency)
        return adjacency

    def _sparsify(self, adjacency: Tensor) -> Tensor:
        """Keep each row's top-k entries; mask the rest to -inf-like values
        so they vanish under softmax normalization (and to 0 under
        relu-based norms).  The mask is data-dependent but constant w.r.t.
        gradients, as in Graph WaveNet's pruning."""
        k = self.top_k
        threshold = np.partition(adjacency.data, -k, axis=-1)[..., -k : -k + 1]
        keep = adjacency.data >= threshold
        penalty = Tensor(np.where(keep, 0.0, -1e9))
        return adjacency + penalty

    def normalized(self, node_state: Tensor | None, time_indices: np.ndarray, mode: str = "softmax") -> Tensor:
        """Â^t = Norm(A^t) (Eq. 11)."""
        return normalize(self.forward(node_state, time_indices), mode=mode)
