"""Abstract shape/dtype interpreter over the autodiff op vocabulary.

A :class:`SymTensor` carries a shape (a tuple of :class:`SymDim` —
concrete sizes with optional labels like ``batch``), a symbolic dtype, and
*provenance*: the set of :class:`~repro.nn.module.Parameter` objects whose
values could influence it.  Executing a model's ``forward`` with a
``SymTensor`` input propagates shapes and dtypes through every operation
without allocating real activations — ``.data`` is a zero-stride view of a
single scalar, so raw-numpy escape hatches (``np.partition`` on
``adjacency.data`` and friends) still see an array of the right shape at
O(1) memory.

Shape bugs surface as :class:`SymbolicShapeError` (rule IDs SH001–SH003)
at the op that would have failed; dtype promotions, contract violations
and parameter-dtype drift become findings SH004–SH006.  The provenance
sets double as the substrate for the gradient-flow linter
(:mod:`repro.analyze.gradflow`).

Module-level ops (``concat``, ``softmax``, …) read ``.data`` of every
operand up front, which would silently drop symbolic tracking; the
interpreter therefore installs a cooperative dispatch handler via
:func:`repro.autodiff.tensor.set_symbolic_handler` for the duration of a
check (see :func:`symbolic_execution`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

from ..autodiff import functional as _functional  # noqa: F401  (documents the seam)
from ..autodiff.tensor import DEFAULT_DTYPE, Tensor
from ..autodiff.tensor import set_symbolic_handler
from ..nn.module import Module, Parameter
from .findings import Finding

_EMPTY: frozenset[int] = frozenset()


class SymDim(int):
    """A concrete dimension size with an optional human label."""

    label: str | None

    def __new__(cls, value: int, label: str | None = None) -> "SymDim":
        dim = super().__new__(cls, int(value))
        dim.label = label
        return dim

    def __repr__(self) -> str:
        return f"{self.label}={int(self)}" if self.label else str(int(self))


def _fmt_shape(shape: Sequence[int]) -> str:
    parts = []
    for dim in shape:
        parts.append(repr(dim) if isinstance(dim, SymDim) else str(dim))
    return "(" + ", ".join(parts) + ")"


class SymbolicShapeError(Exception):
    """A shape/dtype defect proven by the interpreter (SH001–SH003)."""

    def __init__(self, rule_id: str, message: str, fix_hint: str = ""):
        super().__init__(message)
        self.rule_id = rule_id
        self.message = message
        self.fix_hint = fix_hint
        ctx = _CONTEXT
        self.module_path = ctx.current_path() if ctx is not None else ""


class SymbolicUnsupportedError(Exception):
    """The interpreter cannot evaluate this construct (not a model bug)."""


class ModelShapeError(RuntimeError):
    """Raised by callers (e.g. ``ForecastServer``) on error-severity findings."""

    def __init__(self, findings: Sequence[Finding]):
        self.findings = list(findings)
        detail = "; ".join(f"{f.rule_id} at {f.location}: {f.message}" for f in self.findings)
        super().__init__(f"model failed static shape check: {detail}")


# --------------------------------------------------------------------- #
# interpretation context
# --------------------------------------------------------------------- #


class SymContext:
    """Per-check state: module stack, name map, provenance memo, findings."""

    def __init__(self, model_name: str = "model"):
        self.model_name = model_name
        self.findings: list[Finding] = []
        self.module_stack: list[str] = []
        self._names: dict[int, str] = {}
        self._prov_memo: dict[int, frozenset[int]] = {}
        self._prov_keepalive: dict[int, Tensor] = {}
        self._promotions_seen: set[tuple] = set()
        #: id(real detach() result) -> parameters whose gradients it severed
        self.detached_reals: dict[int, frozenset[int]] = {}

    def register_names(self, root: Module, prefix: str = "") -> None:
        self._names[id(root)] = prefix or type(root).__name__
        stack = [(root, prefix)]
        while stack:
            module, path = stack.pop()
            for child_name, child in module._modules.items():
                child_path = f"{path}.{child_name}" if path else child_name
                if id(child) not in self._names:
                    self._names[id(child)] = child_path
                    stack.append((child, child_path))

    def name_of(self, module: Module) -> str:
        return self._names.get(id(module), type(module).__name__)

    def current_path(self) -> str:
        return self.module_stack[-1] if self.module_stack else ""

    def record_promotion(self, op: str, left: np.dtype, right: np.dtype, result: np.dtype) -> None:
        key = (self.current_path(), op, left.str, right.str)
        if key in self._promotions_seen:
            return
        self._promotions_seen.add(key)
        where = self.current_path() or self.model_name
        self.findings.append(
            Finding(
                rule_id="SH004",
                severity="warning",
                location=f"model:{self.model_name}/{where}",
                anchor=f"model:{self.model_name}",
                message=(
                    f"mixed-precision {op}: {left.name} with {right.name} promotes to "
                    f"{result.name} (expected uniform {np.dtype(DEFAULT_DTYPE).name})"
                ),
                fix_hint="keep all tensors in DEFAULT_DTYPE; check .data mutations and raw numpy constants",
            )
        )

    def collect_params(self, tensor: Tensor) -> frozenset[int]:
        """Parameters reachable from a *real* tensor through ``_parents``."""
        memo = self._prov_memo
        if id(tensor) in memo:
            return memo[id(tensor)]
        stack: list[tuple[Tensor, bool]] = [(tensor, False)]
        on_stack: set[int] = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                acc: set[int] = set()
                if isinstance(node, Parameter):
                    acc.add(id(node))
                    self._prov_keepalive[id(node)] = node
                for parent in node._parents:
                    acc |= memo.get(id(parent), _EMPTY)
                memo[id(node)] = frozenset(acc)
                self._prov_keepalive[id(node)] = node
                on_stack.discard(id(node))
                continue
            if id(node) in memo or id(node) in on_stack:
                continue
            on_stack.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in memo:
                    stack.append((parent, False))
        return memo[id(tensor)]


_CONTEXT: SymContext | None = None


def _require_context() -> SymContext:
    if _CONTEXT is None:
        raise SymbolicUnsupportedError(
            "SymTensor operations require an active symbolic_execution() context"
        )
    return _CONTEXT


# --------------------------------------------------------------------- #
# the symbolic tensor
# --------------------------------------------------------------------- #


def _dims(shape: Sequence[int]) -> tuple[int, ...]:
    out = []
    for dim in shape:
        if isinstance(dim, SymDim):
            out.append(dim)
        elif isinstance(dim, (int, np.integer)):
            out.append(int(dim))
        else:
            raise SymbolicUnsupportedError(f"non-integer dimension {dim!r}")
    return tuple(out)


def _merge_dim(a: int, b: int) -> int:
    """Pick the more informative of two equal dims (prefer a label)."""
    if isinstance(a, SymDim) and a.label:
        return a
    if isinstance(b, SymDim) and b.label:
        return b
    return a


def _broadcast_shapes(a: tuple, b: tuple, op: str) -> tuple:
    rank = max(len(a), len(b))
    pad_a = (1,) * (rank - len(a)) + tuple(a)
    pad_b = (1,) * (rank - len(b)) + tuple(b)
    out = []
    for da, db in zip(pad_a, pad_b):
        if int(da) == int(db):
            out.append(_merge_dim(da, db))
        elif int(da) == 1:
            out.append(db)
        elif int(db) == 1:
            out.append(da)
        else:
            raise SymbolicShapeError(
                "SH001",
                f"broadcast mismatch in {op}: {_fmt_shape(a)} vs {_fmt_shape(b)}",
                fix_hint="align operand shapes (unsqueeze/broadcast_to the smaller one explicitly)",
            )
    return tuple(out)


def _promote(op: str, a: "SymTensor", b: "SymTensor") -> np.dtype:
    da, db = a._sym_dtype, b._sym_dtype
    result = np.result_type(da, db)
    if da.kind == "f" and db.kind == "f" and da != db:
        ctx = _CONTEXT
        if ctx is not None:
            ctx.record_promotion(op, da, db, result)
    return result


def _float_result(dtype: np.dtype) -> np.dtype:
    return dtype if dtype.kind == "f" else np.dtype(DEFAULT_DTYPE)


class SymTensor(Tensor):
    """Shape/dtype/provenance-only stand-in for a :class:`Tensor`.

    Never allocates activation-sized storage: ``.data`` is a broadcast
    (zero-stride) view of one scalar, so code reaching through the
    escape hatch still sees correct ``shape``/``dtype``.
    """

    __slots__ = ("_sym_shape", "_sym_dtype", "_params", "_detached")

    # Make numpy defer to our reflected operators instead of trying to
    # coerce a SymTensor operand itself.
    __array_ufunc__ = None

    def __init__(
        self,
        shape: Sequence[int],
        dtype=DEFAULT_DTYPE,
        params: frozenset[int] = _EMPTY,
        detached: frozenset[int] = _EMPTY,
    ):
        # Deliberately skip Tensor.__init__: a SymTensor has no payload.
        self._sym_shape = _dims(shape)
        self._sym_dtype = np.dtype(dtype)
        self._params = params
        self._detached = detached
        self.grad = None
        self.requires_grad = True
        self._parents = ()
        self._backward_fn = None

    # ---------------------------------------------------------------- #
    # tensor protocol
    # ---------------------------------------------------------------- #

    @property
    def data(self) -> np.ndarray:  # type: ignore[override]
        return np.broadcast_to(np.zeros((), dtype=self._sym_dtype), self.shape)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._sym_shape

    @property
    def ndim(self) -> int:
        return len(self._sym_shape)

    @property
    def size(self) -> int:
        return int(np.prod([int(d) for d in self._sym_shape], dtype=np.int64)) if self._sym_shape else 1

    @property
    def dtype(self):
        return self._sym_dtype

    @property
    def T(self) -> "SymTensor":
        return self.transpose()

    def __len__(self) -> int:
        if not self._sym_shape:
            raise SymbolicShapeError("SH003", "len() of a 0-d tensor")
        return int(self._sym_shape[0])

    def __repr__(self) -> str:
        return f"SymTensor(shape={_fmt_shape(self.shape)}, dtype={self._sym_dtype.name})"

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        if self.size != 1:
            raise SymbolicShapeError(
                "SH003", f"item() on tensor of shape {_fmt_shape(self.shape)}"
            )
        return 0.0

    def detach(self) -> "SymTensor":
        return SymTensor(
            self.shape, self._sym_dtype, params=_EMPTY, detached=self._detached | self._params
        )

    def copy(self) -> "SymTensor":
        return SymTensor(self.shape, self._sym_dtype, params=_EMPTY, detached=self._detached | self._params)

    def backward(self, grad=None) -> None:
        raise SymbolicUnsupportedError("backward() is not defined during symbolic execution")

    # ---------------------------------------------------------------- #
    # op helpers
    # ---------------------------------------------------------------- #

    def _elementwise(self, other, op: str, float_out: bool = False) -> "SymTensor":
        other = _lift(other)
        shape = _broadcast_shapes(self.shape, other.shape, op)
        dtype = _promote(op, self, other)
        if float_out:
            dtype = _float_result(dtype)
        return _result(shape, dtype, (self, other))

    def _unary(self, shape=None, dtype=None) -> "SymTensor":
        return _result(
            self.shape if shape is None else shape,
            self._sym_dtype if dtype is None else dtype,
            (self,),
        )

    # ---------------------------------------------------------------- #
    # arithmetic
    # ---------------------------------------------------------------- #

    def __add__(self, other):
        return self._elementwise(other, "add")

    def __radd__(self, other):
        return self._elementwise(other, "add")

    def __sub__(self, other):
        return self._elementwise(other, "sub")

    def __rsub__(self, other):
        return self._elementwise(other, "sub")

    def __mul__(self, other):
        return self._elementwise(other, "mul")

    def __rmul__(self, other):
        return self._elementwise(other, "mul")

    def __truediv__(self, other):
        return self._elementwise(other, "div", float_out=True)

    def __rtruediv__(self, other):
        return self._elementwise(other, "div", float_out=True)

    def __neg__(self):
        return self._unary()

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            raise SymbolicUnsupportedError("tensor exponents are not supported")
        return self._unary(dtype=_float_result(self._sym_dtype))

    def __matmul__(self, other):
        other = _lift(other)
        return _result(_matmul_shape(self.shape, other.shape), _promote("matmul", self, other), (self, other))

    def __rmatmul__(self, other):
        other = _lift(other)
        return _result(_matmul_shape(other.shape, self.shape), _promote("matmul", other, self), (other, self))

    # comparisons: shape-checked boolean views (no gradient, no provenance)
    def _compare(self, other, op: str) -> np.ndarray:
        other = _lift(other)
        shape = _broadcast_shapes(self.shape, other.shape, op)
        return np.broadcast_to(np.zeros((), dtype=bool), tuple(int(d) for d in shape))

    def __gt__(self, other):
        return self._compare(other, "gt")

    def __lt__(self, other):
        return self._compare(other, "lt")

    def __ge__(self, other):
        return self._compare(other, "ge")

    def __le__(self, other):
        return self._compare(other, "le")

    # ---------------------------------------------------------------- #
    # elementwise functions
    # ---------------------------------------------------------------- #

    def exp(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def log(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def sqrt(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def sin(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def cos(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def tanh(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def sigmoid(self):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def relu(self):
        return self._unary()

    def leaky_relu(self, negative_slope: float = 0.01):
        return self._unary(dtype=_float_result(self._sym_dtype))

    def abs(self):
        return self._unary()

    def clip(self, low, high):
        return self._unary()

    # ---------------------------------------------------------------- #
    # reductions
    # ---------------------------------------------------------------- #

    def _normalize_axes(self, axis, op: str) -> tuple[int, ...]:
        axes = axis if isinstance(axis, tuple) else (axis,)
        out = []
        for a in axes:
            if not isinstance(a, (int, np.integer)):
                raise SymbolicUnsupportedError(f"non-integer axis {a!r} in {op}")
            if not -self.ndim <= a < self.ndim:
                raise SymbolicShapeError(
                    "SH003",
                    f"axis {a} out of range for {op} on shape {_fmt_shape(self.shape)}",
                )
            out.append(int(a) % self.ndim)
        return tuple(out)

    def _reduce(self, axis, keepdims: bool, op: str) -> "SymTensor":
        if axis is None:
            shape = tuple(1 for _ in self.shape) if keepdims else ()
        else:
            axes = set(self._normalize_axes(axis, op))
            if keepdims:
                shape = tuple(1 if i in axes else d for i, d in enumerate(self.shape))
            else:
                shape = tuple(d for i, d in enumerate(self.shape) if i not in axes)
        return self._unary(shape=shape)

    def sum(self, axis=None, keepdims: bool = False):
        return self._reduce(axis, keepdims, "sum")

    def max(self, axis=None, keepdims: bool = False):
        return self._reduce(axis, keepdims, "max")

    # mean/min/swapaxes/unsqueeze/T inherit from Tensor: they delegate to
    # the overridden primitives above.

    # ---------------------------------------------------------------- #
    # shape manipulation
    # ---------------------------------------------------------------- #

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        total = self.size
        known = 1
        infer_at = None
        dims: list[int] = []
        for i, dim in enumerate(shape):
            if not isinstance(dim, (int, np.integer)):
                raise SymbolicUnsupportedError(f"non-integer reshape dim {dim!r}")
            if int(dim) == -1:
                if infer_at is not None:
                    raise SymbolicShapeError("SH003", "reshape with more than one -1")
                infer_at = i
                dims.append(-1)
            else:
                known *= int(dim)
                dims.append(dim)
        if infer_at is not None:
            if known == 0 or total % known != 0:
                raise SymbolicShapeError(
                    "SH003",
                    f"cannot infer -1 reshaping {_fmt_shape(self.shape)} "
                    f"(size {total}) to {_fmt_shape(shape)}",
                )
            dims[infer_at] = total // known
        elif known != total:
            raise SymbolicShapeError(
                "SH003",
                f"cannot reshape {_fmt_shape(self.shape)} (size {total}) to "
                f"{_fmt_shape(shape)} (size {known})",
                fix_hint="recheck the folded axes; a transposed or dropped dim usually hides here",
            )
        return self._unary(shape=tuple(dims))

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        if sorted(int(a) % max(self.ndim, 1) for a in axes) != list(range(self.ndim)):
            raise SymbolicShapeError(
                "SH003",
                f"transpose axes {axes} are not a permutation of rank "
                f"{self.ndim} (shape {_fmt_shape(self.shape)})",
            )
        return self._unary(shape=tuple(self.shape[int(a) % self.ndim] for a in axes))

    def squeeze(self, axis: int):
        (axis,) = self._normalize_axes(axis, "squeeze")
        if int(self.shape[axis]) != 1:
            raise SymbolicShapeError(
                "SH003", f"cannot squeeze axis {axis} of shape {_fmt_shape(self.shape)}"
            )
        return self._unary(shape=self.shape[:axis] + self.shape[axis + 1 :])

    def broadcast_to(self, shape):
        target = _dims(tuple(shape))
        if len(target) < self.ndim:
            raise SymbolicShapeError(
                "SH001",
                f"broadcast_to target {_fmt_shape(target)} has lower rank than "
                f"{_fmt_shape(self.shape)}",
            )
        pad = (1,) * (len(target) - self.ndim) + self.shape
        for src, dst in zip(pad, target):
            if int(src) != int(dst) and int(src) != 1:
                raise SymbolicShapeError(
                    "SH001",
                    f"cannot broadcast {_fmt_shape(self.shape)} to {_fmt_shape(target)}",
                )
        return self._unary(shape=target)

    def __getitem__(self, key):
        return self._unary(shape=_index_shape(self.shape, key))


def _matmul_shape(a: tuple, b: tuple) -> tuple:
    if len(a) == 0 or len(b) == 0:
        raise SymbolicShapeError("SH002", "matmul with a 0-d operand")
    if len(a) == 1 and len(b) == 1:
        if int(a[0]) != int(b[0]):
            raise SymbolicShapeError(
                "SH002", f"matmul inner dimensions differ: {_fmt_shape(a)} @ {_fmt_shape(b)}"
            )
        return ()
    squeeze_front = False
    squeeze_back = False
    if len(a) == 1:
        a = (1,) + tuple(a)
        squeeze_front = True
    if len(b) == 1:
        b = tuple(b) + (1,)
        squeeze_back = True
    if int(a[-1]) != int(b[-2]):
        raise SymbolicShapeError(
            "SH002",
            f"matmul inner dimensions differ: {_fmt_shape(a)} @ {_fmt_shape(b)} "
            f"({int(a[-1])} vs {int(b[-2])})",
            fix_hint="transpose/reshape one operand so the contracted axes line up",
        )
    batch = _broadcast_shapes(tuple(a[:-2]), tuple(b[:-2]), "matmul batch dims")
    shape = tuple(batch) + (a[-2], b[-1])
    if squeeze_front:
        shape = shape[:-2] + (shape[-1],)
    if squeeze_back:
        shape = shape[:-1]
    return shape


def _index_shape(shape: tuple, key) -> tuple:
    keys = key if isinstance(key, tuple) else (key,)
    n_specs = sum(1 for k in keys if k is not None and k is not Ellipsis)
    n_ellipsis = sum(1 for k in keys if k is Ellipsis)
    if n_ellipsis > 1:
        raise SymbolicUnsupportedError("multiple Ellipsis in index")
    if n_specs > len(shape):
        raise SymbolicShapeError(
            "SH003",
            f"too many indices ({n_specs}) for shape {_fmt_shape(shape)}",
        )
    expanded: list = []
    for k in keys:
        if k is Ellipsis:
            expanded.extend([slice(None)] * (len(shape) - n_specs))
        else:
            expanded.append(k)
    if n_ellipsis == 0:
        expanded.extend([slice(None)] * (len(shape) - n_specs))

    out: list = []
    array_seen = False
    dim_i = 0
    for k in expanded:
        if k is None:
            out.append(1)
            continue
        dim = shape[dim_i]
        if isinstance(k, slice):
            start, stop, step = k.indices(int(dim))
            out.append(len(range(start, stop, step)))
        elif isinstance(k, (int, np.integer)):
            if not -int(dim) <= int(k) < int(dim):
                raise SymbolicShapeError(
                    "SH003",
                    f"index {int(k)} out of bounds for axis {dim_i} of shape {_fmt_shape(shape)}",
                )
        elif isinstance(k, (list, np.ndarray)):
            arr = np.asarray(k)
            if arr.dtype == bool or array_seen:
                raise SymbolicUnsupportedError("boolean/multiple advanced indices")
            array_seen = True
            out.extend(arr.shape)
        else:
            raise SymbolicUnsupportedError(f"unsupported index component {type(k).__name__}")
        dim_i += 1
    return tuple(out)


def _lift(value) -> SymTensor:
    """Coerce any operand to a SymTensor, tracking real-side provenance."""
    if isinstance(value, SymTensor):
        return value
    if isinstance(value, Tensor):
        ctx = _CONTEXT
        params = ctx.collect_params(value) if ctx is not None else _EMPTY
        detached = ctx.detached_reals.get(id(value), _EMPTY) if ctx is not None else _EMPTY
        return SymTensor(value.shape, value.dtype, params=params, detached=detached)
    arr = np.asarray(value)
    if arr.dtype.kind not in "fbiu":
        raise SymbolicUnsupportedError(f"cannot lift operand of dtype {arr.dtype}")
    return SymTensor(arr.shape, arr.dtype)


def _result(shape, dtype, operands: Sequence[SymTensor]) -> SymTensor:
    params: frozenset[int] = _EMPTY
    detached: frozenset[int] = _EMPTY
    for op in operands:
        params |= op._params
        detached |= op._detached
    return SymTensor(shape, dtype, params=params, detached=detached)


# --------------------------------------------------------------------- #
# cooperative handler for module-level autodiff functions
# --------------------------------------------------------------------- #


class _SymbolicHandler:
    """Dispatch target installed via ``set_symbolic_handler``.

    Each hook returns ``None`` when no operand is symbolic so the real
    implementation proceeds untouched.
    """

    @staticmethod
    def _any_sym(tensors) -> bool:
        return any(isinstance(t, SymTensor) for t in tensors)

    def concat(self, tensors, axis):
        if not self._any_sym(tensors):
            return None
        syms = [_lift(t) for t in tensors]
        rank = syms[0].ndim
        axis = int(axis) % rank if rank else 0
        total = 0
        for sym in syms:
            if sym.ndim != rank:
                raise SymbolicShapeError(
                    "SH003",
                    f"concat of mixed ranks: {_fmt_shape(syms[0].shape)} vs {_fmt_shape(sym.shape)}",
                )
            for i in range(rank):
                if i != axis and int(sym.shape[i]) != int(syms[0].shape[i]):
                    raise SymbolicShapeError(
                        "SH001",
                        f"concat shapes differ off axis {axis}: "
                        f"{_fmt_shape(syms[0].shape)} vs {_fmt_shape(sym.shape)}",
                    )
            total += int(sym.shape[axis])
        shape = syms[0].shape[:axis] + (total,) + syms[0].shape[axis + 1 :]
        dtype = syms[0]._sym_dtype
        for sym in syms[1:]:
            dtype = _promote("concat", syms[0], sym)
        return _result(shape, dtype, syms)

    def stack(self, tensors, axis):
        if not self._any_sym(tensors):
            return None
        syms = [_lift(t) for t in tensors]
        for sym in syms[1:]:
            if tuple(int(d) for d in sym.shape) != tuple(int(d) for d in syms[0].shape):
                raise SymbolicShapeError(
                    "SH001",
                    f"stack shapes differ: {_fmt_shape(syms[0].shape)} vs {_fmt_shape(sym.shape)}",
                )
        rank = syms[0].ndim + 1
        axis = int(axis) % rank
        shape = syms[0].shape[:axis] + (len(syms),) + syms[0].shape[axis:]
        return _result(shape, syms[0]._sym_dtype, syms)

    def where(self, condition, a, b):
        if not self._any_sym((condition, a, b)):
            return None
        sym_a, sym_b = _lift(a), _lift(b)
        cond_shape = (
            _lift(condition).shape
            if isinstance(condition, (Tensor, np.ndarray))
            else np.asarray(condition).shape
        )
        shape = _broadcast_shapes(
            _broadcast_shapes(tuple(cond_shape), sym_a.shape, "where"), sym_b.shape, "where"
        )
        return _result(shape, _promote("where", sym_a, sym_b), (sym_a, sym_b))

    def gather_rows(self, table, indices):
        if not isinstance(table, SymTensor):
            return None
        idx = np.asarray(indices.data if isinstance(indices, Tensor) else indices)
        shape = tuple(idx.shape) + table.shape[1:]
        return _result(shape, table._sym_dtype, (table,))

    def softmax(self, x, axis):
        if not isinstance(x, SymTensor):
            return None
        x._normalize_axes(axis, "softmax")
        return x._unary(dtype=_float_result(x._sym_dtype))

    def log_softmax(self, x, axis):
        if not isinstance(x, SymTensor):
            return None
        x._normalize_axes(axis, "log_softmax")
        return x._unary(dtype=_float_result(x._sym_dtype))


_HANDLER = _SymbolicHandler()


# --------------------------------------------------------------------- #
# execution harness
# --------------------------------------------------------------------- #


@contextlib.contextmanager
def symbolic_execution(model: Module | None = None, model_name: str = "model"):
    """Activate symbolic dispatch + module location tracking for a check."""
    global _CONTEXT
    ctx = SymContext(model_name)
    if isinstance(model, Module):
        ctx.register_names(model, prefix="")
    previous_ctx, _CONTEXT = _CONTEXT, ctx
    previous_handler = set_symbolic_handler(_HANDLER)
    original_call = Module.__call__
    original_detach = Tensor.detach

    def tracked_call(self, *args, **kwargs):
        ctx.module_stack.append(ctx.name_of(self) or type(self).__name__)
        try:
            return original_call(self, *args, **kwargs)
        finally:
            ctx.module_stack.pop()

    def tracked_detach(self):
        # A detach() on a *real* tensor severs its autodiff ancestry; remember
        # which parameters fed it so GF002 can see through the cut when the
        # result mixes into the symbolic graph.  (SymTensor overrides detach,
        # so symbolic instances never reach this wrapper.)  Detaching an
        # already-severed tensor carries its provenance forward too.
        out = original_detach(self)
        params = ctx.collect_params(self) | ctx.detached_reals.get(id(self), _EMPTY)
        if params:
            ctx.detached_reals[id(out)] = params
            ctx._prov_keepalive[id(out)] = out
        return out

    original_make = Tensor._make

    def tracked_make(data, parents, backward_fn):
        # Real ops downstream of a detach() drop their parents the moment
        # no operand requires grad (Tensor._make), which is exactly what
        # makes detach *chains* (detach → scale → shift → mix into the
        # symbolic graph) invisible to a parent walk.  Intercept result
        # construction itself and carry the severed-parameter set across
        # every real op, so _lift's lookup sees through arbitrary chains.
        out = original_make(data, parents, backward_fn)
        severed = _EMPTY
        for parent in parents:
            severed |= ctx.detached_reals.get(id(parent), _EMPTY)
        if severed:
            ctx.detached_reals[id(out)] = (
                severed | ctx.detached_reals.get(id(out), _EMPTY))
            ctx._prov_keepalive[id(out)] = out
        return out

    Module.__call__ = tracked_call
    Tensor.detach = tracked_detach
    Tensor._make = staticmethod(tracked_make)
    try:
        yield ctx
    finally:
        Module.__call__ = original_call
        Tensor.detach = original_detach
        Tensor._make = staticmethod(original_make)
        set_symbolic_handler(previous_handler)
        _CONTEXT = previous_ctx


def sym_window(
    batch: int, history: int, num_nodes: int, in_dim: int, dtype=DEFAULT_DTYPE
) -> SymTensor:
    """The canonical symbolic forecasting input ``(B, P, N, d)``."""
    return SymTensor(
        (
            SymDim(batch, "batch"),
            SymDim(history, "history"),
            SymDim(num_nodes, "nodes"),
            SymDim(in_dim, "features"),
        ),
        dtype=dtype,
    )


def _model_location(ctx: SymContext, suffix: str = "") -> tuple[str, str]:
    anchor = f"model:{ctx.model_name}"
    return (f"{anchor}/{suffix}" if suffix else anchor), anchor


def check_forecast_model(
    model,
    *,
    history: int,
    horizon: int,
    num_nodes: int,
    in_dim: int,
    out_dim: int,
    batch: int = 2,
    model_name: str | None = None,
    training: bool = False,
    time_offset: int = 3,
) -> list[Finding]:
    """Shape/dtype-check one forecasting model symbolically.

    Runs the model's forward on a :class:`SymTensor` window — no real
    activations — and verifies the served-output contract
    ``(batch, horizon, num_nodes, out_dim)`` (SH006).  Parameter dtype
    drift is checked before execution (SH005).
    """
    name = model_name or type(model).__name__
    findings: list[Finding] = []

    if hasattr(model, "named_parameters"):
        for param_name, param in model.named_parameters():
            if param.data.dtype != np.dtype(DEFAULT_DTYPE):
                findings.append(
                    Finding(
                        rule_id="SH005",
                        severity="error",
                        location=f"model:{name}/{param_name}",
                        anchor=f"model:{name}",
                        message=(
                            f"parameter {param_name} has dtype {param.data.dtype.name}, "
                            f"expected {np.dtype(DEFAULT_DTYPE).name}"
                        ),
                        fix_hint="initialize via nn.init (float64) and never .astype parameters in place",
                    )
                )

    was_training = getattr(model, "training", None)
    if hasattr(model, "train"):
        model.train(training)
    x = sym_window(batch, history, num_nodes, in_dim)
    time_indices = np.arange(history + horizon)[None, :] + np.arange(batch)[:, None] + time_offset
    try:
        with symbolic_execution(model if isinstance(model, Module) else None, name) as ctx:
            try:
                out = model(x, time_indices)
            except SymbolicShapeError as exc:
                location, anchor = _model_location(ctx, exc.module_path)
                findings.append(
                    Finding(
                        rule_id=exc.rule_id,
                        severity="error",
                        location=location,
                        anchor=anchor,
                        message=exc.message,
                        fix_hint=exc.fix_hint,
                    )
                )
            except SymbolicUnsupportedError as exc:
                location, anchor = _model_location(ctx, ctx.current_path())
                findings.append(
                    Finding(
                        rule_id="SH007",
                        severity="warning",
                        location=location,
                        anchor=anchor,
                        message=f"symbolic interpreter cannot evaluate this model: {exc}",
                        fix_hint="route the construct through the autodiff op vocabulary or extend shapes.py",
                    )
                )
            except Exception as exc:  # the *model* crashed on abstract input
                location, anchor = _model_location(ctx, ctx.current_path())
                findings.append(
                    Finding(
                        rule_id="SH007",
                        severity="warning",
                        location=location,
                        anchor=anchor,
                        message=f"symbolic forward raised {type(exc).__name__}: {exc}",
                        fix_hint="reproduce with a real forward; the model may reject abstract values",
                    )
                )
            else:
                expected = (batch, horizon, num_nodes, out_dim)
                actual = tuple(int(d) for d in getattr(out, "shape", ()))
                if actual != expected:
                    findings.append(
                        Finding(
                            rule_id="SH006",
                            severity="error",
                            location=f"model:{name}",
                            anchor=f"model:{name}",
                            message=(
                                f"forward output shape {actual} violates the serving contract "
                                f"(batch={batch}, horizon={horizon}, nodes={num_nodes}, out_dim={out_dim})"
                            ),
                            fix_hint="the decoder/head must emit (B, Q, N, out_dim)",
                        )
                    )
                if isinstance(out, SymTensor) and out.dtype != np.dtype(DEFAULT_DTYPE):
                    findings.append(
                        Finding(
                            rule_id="SH004",
                            severity="warning",
                            location=f"model:{name}",
                            anchor=f"model:{name}",
                            message=f"forward output dtype {out.dtype.name} != {np.dtype(DEFAULT_DTYPE).name}",
                            fix_hint="trace the promotion warnings above to the offending constant",
                        )
                    )
            findings.extend(ctx.findings)
    finally:
        if was_training is not None and hasattr(model, "train"):
            model.train(was_training)
    return findings


def check_served_model(model, task, *, batch: int = 2, model_name: str | None = None) -> list[Finding]:
    """Shape-check a model against the task a :class:`ForecastServer` serves."""
    return check_forecast_model(
        model,
        history=int(task.history),
        horizon=int(task.horizon),
        num_nodes=int(task.num_nodes),
        in_dim=int(task.in_dim),
        out_dim=int(task.out_dim),
        batch=batch,
        model_name=model_name or type(model).__name__,
    )


def check_micro_batch_shapes(
    model, task, *, max_batch: int = 8, model_name: str | None = None
) -> list[Finding]:
    """Statically verify every merge size a ``MicroBatcher`` can emit.

    The server's micro-batcher coalesces 1..``max_batch`` compatible
    requests into one forward pass, and the execution engine caches one
    plan per input signature — so a model whose forward bakes a concrete
    batch size into a reshape or broadcast serves fine at the checked
    batch and crashes (or worse, silently mis-shapes) on another bucket.

    One symbolic execution per distinct merge size proves the batch dim
    flexible at O(1) memory and no real arithmetic.  Findings that
    reproduce identically at every size are batch-independent defects and
    pass through under their own rule once; a finding confined to a
    strict subset of sizes is re-reported as **SH008** (error) naming the
    merge sizes it breaks — batch-dim inflexibility.
    """
    name = model_name or type(model).__name__
    sizes = list(range(1, int(max_batch) + 1))
    by_key: dict[tuple, tuple[Finding, list[int]]] = {}
    for batch in sizes:
        for finding in check_served_model(model, task, batch=batch, model_name=name):
            # Structural identity only: messages embed the concrete batch
            # size (shapes, element counts), so keying on the text would
            # split one defect into per-size "findings" and misfile every
            # batch-independent bug as SH008.
            key = (finding.rule_id, finding.location)
            if key in by_key:
                by_key[key][1].append(batch)
            else:
                by_key[key] = (finding, [batch])
    findings: list[Finding] = []
    for finding, seen_at in by_key.values():
        if len(seen_at) == len(sizes):
            findings.append(finding)  # batch-independent: report as-is, once
            continue
        findings.append(
            Finding(
                rule_id="SH008",
                severity="error",
                location=finding.location,
                anchor=finding.anchor,
                message=(
                    f"batch-dim inflexibility: fails only at merge sizes "
                    f"{seen_at} of 1..{max_batch} — {finding.rule_id}: "
                    f"{finding.message}"
                ),
                fix_hint=(
                    "derive the batch dim from the input (x.shape[0] / "
                    "reshape(-1, ...)) instead of hard-coding it; every "
                    "micro-batch bucket must share one graph"
                ),
            )
        )
    return findings
