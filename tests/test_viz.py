"""Tests for t-SNE and heat-map utilities (Figs. 11-12 machinery)."""

import numpy as np
import pytest

from repro.viz import (
    joint_probabilities,
    matrix_correlation,
    ordering_score,
    render_heatmap,
    side_by_side,
    tsne,
)


class TestJointProbabilities:
    def test_symmetric_and_normalized(self, rng):
        x = rng.normal(size=(20, 5))
        p = joint_probabilities(x, perplexity=5)
        np.testing.assert_allclose(p, p.T, atol=1e-12)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert (p > 0).all()

    def test_close_points_get_higher_probability(self):
        x = np.array([[0.0], [0.1], [10.0]])
        p = joint_probabilities(x, perplexity=1.5)
        assert p[0, 1] > p[0, 2]


class TestTSNE:
    def test_output_shape(self, rng):
        x = rng.normal(size=(15, 6))
        y = tsne(x, dim=2, iterations=60, seed=0)
        assert y.shape == (15, 2)
        assert np.isfinite(y).all()

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))

    def test_separates_two_clusters(self, rng):
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=(10, 4)) + 30.0
        y = tsne(np.vstack([a, b]), iterations=250, seed=1)
        centroid_gap = np.linalg.norm(y[:10].mean(0) - y[10:].mean(0))
        within = max(y[:10].std(), y[10:].std())
        assert centroid_gap > 2.0 * within

    def test_line_manifold_stays_ordered(self):
        """Points on a 1-D manifold must keep (coarse) sequential order —
        exactly Fig. 12b's property for TDL-trained time embeddings."""
        t = np.linspace(0, 4, 40)
        x = np.stack([t, 2 * t + 0.01 * np.sin(t)], axis=1)
        y = tsne(x, iterations=300, seed=2)
        assert ordering_score(y) > 0.9


class TestOrderingScore:
    def test_perfect_line(self):
        points = np.stack([np.arange(20.0), np.zeros(20)], axis=1)
        assert ordering_score(points) == pytest.approx(1.0)

    def test_random_is_low(self, rng):
        points = rng.normal(size=(50, 2))
        assert ordering_score(points) < 0.6


class TestHeatmap:
    def test_render_contains_rows(self):
        out = render_heatmap(np.eye(3), labels=["a", "b", "c"], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 4
        assert lines[1].strip().startswith("a")

    def test_constant_matrix_safe(self):
        out = render_heatmap(np.ones((2, 2)))
        assert len(out.splitlines()) == 2

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(3))

    def test_side_by_side_width(self):
        left = render_heatmap(np.eye(2))
        right = render_heatmap(np.eye(2))
        combined = side_by_side(left, right)
        assert len(combined.splitlines()) == 2


class TestMatrixCorrelation:
    def test_identical_matrices(self, rng):
        m = rng.normal(size=(5, 5))
        assert matrix_correlation(m, m) == pytest.approx(1.0)

    def test_negated(self, rng):
        m = rng.normal(size=(5, 5))
        assert matrix_correlation(m, -m) == pytest.approx(-1.0)

    def test_diagonal_excluded(self):
        a = np.eye(4)
        b = 5 * np.eye(4)
        # Off-diagonal entries are all zero -> zero variance -> score 0.
        assert matrix_correlation(a, b) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            matrix_correlation(np.zeros((2, 2)), np.zeros((3, 3)))
