"""Tests for the repo-invariant AST lint (repro.analyze.lint).

Each rule gets a positive fixture (violation caught with the right id)
and a negative one (the sanctioned idiom passes).  On top of the rules:
allow-comment suppression, the baseline split (old findings suppressed,
new ones gate), and a smoke test of the ``repro.cli analyze`` entry.
"""

import json

import pytest

from repro.analyze import Baseline, fingerprints, lint_paths, registered_rules


def _lint_source(tmp_path, source, name="victim.py", rules=None):
    path = tmp_path / name
    path.write_text(source)
    return lint_paths([path], rules=rules)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


class TestRngRules:
    def test_rl001_flags_global_np_random(self, tmp_path):
        findings = _lint_source(tmp_path, "import numpy as np\nx = np.random.rand(3)\n")
        assert "RL001" in _rule_ids(findings)

    def test_rl001_allows_generator_construction(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.normal(size=3)\n",
        )
        assert "RL001" not in _rule_ids(findings)

    def test_rl002_flags_unseeded_default_rng(self, tmp_path):
        findings = _lint_source(tmp_path, "import numpy as np\nrng = np.random.default_rng()\n")
        assert "RL002" in _rule_ids(findings)
        seeded = _lint_source(tmp_path, "import numpy as np\nrng = np.random.default_rng(7)\n",
                              name="seeded.py")
        assert "RL002" not in _rule_ids(seeded)


class TestWriteRule:
    def test_rl003_flags_raw_writes(self, tmp_path):
        source = (
            "from pathlib import Path\n"
            "import numpy as np\n"
            "open('out.txt', 'w').write('x')\n"
            "Path('out.txt').write_text('x')\n"
            "np.savez('out.npz', a=1)\n"
        )
        findings = _lint_source(tmp_path, source)
        assert sum(f.rule_id == "RL003" for f in findings) == 3

    def test_rl003_ignores_reads_and_whitelisted_module(self, tmp_path):
        read = _lint_source(tmp_path, "data = open('in.txt').read()\n")
        assert "RL003" not in _rule_ids(read)
        wl = _lint_source(tmp_path, "open('out.txt', 'w').write('x')\n", name="ioutil.py")
        assert "RL003" not in _rule_ids(wl)


class TestClockRule:
    def test_rl004_only_fires_in_clock_seam_modules(self, tmp_path):
        # Whitelists match package-relative paths, so scan the tree root.
        source = "import time\nnow = time.monotonic()\n"
        (tmp_path / "serve").mkdir()
        (tmp_path / "serve" / "worker.py").write_text(source)
        (tmp_path / "training.py").write_text(source)
        findings = lint_paths([tmp_path], rules=["RL004"])
        assert [f.location.split("/")[-1] for f in findings] == ["worker.py:2"]


class TestWallClockLatencyRule:
    def test_rl009_flags_time_time_outside_clock_seams(self, tmp_path):
        source = (
            "import time\n"
            "start = time.time()\n"
            "elapsed = time.time() - start\n"
        )
        findings = _lint_source(tmp_path, source, name="training.py",
                                rules=["RL009"])
        assert [f.location.split(":")[-1] for f in findings] == ["2", "3"]

    def test_rl009_allows_monotonic_and_annotated_timestamps(self, tmp_path):
        source = (
            "import time\n"
            "start = time.monotonic()\n"
            "dur = time.perf_counter() - start\n"
            "ts = time.time()  # analyze: allow[RL009] wall timestamp\n"
        )
        findings = _lint_source(tmp_path, source, rules=["RL009"])
        assert findings == []

    def test_rl009_defers_to_rl004_inside_clock_seam_modules(self, tmp_path):
        # serve/ and resilience/ are RL004 territory; RL009 must not
        # double-flag the same call there.
        (tmp_path / "serve").mkdir()
        (tmp_path / "serve" / "worker.py").write_text(
            "import time\nnow = time.time()\n")
        assert lint_paths([tmp_path], rules=["RL009"]) == []
        both = lint_paths([tmp_path], rules=["RL004", "RL009"])
        assert [f.rule_id for f in both] == ["RL004"]


class TestExceptionRules:
    def test_rl005_bare_except(self, tmp_path):
        findings = _lint_source(tmp_path, "try:\n    pass\nexcept:\n    raise\n")
        assert "RL005" in _rule_ids(findings)

    def test_rl006_silent_handler(self, tmp_path):
        findings = _lint_source(tmp_path, "try:\n    pass\nexcept OSError:\n    pass\n")
        assert "RL006" in _rule_ids(findings)
        logged = _lint_source(
            tmp_path,
            "try:\n    pass\nexcept OSError as exc:\n    print(exc)\n",
            name="logged.py",
        )
        assert "RL006" not in _rule_ids(logged)


class TestTensorStateRule:
    def test_rl007_flags_data_mutation_outside_framework(self, tmp_path):
        source = "def poke(t):\n    t.data[...] = 0.0\n    t.grad = None\n"
        findings = _lint_source(tmp_path, source)
        assert sum(f.rule_id == "RL007" for f in findings) == 2

    def test_rl007_whitelists_framework_modules(self, tmp_path):
        (tmp_path / "nn").mkdir()
        (tmp_path / "nn" / "optim.py").write_text("def step(p):\n    p.data[...] -= 0.1\n")
        assert lint_paths([tmp_path], rules=["RL007"]) == []


class TestLockRule:
    def test_rl008_flags_mixed_locked_unlocked_writes(self, tmp_path):
        source = (
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def locked_bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
            "    def racy_bump(self):\n"
            "        self.count += 1\n"
        )
        findings = _lint_source(tmp_path, source)
        rl008 = [f for f in findings if f.rule_id == "RL008"]
        assert rl008 and "Server.count" in rl008[0].message

    def test_rl008_clean_when_every_write_is_locked(self, tmp_path):
        source = (
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL008" not in _rule_ids(findings)


class TestSuppression:
    def test_allow_comment_on_line_and_line_above(self, tmp_path):
        source = (
            "try:\n"
            "    pass\n"
            "except OSError:  # analyze: allow[RL006] best-effort\n"
            "    pass\n"
            "try:\n"
            "    pass\n"
            "# analyze: allow[RL006]\n"
            "except ValueError:\n"
            "    pass\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL006" not in _rule_ids(findings)

    def test_allow_star_suppresses_everything(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.rand(3)  # analyze: allow[*]\n",
        )
        assert findings == []

    def test_allow_does_not_leak_past_the_next_line(self, tmp_path):
        # An allow covers its own line and the one below (comment-above
        # idiom) — nothing further.
        source = (
            "import numpy as np\n"
            "a = np.random.rand(3)  # analyze: allow[RL001]\n"
            "\n"
            "b = np.random.rand(3)\n"
        )
        findings = _lint_source(tmp_path, source)
        assert sum(f.rule_id == "RL001" for f in findings) == 1


class TestBaseline:
    def test_baseline_suppresses_old_but_not_new(self, tmp_path):
        old = _lint_source(tmp_path, "import numpy as np\nx = np.random.rand(3)\n")
        baseline = Baseline.from_findings(old)

        grown = (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "y = np.random.seed(0)\n"
        )
        findings = _lint_source(tmp_path, grown)
        new, suppressed = baseline.split(findings)
        assert [f.message for f in suppressed] == ["global numpy RNG call np.random.rand()"]
        assert [f.message for f in new] == ["global numpy RNG call np.random.seed()"]

    def test_fingerprints_are_line_number_stable(self, tmp_path):
        first = _lint_source(tmp_path, "import numpy as np\nx = np.random.rand(3)\n")
        shifted = _lint_source(
            tmp_path, "import numpy as np\n\n\n\nx = np.random.rand(3)\n"
        )
        assert fingerprints(first) == fingerprints(shifted)

    def test_baseline_round_trips_through_disk(self, tmp_path):
        findings = _lint_source(tmp_path, "import numpy as np\nx = np.random.rand(3)\n")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        new, suppressed = loaded.split(findings)
        assert new == [] and len(suppressed) == 1

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestRetrySeamRule:
    def test_rl010_flags_while_try_sleep_loop(self, tmp_path):
        source = (
            "import time\n"
            "def fetch(reader):\n"
            "    while True:\n"
            "        try:\n"
            "            return reader()\n"
            "        except OSError:\n"
            "            time.sleep(1.0)\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL010" in _rule_ids(findings)

    def test_rl010_flags_counted_for_range_sleep_loop(self, tmp_path):
        source = (
            "import time\n"
            "def fetch(reader):\n"
            "    for attempt in range(3):\n"
            "        result = reader()\n"
            "        if result:\n"
            "            return result\n"
            "        time.sleep(2 ** attempt)\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL010" in _rule_ids(findings)

    def test_rl010_allows_plain_poll_loop(self, tmp_path):
        # Polling until a condition holds is not a retry loop: no
        # exception handling, no bounded attempt counter.
        source = (
            "import time\n"
            "def wait_for(ready):\n"
            "    while not ready():\n"
            "        time.sleep(0.1)\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL010" not in _rule_ids(findings)

    def test_rl010_allows_the_seam_itself(self, tmp_path):
        source = (
            "import time\n"
            "def retry_call(fn):\n"
            "    while True:\n"
            "        try:\n"
            "            return fn()\n"
            "        except OSError:\n"
            "            time.sleep(1.0)\n"
        )
        nested = tmp_path / "resilience"
        nested.mkdir()
        (nested / "backoff.py").write_text(source)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert "RL010" not in _rule_ids(findings)

    def test_rl010_allow_comment_suppresses(self, tmp_path):
        source = (
            "import time\n"
            "def fetch(reader):\n"
            "    for attempt in range(3):\n"
            "        try:\n"
            "            return reader()\n"
            "        except OSError:\n"
            "            time.sleep(1.0)  # analyze: allow[RL010] bootstrap, no seam yet\n"
        )
        findings = _lint_source(tmp_path, source)
        assert "RL010" not in _rule_ids(findings)


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        """The gate the CI job enforces: zero un-baselined lint findings."""
        findings = lint_paths(["src/repro"], root=".")
        assert findings == [], [str(f.to_dict()) for f in findings]

    def test_rule_registry_is_documented(self):
        rules = registered_rules()
        assert set(rules) >= {f"RL0{i:02d}" for i in range(1, 11)}
        for r in rules.values():
            assert r.description and r.fix_hint


class TestDiscovery:
    def test_pycache_and_hidden_files_are_skipped(self, tmp_path):
        bad = "import numpy as np\nx = np.random.rand(3)\n"
        (tmp_path / "real.py").write_text(bad)
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "real.cpython-311.py").write_text(bad)
        hidden_dir = tmp_path / ".venv" / "lib"
        hidden_dir.mkdir(parents=True)
        (hidden_dir / "vendored.py").write_text(bad)
        (tmp_path / ".hidden.py").write_text(bad)
        findings = lint_paths([tmp_path], rules=["RL001"])
        assert [f.location.split(":")[0] for f in findings] == [
            str(tmp_path / "real.py")
        ]

    def test_explicit_file_path_always_scans(self, tmp_path):
        # pointing at a file directly bypasses directory filtering
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        victim = cache / "odd.py"
        victim.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert lint_paths([victim], rules=["RL001"])


class TestCli:
    def test_analyze_cli_gates_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        victim = tmp_path / "bad.py"
        victim.write_text("import numpy as np\nx = np.random.rand(3)\n")
        json_out = tmp_path / "report.json"
        code = main([
            "analyze", "--no-models", "--paths", str(victim),
            "--baseline", str(tmp_path / "baseline.json"),
            "--json", str(json_out), "--quiet",
        ])
        assert code == 1  # RL001 is error severity and not baselined
        payload = json.loads(json_out.read_text())
        assert payload["summary"]["by_rule"] == {"RL001": 1}

        # Accept it into the baseline; the same run now passes.
        assert main([
            "analyze", "--no-models", "--paths", str(victim),
            "--baseline", str(tmp_path / "baseline.json"),
            "--update-baseline", "--quiet",
        ]) == 0
        assert main([
            "analyze", "--no-models", "--paths", str(victim),
            "--baseline", str(tmp_path / "baseline.json"), "--quiet",
        ]) == 0

    def test_analyze_cli_fix_rewrites_and_passes(self, tmp_path):
        from repro.cli import main

        victim = tmp_path / "raw_write.py"
        victim.write_text(
            "from pathlib import Path\n\n\n"
            "def save(payload):\n"
            "    Path('out.json').write_text(payload)\n"
        )
        assert main([
            "analyze", "--no-models", "--paths", str(victim),
            "--baseline", str(tmp_path / "baseline.json"),
            "--rules", "RL003", "--fix", "--quiet",
        ]) == 0  # fixed in the same run, so the gate passes
        assert "atomic_write_text" in victim.read_text()

    def test_analyze_cli_changed_only_in_clean_tree(self, tmp_path):
        """--changed-only with no changed files exits 0 without scanning."""
        import subprocess

        from repro.cli import main

        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "ok.py").write_text("x = 1\n")
        subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
            cwd=tmp_path, check=True,
        )
        assert main([
            "analyze", "--root", str(tmp_path), "--changed-only", "--quiet",
            "--baseline", str(tmp_path / "baseline.json"),
        ]) == 0

        # a new un-committed file is picked up and gated
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert main([
            "analyze", "--root", str(tmp_path), "--changed-only", "--quiet",
            "--baseline", str(tmp_path / "baseline.json"),
        ]) == 1
