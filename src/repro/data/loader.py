"""Minibatch iteration over window sets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .windows import WindowSet


class DataLoader:
    """Yield (inputs, targets, time_indices) minibatches.

    Shuffling reshuffles every epoch from its own generator so training
    runs are reproducible given a seed.
    """

    def __init__(
        self,
        windows: WindowSet,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.windows = windows
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    @property
    def rng_state(self) -> dict:
        """Bit-generator state of the shuffle stream (checkpoint/resume)."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def __len__(self) -> int:
        count = len(self.windows)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        count = len(self.windows)
        order = self._rng.permutation(count) if self.shuffle else np.arange(count)
        limit = (count // self.batch_size) * self.batch_size if self.drop_last else count
        for start in range(0, limit, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield (
                self.windows.inputs[idx],
                self.windows.targets[idx],
                self.windows.time_indices[idx],
            )
