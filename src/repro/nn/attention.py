"""Scaled dot-product and multi-head attention.

Used by the Informer-lite and Crossformer-lite baselines.  Shapes follow
``(batch, time, model_dim)``; heads are folded into the batch axis.
"""

from __future__ import annotations

import math

import numpy as np

from ..autodiff import Tensor, softmax
from .layers import Linear
from .module import Module


def scaled_dot_product_attention(
    query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None
) -> Tensor:
    """Attention(Q, K, V) = softmax(Q K^T / sqrt(d)) V.

    ``mask`` is a boolean array broadcastable to the score shape; ``True``
    marks positions to *block* (set to -inf before softmax).
    """
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / math.sqrt(d_k))
    if mask is not None:
        blocked = np.broadcast_to(mask, scores.shape)
        scores = scores + Tensor(np.where(blocked, -1e9, 0.0))
    return softmax(scores, axis=-1) @ value


def causal_mask(length: int) -> np.ndarray:
    """Upper-triangular mask blocking attention to future positions."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class MultiHeadAttention(Module):
    """Standard multi-head attention with separate Q/K/V projections."""

    def __init__(self, model_dim: int, num_heads: int, *, rng: np.random.Generator):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.q_proj = Linear(model_dim, model_dim, rng=rng)
        self.k_proj = Linear(model_dim, model_dim, rng=rng)
        self.v_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        return x.reshape(batch, steps, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, steps, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, steps, heads * dim)

    def forward(self, query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None) -> Tensor:
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.out_proj(self._merge_heads(attended))


class TransformerBlock(Module):
    """Pre-norm transformer encoder block (attention + FFN, residuals)."""

    def __init__(self, model_dim: int, num_heads: int, ff_dim: int, *, rng: np.random.Generator):
        super().__init__()
        from .layers import LayerNorm, Sequential, get_activation

        self.attention = MultiHeadAttention(model_dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.ff_in = Linear(model_dim, ff_dim, rng=rng)
        self.ff_out = Linear(ff_dim, model_dim, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        normed = self.norm1(x)
        x = x + self.attention(normed, normed, normed, mask=mask)
        return x + self.ff_out(self.ff_in(self.norm2(x)).relu())
