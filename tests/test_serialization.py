"""Tests for checkpoint and optimizer-state persistence."""

import numpy as np
import pytest

from repro.autodiff import Tensor, mse_loss
from repro.nn import (
    Adam,
    Linear,
    load_checkpoint,
    load_optimizer,
    save_checkpoint,
    save_optimizer,
)


def _model(seed=0):
    return Linear(3, 2, rng=np.random.default_rng(seed))


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        a = _model(0)
        b = _model(1)
        save_checkpoint(tmp_path / "ck.npz", a, metadata={"epoch": 7})
        meta = load_checkpoint(tmp_path / "ck.npz", b)
        assert meta == {"epoch": 7}
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        np.testing.assert_allclose(a.bias.data, b.bias.data)

    def test_empty_metadata(self, tmp_path):
        a = _model()
        save_checkpoint(tmp_path / "ck.npz", a)
        assert load_checkpoint(tmp_path / "ck.npz", _model(1)) == {}

    def test_shape_mismatch_rejected(self, tmp_path):
        save_checkpoint(tmp_path / "ck.npz", _model())
        wrong = Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(tmp_path / "ck.npz", wrong)

    def test_corrupted_checkpoint_rejected(self, tmp_path):
        """The embedded state hash must catch a tampered parameter payload."""
        save_checkpoint(tmp_path / "ck.npz", _model(0))
        with np.load(tmp_path / "ck.npz") as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["weight"][0, 0] += 1e-3  # flip some bits
        np.savez(tmp_path / "ck.npz", **arrays)
        with pytest.raises(ValueError, match="corrupted"):
            load_checkpoint(tmp_path / "ck.npz", _model(1))

    def test_legacy_checkpoint_without_hash_loads(self, tmp_path):
        """Pre-hash checkpoints (no __state_hash__ entry) still load."""
        model = _model(0)
        arrays = dict(model.state_dict())
        import json

        arrays["__checkpoint_meta__"] = np.frombuffer(
            json.dumps({"legacy": True}).encode(), dtype=np.uint8
        )
        np.savez(tmp_path / "legacy.npz", **arrays)
        assert load_checkpoint(tmp_path / "legacy.npz", _model(1)) == {"legacy": True}

    def test_full_model_checkpoint_preserves_predictions(self, tmp_path):
        from repro.core import TGCRN

        kwargs = dict(num_nodes=4, in_dim=2, out_dim=2, horizon=2, hidden_dim=6,
                      num_layers=1, node_dim=4, time_dim=4, steps_per_day=24)
        a = TGCRN(**kwargs, rng=np.random.default_rng(0))
        b = TGCRN(**kwargs, rng=np.random.default_rng(99))
        save_checkpoint(tmp_path / "tgcrn.npz", a)
        load_checkpoint(tmp_path / "tgcrn.npz", b)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4, 2)))
        t = np.arange(5)[None, :].repeat(2, axis=0)
        np.testing.assert_allclose(a(x, t).data, b(x, t).data, atol=1e-12)


class TestTrainedRoundTrip:
    def test_trained_tgcrn_roundtrip_is_bitwise_exact(self, tmp_path):
        """Train a tiny TGCRN, checkpoint it, reload into a fresh model:
        parameters must be bitwise equal and forward outputs identical."""
        from repro.core import TGCRN
        from repro.data import load_task
        from repro.training import Trainer, TrainingConfig
        from repro.verify import state_hash

        task = load_task("hzmetro", num_nodes=4, num_days=4, seed=3)
        kwargs = dict(
            num_nodes=task.num_nodes, in_dim=task.in_dim, out_dim=task.out_dim,
            horizon=task.horizon, hidden_dim=4, num_layers=1, node_dim=3,
            time_dim=3, steps_per_day=task.steps_per_day,
        )
        trained = TGCRN(**kwargs, rng=np.random.default_rng(0))
        Trainer(TrainingConfig(epochs=1, batch_size=16, seed=3)).fit(trained, task)

        save_checkpoint(tmp_path / "trained.npz", trained, metadata={"epochs": 1})
        fresh = TGCRN(**kwargs, rng=np.random.default_rng(42))
        meta = load_checkpoint(tmp_path / "trained.npz", fresh)
        assert meta == {"epochs": 1}

        # bitwise-equal parameters (hash compares names + bytes)
        assert state_hash(fresh) == state_hash(trained)
        for (name, a), (_, b) in zip(
            trained.named_parameters(), fresh.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

        # identical forward pass on unseen inputs
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(2, task.history, task.num_nodes, task.in_dim)))
        t = np.arange(task.history + task.horizon)[None, :].repeat(2, axis=0)
        trained.eval(), fresh.eval()
        np.testing.assert_array_equal(trained(x, t).data, fresh(x, t).data)


class TestOptimizerState:
    def _train_steps(self, model, opt, steps, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=(8, 2))
        for _ in range(steps):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        """train 5 then (save, load, train 5) == train 10 straight."""
        straight = _model(0)
        opt_straight = Adam(straight.parameters(), lr=0.05)
        self._train_steps(straight, opt_straight, 10)

        resumed = _model(0)
        opt_resumed = Adam(resumed.parameters(), lr=0.05)
        self._train_steps(resumed, opt_resumed, 5)
        save_checkpoint(tmp_path / "m.npz", resumed)
        save_optimizer(tmp_path / "o.npz", opt_resumed)

        fresh = _model(3)
        opt_fresh = Adam(fresh.parameters(), lr=0.05)
        load_checkpoint(tmp_path / "m.npz", fresh)
        load_optimizer(tmp_path / "o.npz", opt_fresh)
        self._train_steps(fresh, opt_fresh, 5)

        np.testing.assert_allclose(fresh.weight.data, straight.weight.data, atol=1e-12)

    def test_optimizer_shape_mismatch(self, tmp_path):
        model = _model()
        opt = Adam(model.parameters(), lr=0.05)
        self._train_steps(model, opt, 1)
        save_optimizer(tmp_path / "o.npz", opt)
        other = Linear(4, 2, rng=np.random.default_rng(0))
        opt_other = Adam(other.parameters(), lr=0.05)
        with pytest.raises(ValueError):
            load_optimizer(tmp_path / "o.npz", opt_other)
